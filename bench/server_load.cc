// Closed-loop load generator for the RAQO planning server: an
// in-process server on a loopback port, then ramped concurrency levels
// (1 -> 64 connections) of clients that each fire requests
// back-to-back and wait for every answer. Reports throughput and
// p50/p99 latency per level, plus the shared plan-cache hit rate, and
// writes the same numbers machine-readably to BENCH_server.json.
//
// Modes:
//   (default)      quota-free, single anonymous tenant — byte-identical
//                  responses to the pre-tenant server.
//   --tenants N    spread connections round-robin over N named tenants;
//                  tenant t0 carries a 1-request in-flight quota, so its
//                  surplus concurrency is rejected instead of queued.
//   --reactors N   run the server with N reactor threads (0 = the
//                  server default, min(4, hardware threads)).
//   --sweep        connection ladder 1 -> 256, run twice: once with one
//                  reactor as the baseline and once with --reactors,
//                  recording both ladders and the peak-throughput
//                  speedup into BENCH_server.json.
//   --smoke        short CI gate: 2 tenants, shortened ramp, asserts
//                  zero protocol errors and a non-zero count of
//                  per-tenant quota rejections.
//   --restart-recovery
//                  durability scenario instead of the ladder: warm a
//                  server whose cache journals to disk, kill it, restart
//                  on the same data directory and measure how long until
//                  the pre-restart hit rate is back (recovery replay
//                  time — the rate itself is available on the first
//                  request), then warm a cold replica from the restarted
//                  node over the wire via cache_dump/cache_load. With
//                  --smoke, asserts the recovered and replica hit rates
//                  match the pre-restart one and zero protocol errors.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

struct LevelResult {
  int connections = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t quota_rejected = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  // End-to-end request latency percentiles (bench::SummarizeLatencies,
  // shared with the other benches so the JSON artifacts compare).
  bench::LatencyStats latency_us;
};

struct LadderResult {
  int num_reactors = 0;
  bool reuseport = false;
  std::vector<LevelResult> levels;
  std::map<std::string, server::TenantStats> tenant_stats;
};

double PeakRps(const std::vector<LevelResult>& levels) {
  double peak = 0.0;
  for (const LevelResult& level : levels) {
    peak = std::max(peak, level.throughput_rps);
  }
  return peak;
}

std::string LevelsJson(const std::vector<LevelResult>& levels) {
  std::string json = "[";
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& level = levels[i];
    if (i > 0) json += ", ";
    json += StrPrintf(
        "{\"connections\": %d, \"requests\": %lld, \"errors\": %lld, "
        "\"quota_rejected\": %lld, \"wall_ms\": %s, \"throughput_rps\": %s, "
        "%s}",
        level.connections, (long long)level.requests, (long long)level.errors,
        (long long)level.quota_rejected, JsonNumber(level.wall_ms).c_str(),
        JsonNumber(level.throughput_rps).c_str(),
        bench::LatencyJsonFields(level.latency_us, "us").c_str());
  }
  return json + "]";
}

void PrintLevels(const std::vector<LevelResult>& levels, int tenants) {
  std::vector<std::string> headers = {"connections", "requests", "errors",
                                      "wall (ms)", "throughput (req/s)",
                                      "p50 (us)", "p95 (us)", "p99 (us)"};
  if (tenants > 0) headers.insert(headers.begin() + 3, "quota rejected");
  bench::Table table(headers);
  for (const LevelResult& level : levels) {
    std::vector<std::string> row = {
        bench::Int(level.connections), bench::Int(level.requests),
        bench::Int(level.errors), bench::Num(level.wall_ms, "%.1f"),
        bench::Num(level.throughput_rps, "%.0f"),
        bench::Num(level.latency_us.p50, "%.0f"),
        bench::Num(level.latency_us.p95, "%.0f"),
        bench::Num(level.latency_us.p99, "%.0f")};
    if (tenants > 0) {
      row.insert(row.begin() + 3, bench::Int(level.quota_rejected));
    }
    table.AddRow(row);
  }
  table.Print();
}

// One full ladder against a freshly started server: every ramp level
// opens `connections` closed-loop clients that each fire
// `requests_per_client` requests back-to-back.
LadderResult RunLadder(const server::PlanningService& service, int tenants,
                       int num_reactors, const std::vector<int>& ramp,
                       int requests_per_client,
                       const std::vector<std::vector<std::string>>& mix) {
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.num_reactors = num_reactors;
  server_options.num_workers = std::max(
      4u, std::thread::hardware_concurrency());
  server_options.max_queue = 256;
  server_options.max_connections =
      static_cast<size_t>(*std::max_element(ramp.begin(), ramp.end())) + 64;
  if (tenants > 0) {
    // Tenant t0 is the deliberately throttled one: with several
    // closed-loop connections sharing it, concurrency above 1 trips the
    // in-flight cap and is answered RESOURCE_EXHAUSTED at admission.
    server_options.tenant_quotas["t0"].max_inflight = 1;
  }
  server::PlanningServer server(&service, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    std::exit(1);
  }

  LadderResult result;
  result.num_reactors = server.num_reactors();
  result.reuseport = server.reuseport_sharding();
  for (int connections : ramp) {
    std::vector<std::thread> clients;
    std::mutex latencies_mu;
    std::vector<double> latencies_us;
    std::atomic<int64_t> errors{0};
    std::atomic<int64_t> quota_rejected{0};

    const auto level_start = std::chrono::steady_clock::now();
    for (int c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        server::ClientOptions client_options;
        if (tenants > 0) {
          client_options.tenant = StrPrintf("t%d", c % tenants);
        }
        Result<server::PlanningClient> client =
            server::PlanningClient::Connect("127.0.0.1", server.port(),
                                            client_options);
        if (!client.ok()) {
          errors.fetch_add(requests_per_client);
          return;
        }
        std::vector<double> mine;
        mine.reserve(static_cast<size_t>(requests_per_client));
        for (int i = 0; i < requests_per_client; ++i) {
          server::PlanRequest request;
          request.id = StrPrintf("c%d.%d", c, i);
          request.tables = mix[static_cast<size_t>(c + i) % mix.size()];
          const auto start = std::chrono::steady_clock::now();
          Result<server::PlanResponse> response = client->Call(request);
          const double us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (!response.ok()) {
            errors.fetch_add(1);
            continue;
          }
          if (!response->ok()) {
            // A quota rejection is the server working as configured,
            // not a protocol failure.
            if (response->status == server::kWireResourceExhausted) {
              quota_rejected.fetch_add(1);
            } else {
              errors.fetch_add(1);
            }
            continue;
          }
          mine.push_back(us);
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - level_start)
            .count();

    LevelResult level;
    level.connections = connections;
    level.requests = static_cast<int64_t>(latencies_us.size());
    level.errors = errors.load();
    level.quota_rejected = quota_rejected.load();
    level.wall_ms = wall_ms;
    level.throughput_rps =
        wall_ms > 0.0 ? 1000.0 * static_cast<double>(level.requests) / wall_ms
                      : 0.0;
    level.latency_us = bench::SummarizeLatencies(latencies_us);
    result.levels.push_back(level);
  }

  result.tenant_stats = server.tenant_stats();
  server.Shutdown();
  server.Wait();
  return result;
}

// ---------------------------------------------------------------------
// --restart-recovery: durability and replica warm-up scenario

struct PassResult {
  int64_t requests = 0;
  int64_t errors = 0;
  double wall_ms = 0.0;
  double hit_rate = 0.0;
};

/// One closed-loop measurement pass: `connections` clients each fire
/// `requests_per_client` requests. The shared cache's hit/miss counters
/// are reset first, so the reported hit rate is this pass's alone.
PassResult RunPass(const server::PlanningServer& server,
                   server::PlanningService& service, int connections,
                   int requests_per_client,
                   const std::vector<std::vector<std::string>>& mix) {
  service.shared_cache()->ResetStats();
  std::atomic<int64_t> ok_requests{0};
  std::atomic<int64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      Result<server::PlanningClient> client =
          server::PlanningClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        errors.fetch_add(requests_per_client);
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        server::PlanRequest request;
        request.id = StrPrintf("r%d.%d", c, i);
        request.tables = mix[static_cast<size_t>(c + i) % mix.size()];
        Result<server::PlanResponse> response = client->Call(request);
        if (!response.ok() || !response->ok()) {
          errors.fetch_add(1);
        } else {
          ok_requests.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  PassResult pass;
  pass.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  pass.requests = ok_requests.load();
  pass.errors = errors.load();
  pass.hit_rate = service.shared_cache_stats().hit_rate();
  return pass;
}

int RunRestartRecovery(bool smoke, const catalog::Catalog& catalog,
                       const cost::JoinCostModels& models,
                       const server::PlanningServiceOptions& service_options,
                       const std::vector<std::vector<std::string>>& mix) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "raqo_bench_persist")
          .string();
  std::filesystem::remove_all(dir);

  const int connections = smoke ? 4 : 8;
  const int requests_per_client = smoke ? 12 : 32;
  auto make_service = [&] {
    return std::make_unique<server::PlanningService>(
        &catalog, models, resource::ClusterConditions::PaperDefault(),
        resource::PricingModel(), service_options);
  };
  server::ServerOptions durable_options;
  durable_options.port = 0;
  durable_options.persist_dir = dir;

  // Phase 1: warm a durable node, then measure its steady-state rate.
  bench::Section("Restart recovery: warm phase (journaling to disk)");
  PassResult warm;
  int64_t entries_before = 0;
  int64_t journal_bytes = 0;
  {
    auto service = make_service();
    server::PlanningServer server(service.get(), durable_options);
    if (Status started = server.Start(); !started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    RunPass(server, *service, connections, requests_per_client, mix);
    warm = RunPass(server, *service, connections, requests_per_client, mix);
    entries_before = service->shared_cache()->entry_count();
    journal_bytes = server.persistence()->journal_bytes();
    // "Kill" the node: drain and discard the process-local cache.
    server.Shutdown();
    server.Wait();
  }
  std::printf("steady state: %.1f%% hit rate over %lld requests, "
              "%lld cache entries, %lld journal bytes\n",
              100.0 * warm.hit_rate, (long long)warm.requests,
              (long long)entries_before, (long long)journal_bytes);

  // Phase 2: restart on the same directory. Recovery replay happens
  // inside Start(); the first measurement pass runs against the
  // recovered cache with no further warm-up.
  bench::Section("Restart recovery: restarted node");
  auto restarted_service = make_service();
  server::PlanningServer restarted(restarted_service.get(),
                                   durable_options);
  if (Status started = restarted.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  const persist::RecoveryStats recovery =
      restarted.persistence()->recovery_stats();
  const int64_t entries_after =
      restarted_service->shared_cache()->entry_count();
  const PassResult recovered = RunPass(restarted, *restarted_service,
                                       connections, requests_per_client,
                                       mix);
  std::printf("recovered %lld entries in %lld ms (snapshot %lld + "
              "journal %lld records); first pass hit rate %.1f%% "
              "(pre-restart %.1f%%)\n",
              (long long)entries_after, (long long)recovery.recovery_ms,
              (long long)recovery.snapshot_entries,
              (long long)recovery.journal_records, 100.0 * recovered.hit_rate,
              100.0 * warm.hit_rate);

  // Phase 3: a cold replica (no disk state) warms over the wire from
  // the restarted node, then serves the same mix at the same hit rate.
  bench::Section("Replica warm-up over cache_dump/cache_load");
  auto replica_service = make_service();
  server::ServerOptions replica_options;
  replica_options.port = 0;
  server::PlanningServer replica(replica_service.get(), replica_options);
  if (Status started = replica.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  Stopwatch warmup_timer;
  int64_t copied = 0;
  {
    Result<server::PlanningClient> source =
        server::PlanningClient::Connect("127.0.0.1", restarted.port());
    Result<server::PlanningClient> target =
        server::PlanningClient::Connect("127.0.0.1", replica.port());
    if (!source.ok() || !target.ok()) {
      std::fprintf(stderr, "replica warm-up connect failed\n");
      return 1;
    }
    Result<int64_t> warmed = server::WarmCacheFromPeer(*source, *target);
    if (!warmed.ok()) {
      std::fprintf(stderr, "%s\n", warmed.status().ToString().c_str());
      return 1;
    }
    copied = *warmed;
  }
  const double wire_warmup_ms = warmup_timer.ElapsedMicros() / 1000.0;
  const PassResult replica_pass = RunPass(
      replica, *replica_service, connections, requests_per_client, mix);
  std::printf("copied %lld entries in %.1f ms; replica first-pass hit "
              "rate %.1f%%\n",
              (long long)copied, wire_warmup_ms,
              100.0 * replica_pass.hit_rate);

  restarted.Shutdown();
  restarted.Wait();
  replica.Shutdown();
  replica.Wait();
  std::filesystem::remove_all(dir);

  const std::string json = StrPrintf(
      "{\"bench\": \"server_load\", \"restart_recovery\": {"
      "\"pre_restart_hit_rate\": %s, \"pre_restart_entries\": %lld, "
      "\"journal_bytes\": %lld, \"recovery_ms\": %lld, "
      "\"snapshot_entries\": %lld, \"journal_records\": %lld, "
      "\"recovered_entries\": %lld, \"recovered_hit_rate\": %s, "
      "\"replica_copied_entries\": %lld, \"replica_warmup_ms\": %s, "
      "\"replica_hit_rate\": %s, \"errors\": %lld}}\n",
      JsonNumber(warm.hit_rate).c_str(), (long long)entries_before,
      (long long)journal_bytes, (long long)recovery.recovery_ms,
      (long long)recovery.snapshot_entries,
      (long long)recovery.journal_records, (long long)entries_after,
      JsonNumber(recovered.hit_rate).c_str(), (long long)copied,
      JsonNumber(wire_warmup_ms).c_str(),
      JsonNumber(replica_pass.hit_rate).c_str(),
      (long long)(warm.errors + recovered.errors + replica_pass.errors));
  if (Status written = WriteTextFile("BENCH_server.json", json);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_server.json\n");

  const int64_t total_errors =
      warm.errors + recovered.errors + replica_pass.errors;
  if (total_errors != 0) {
    std::fprintf(stderr, "restart-recovery: %lld protocol errors\n",
                 (long long)total_errors);
    return 1;
  }
  if (smoke) {
    // The recovered node and the wire-warmed replica must be as warm as
    // the node that never died: same mix, same exact-mode cache, so the
    // hit rates match up to the first-connection misses the warm pass
    // also paid.
    if (entries_after != entries_before || copied != entries_after) {
      std::fprintf(stderr,
                   "smoke: entry counts diverged (before %lld, "
                   "recovered %lld, replica %lld)\n",
                   (long long)entries_before, (long long)entries_after,
                   (long long)copied);
      return 1;
    }
    if (recovered.hit_rate + 1e-9 < warm.hit_rate ||
        replica_pass.hit_rate + 1e-9 < warm.hit_rate) {
      std::fprintf(stderr,
                   "smoke: hit rate regressed after restart (pre %.3f, "
                   "recovered %.3f, replica %.3f)\n",
                   warm.hit_rate, recovered.hit_rate,
                   replica_pass.hit_rate);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool sweep = false;
  bool restart_recovery = false;
  int tenants = 0;
  int reactors = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--restart-recovery") == 0) {
      restart_recovery = true;
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reactors") == 0 && i + 1 < argc) {
      reactors = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--sweep] [--restart-recovery] "
                   "[--tenants N] [--reactors N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke && !restart_recovery && tenants < 2) tenants = 2;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());

  core::RaqoPlannerOptions planner_options;
  planner_options.evaluator.use_cache = true;
  planner_options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  planner_options.clear_cache_between_queries = false;

  server::PlanningServiceOptions service_options;
  service_options.planner = planner_options;
  server::PlanningService service(&catalog, models,
                                  resource::ClusterConditions::PaperDefault(),
                                  resource::PricingModel(), service_options);

  // The request mix: repeated join shapes, so the shared exact-match
  // cache warms up the way a real planning service's would.
  const std::vector<std::vector<std::string>> mix = {
      {"orders", "lineitem"},
      {"orders", "lineitem", "customer"},
      {"part", "partsupp", "supplier"},
      {"orders", "lineitem", "customer", "nation"},
  };

  if (restart_recovery) {
    return RunRestartRecovery(smoke, catalog, models, service_options, mix);
  }

  const int requests_per_client = smoke ? 16 : 24;
  std::vector<int> ramp;
  if (sweep) {
    ramp = smoke ? std::vector<int>{8, 32}
                 : std::vector<int>{1, 4, 16, 32, 64, 128, 256};
  } else {
    ramp = smoke ? std::vector<int>{8} : std::vector<int>{1, 4, 16, 64};
  }

  // The sweep compares the sharded I/O plane against a single-reactor
  // baseline on the same ladder (baseline first, so the shared plan
  // cache is equally warm — actually warmer — for the run it handicaps).
  LadderResult baseline;
  if (sweep) {
    bench::Section("Single-reactor baseline ladder");
    baseline = RunLadder(service, tenants, 1, ramp, requests_per_client, mix);
    PrintLevels(baseline.levels, tenants);
  }

  bench::Section(StrPrintf(
      "Planning server under closed-loop load (%d requests per "
      "connection%s)",
      requests_per_client,
      tenants > 0 ? StrPrintf(", %d tenants", tenants).c_str() : ""));
  LadderResult main_run =
      RunLadder(service, tenants, reactors, ramp, requests_per_client, mix);
  std::printf("reactors: %d (%s)\n", main_run.num_reactors,
              main_run.reuseport ? "SO_REUSEPORT sharding" : "fd handoff");
  PrintLevels(main_run.levels, tenants);

  if (tenants > 0) {
    bench::Table tenant_table({"tenant", "admitted", "ok", "rej inflight",
                               "rej budget", "rej queue", "$ spent"});
    for (const auto& [name, stats] : main_run.tenant_stats) {
      tenant_table.AddRow(
          {name.empty() ? "(anonymous)" : name, bench::Int(stats.admitted),
           bench::Int(stats.responses_ok), bench::Int(stats.rejected_inflight),
           bench::Int(stats.rejected_budget),
           bench::Int(stats.rejected_queue_full),
           bench::Num(stats.dollars_spent, "%.4f")});
    }
    tenant_table.Print();
  }

  if (sweep) {
    const double peak = PeakRps(main_run.levels);
    const double baseline_peak = PeakRps(baseline.levels);
    std::printf("\nsweep: peak %.0f req/s with %d reactors vs %.0f req/s "
                "single-reactor (%.2fx)\n",
                peak, main_run.num_reactors, baseline_peak,
                baseline_peak > 0.0 ? peak / baseline_peak : 0.0);
  }

  const core::CacheStats cache = service.shared_cache_stats();
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses)
          : 0.0;
  std::printf("\nshared plan cache: %lld hits / %lld misses (%.1f%% hit "
              "rate)\n",
              (long long)cache.hits, (long long)cache.misses,
              100.0 * hit_rate);

  // Machine-readable mirror of the tables above.
  std::string json = StrPrintf(
      "{\"bench\": \"server_load\", \"num_reactors\": %d, "
      "\"reuseport\": %s, \"levels\": ",
      main_run.num_reactors, main_run.reuseport ? "true" : "false");
  json += LevelsJson(main_run.levels);
  if (sweep) {
    const double peak = PeakRps(main_run.levels);
    const double baseline_peak = PeakRps(baseline.levels);
    json += StrPrintf(
        ", \"sweep\": {\"baseline_num_reactors\": %d, "
        "\"baseline_levels\": %s, \"peak_rps\": %s, "
        "\"baseline_peak_rps\": %s, \"speedup\": %s}",
        baseline.num_reactors, LevelsJson(baseline.levels).c_str(),
        JsonNumber(peak).c_str(), JsonNumber(baseline_peak).c_str(),
        JsonNumber(baseline_peak > 0.0 ? peak / baseline_peak : 0.0)
            .c_str());
  }
  if (tenants > 0) {
    json += ", \"tenants\": {";
    bool first = true;
    for (const auto& [name, stats] : main_run.tenant_stats) {
      if (!first) json += ", ";
      first = false;
      json += StrPrintf(
          "\"%s\": {\"admitted\": %lld, \"ok\": %lld, \"rejected_inflight\": "
          "%lld, \"rejected_budget\": %lld, \"rejected_queue_full\": %lld, "
          "\"dollars_spent\": %s}",
          JsonEscape(name).c_str(), (long long)stats.admitted,
          (long long)stats.responses_ok, (long long)stats.rejected_inflight,
          (long long)stats.rejected_budget,
          (long long)stats.rejected_queue_full,
          JsonNumber(stats.dollars_spent).c_str());
    }
    json += "}";
  }
  json += StrPrintf(
      ", \"cache\": {\"hits\": %lld, \"misses\": %lld, \"hit_rate\": %s}}",
      (long long)cache.hits, (long long)cache.misses,
      JsonNumber(hit_rate).c_str());
  json += "\n";
  if (Status written = WriteTextFile("BENCH_server.json", json);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_server.json\n");

  int64_t total_errors = 0;
  int64_t total_quota_rejected = 0;
  for (const LevelResult& level : main_run.levels) {
    total_errors += level.errors;
    total_quota_rejected += level.quota_rejected;
  }
  for (const LevelResult& level : baseline.levels) {
    total_errors += level.errors;
  }
  if (smoke && total_quota_rejected == 0) {
    std::fprintf(stderr,
                 "smoke: expected quota rejections for tenant t0, saw none\n");
    return 1;
  }
  return total_errors == 0 ? 0 : 1;
}
