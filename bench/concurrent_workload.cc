// Concurrent planning-service throughput: a Figure 15(b)-style workload
// of many queries over a random schema, planned by the sequential
// WorkloadRunner and by the ConcurrentWorkloadRunner at 1/2/4/8 worker
// threads sharing one exact-match resource-plan cache.
//
// Besides the wall-clock speedup the bench verifies, for every thread
// count, that the concurrent service returned exactly the sequential
// plans and costs — the determinism contract the concurrency test suite
// checks is re-asserted here on the bench workload itself. Speedup is
// reported against the measured hardware concurrency: on a single-core
// host all configurations collapse to ~1x by construction, while on a
// 4-core host the 4-thread run shows the >=2x the service targets.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "catalog/random_schema.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/concurrent_workload_runner.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

core::RaqoPlannerOptions ServiceOptions() {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  // Exact-match shared caching: deterministic (hits reproduce what
  // planning would compute) and still effective on a workload with
  // repeated data characteristics.
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = false;
  return options;
}

bool SamePlans(const core::WorkloadReport& a, const core::WorkloadReport& b) {
  if (a.queries.size() != b.queries.size()) return false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].plan != b.queries[i].plan) return false;
    if (a.queries[i].cost.seconds != b.queries[i].cost.seconds) return false;
    if (a.queries[i].cost.dollars != b.queries[i].cost.dollars) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 40;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  // 64 queries of 4..10 relations; labels repeat data characteristics
  // often enough for the shared cache to matter.
  Rng rng(2024);
  std::vector<core::WorkloadQuery> workload;
  for (int i = 0; i < 64; ++i) {
    core::WorkloadQuery query;
    query.label = "q" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(4, 10)),
        static_cast<uint64_t>(9000 + i));
    workload.push_back(std::move(query));
  }

  bench::Section("Concurrent planning service: across-query workload "
                 "(64 queries, random 40-table schema)");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  // Sequential baseline.
  core::RaqoPlanner planner(&cat, models, cluster, resource::PricingModel(),
                            ServiceOptions());
  core::WorkloadRunner sequential(&planner);
  const Result<core::WorkloadReport> baseline = sequential.Run(workload);
  RAQO_CHECK(baseline.ok()) << baseline.status().ToString();

  // Rendered to BENCH_concurrent.json alongside the printed table.
  std::string json_levels;
  bench::Table table({"threads", "wall clock (ms)", "speedup",
                      "cache hits", "cache misses", "plans identical"});
  table.AddRow({"sequential", bench::Num(baseline->wall_clock_ms, "%.1f"),
                bench::Num(1.0, "%.2fx"),
                bench::Int(baseline->total_cache_hits),
                bench::Int(baseline->total_cache_misses), "-"});

  for (int threads : {1, 2, 4, 8}) {
    core::ConcurrentRunnerOptions concurrency;
    concurrency.num_threads = threads;
    concurrency.share_cache = true;
    concurrency.cache_shards = 8;
    core::ConcurrentWorkloadRunner service(&cat, models, cluster,
                                           resource::PricingModel(),
                                           ServiceOptions(), concurrency);
    const Result<core::WorkloadReport> report = service.Run(workload);
    RAQO_CHECK(report.ok()) << report.status().ToString();
    const bool identical = SamePlans(*baseline, *report);
    RAQO_CHECK(identical)
        << "concurrent service diverged from sequential plans";
    table.AddRow({bench::Int(threads),
                  bench::Num(report->wall_clock_ms, "%.1f"),
                  bench::Num(baseline->wall_clock_ms /
                                 report->wall_clock_ms,
                             "%.2fx"),
                  bench::Int(report->shared_cache.hits),
                  bench::Int(report->shared_cache.misses),
                  identical ? "yes" : "NO"});
    const int64_t hits = report->shared_cache.hits;
    const int64_t misses = report->shared_cache.misses;
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    if (!json_levels.empty()) json_levels += ", ";
    json_levels += StrPrintf(
        "{\"threads\": %d, \"wall_ms\": %s, \"speedup\": %s, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld, \"hit_rate\": %s, "
        "\"plans_identical\": %s}",
        threads, JsonNumber(report->wall_clock_ms).c_str(),
        JsonNumber(baseline->wall_clock_ms / report->wall_clock_ms).c_str(),
        (long long)hits, (long long)misses, JsonNumber(hit_rate).c_str(),
        identical ? "true" : "false");
  }
  table.Print();

  const std::string json = StrPrintf(
      "{\"bench\": \"concurrent_workload\", \"queries\": %zu, "
      "\"sequential_wall_ms\": %s, \"levels\": [%s]}\n",
      workload.size(), JsonNumber(baseline->wall_clock_ms).c_str(),
      json_levels.c_str());
  if (Status written = WriteTextFile("BENCH_concurrent.json", json);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_concurrent.json\n");
  std::printf(
      "\nspeedup scales with physical cores (target: >=2x at 4 threads on "
      "a >=4-core host); plans, costs, and resource configurations are "
      "identical to the sequential baseline at every thread count\n");
  return 0;
}
