// Concurrent planning-service throughput: a Figure 15(b)-style workload
// of many queries over a random schema, planned by the sequential
// WorkloadRunner and by the ConcurrentWorkloadRunner at 1/2/4/8 worker
// threads sharing one exact-match resource-plan cache, plus a cold
// (cache-off) head-to-head of the sequential and parallel brute-force
// resource searches.
//
// Besides the wall-clock speedup the bench verifies, for every thread
// count, that the concurrent service returned exactly the sequential
// plans and costs — the determinism contract the concurrency test suite
// checks is re-asserted here on the bench workload itself. Speedup is
// reported against the measured hardware concurrency: on a single-core
// host all configurations collapse to ~1x by construction, while on a
// 4-core host the 4-thread run shows the >=2x the service targets.
//
// With --smoke the bench turns into a CI regression gate: it exits
// non-zero when the parallel brute-force cold path is materially slower
// than the sequential one (it must not be — small grids fall back to the
// sequential scan), or when the 4-thread speedup on a >=4-core host
// falls below a conservative floor.

#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "catalog/random_schema.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/concurrent_workload_runner.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

// The cold ratio gate: sequential_ms / parallel_ms must stay above this.
// The paper-default grid sits below the parallel planner's
// min_parallel_cells threshold, so both searches run the identical
// sequential scan and the ratio is ~1.0 up to noise.
constexpr double kColdRatioFloor = 0.9;

// The scaling gate, enforced only on hosts with >= 4 hardware threads:
// 4 planner workers must beat the sequential baseline by at least this
// much. The serial-bottleneck era plateaued at ~1.56x; the persistent
// shared pools clear 2x on a 4-core CI runner, so 1.7x is conservative.
constexpr double kSpeedupFloor = 1.7;

core::RaqoPlannerOptions ServiceOptions() {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  // Exact-match shared caching: deterministic (hits reproduce what
  // planning would compute) and still effective on a workload with
  // repeated data characteristics.
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = false;
  return options;
}

core::RaqoPlannerOptions ColdOptions(core::ResourceSearch search) {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = false;
  options.evaluator.search = search;
  return options;
}

// Per-query planning-latency distribution of a workload report: the
// tail matters to a planning *service* (one slow query behind a shared
// pool shows up at p99 long before it moves the mean).
bench::LatencyStats PlanLatencies(const core::WorkloadReport& report) {
  std::vector<double> wall_ms;
  wall_ms.reserve(report.queries.size());
  for (const core::QueryRunReport& query : report.queries) {
    wall_ms.push_back(query.wall_ms);
  }
  return bench::SummarizeLatencies(wall_ms);
}

std::string LatencyCell(const bench::LatencyStats& stats) {
  return StrPrintf("%.1f/%.1f/%.1f", stats.p50, stats.p95, stats.p99);
}

bool SamePlans(const core::WorkloadReport& a, const core::WorkloadReport& b) {
  if (a.queries.size() != b.queries.size()) return false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].plan != b.queries[i].plan) return false;
    if (a.queries[i].cost.seconds != b.queries[i].cost.seconds) return false;
    if (a.queries[i].cost.dollars != b.queries[i].cost.dollars) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raqo;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  catalog::RandomSchemaOptions schema;
  schema.num_tables = 40;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  // 64 queries of 4..10 relations; labels repeat data characteristics
  // often enough for the shared cache to matter.
  Rng rng(2024);
  std::vector<core::WorkloadQuery> workload;
  for (int i = 0; i < 64; ++i) {
    core::WorkloadQuery query;
    query.label = "q" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(4, 10)),
        static_cast<uint64_t>(9000 + i));
    workload.push_back(std::move(query));
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  bench::Section("Concurrent planning service: across-query workload "
                 "(64 queries, random 40-table schema)");
  std::printf("hardware threads available: %u\n\n", hardware_threads);

  // Sequential baseline.
  core::RaqoPlanner planner(&cat, models, cluster, resource::PricingModel(),
                            ServiceOptions());
  core::WorkloadRunner sequential(&planner);
  const Result<core::WorkloadReport> baseline = sequential.Run(workload);
  RAQO_CHECK(baseline.ok()) << baseline.status().ToString();

  // Rendered to BENCH_concurrent.json alongside the printed table.
  std::string json_levels;
  double speedup_at_4 = 0.0;
  bench::Table table({"threads", "wall clock (ms)", "speedup",
                      "p50/p95/p99 (ms)", "cache hits", "cache misses",
                      "plans identical"});
  const bench::LatencyStats baseline_lat = PlanLatencies(*baseline);
  table.AddRow({"sequential", bench::Num(baseline->wall_clock_ms, "%.1f"),
                bench::Num(1.0, "%.2fx"), LatencyCell(baseline_lat),
                bench::Int(baseline->total_cache_hits),
                bench::Int(baseline->total_cache_misses), "-"});

  for (int threads : {1, 2, 4, 8}) {
    core::ConcurrentRunnerOptions concurrency;
    concurrency.num_threads = threads;
    concurrency.share_cache = true;
    concurrency.cache_shards = 8;
    core::ConcurrentWorkloadRunner service(&cat, models, cluster,
                                           resource::PricingModel(),
                                           ServiceOptions(), concurrency);
    const Result<core::WorkloadReport> report = service.Run(workload);
    RAQO_CHECK(report.ok()) << report.status().ToString();
    const bool identical = SamePlans(*baseline, *report);
    RAQO_CHECK(identical)
        << "concurrent service diverged from sequential plans";
    const double speedup =
        baseline->wall_clock_ms / report->wall_clock_ms;
    if (threads == 4) speedup_at_4 = speedup;
    const bench::LatencyStats level_lat = PlanLatencies(*report);
    table.AddRow({bench::Int(threads),
                  bench::Num(report->wall_clock_ms, "%.1f"),
                  bench::Num(speedup, "%.2fx"), LatencyCell(level_lat),
                  bench::Int(report->shared_cache.hits),
                  bench::Int(report->shared_cache.misses),
                  identical ? "yes" : "NO"});
    const int64_t hits = report->shared_cache.hits;
    const int64_t misses = report->shared_cache.misses;
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    if (!json_levels.empty()) json_levels += ", ";
    json_levels += StrPrintf(
        "{\"threads\": %d, \"wall_ms\": %s, \"speedup\": %s, %s, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld, \"hit_rate\": %s, "
        "\"plans_identical\": %s}",
        threads, JsonNumber(report->wall_clock_ms).c_str(),
        JsonNumber(speedup).c_str(),
        bench::LatencyJsonFields(level_lat, "ms").c_str(),
        (long long)hits, (long long)misses, JsonNumber(hit_rate).c_str(),
        identical ? "true" : "false");
  }
  table.Print();

  // Cold path: one planner, no cache, every resource search computed.
  // The parallel brute force must match the sequential one's wall clock
  // on the paper-default grid (it falls back to the same sequential scan
  // below min_parallel_cells) and must return bit-identical plans.
  bench::Section("Cold brute-force search: sequential vs parallel "
                 "(no cache, paper-default 10x100 grid)");
  core::RaqoPlanner cold_seq_planner(
      &cat, models, cluster, resource::PricingModel(),
      ColdOptions(core::ResourceSearch::kBruteForce));
  core::WorkloadRunner cold_seq_runner(&cold_seq_planner);
  const Result<core::WorkloadReport> cold_seq =
      cold_seq_runner.Run(workload);
  RAQO_CHECK(cold_seq.ok()) << cold_seq.status().ToString();

  core::RaqoPlanner cold_par_planner(
      &cat, models, cluster, resource::PricingModel(),
      ColdOptions(core::ResourceSearch::kParallelBruteForce));
  core::WorkloadRunner cold_par_runner(&cold_par_planner);
  const Result<core::WorkloadReport> cold_par =
      cold_par_runner.Run(workload);
  RAQO_CHECK(cold_par.ok()) << cold_par.status().ToString();
  RAQO_CHECK(SamePlans(*cold_seq, *cold_par))
      << "parallel brute force diverged from sequential plans";

  const double cold_ratio =
      cold_par->wall_clock_ms > 0.0
          ? cold_seq->wall_clock_ms / cold_par->wall_clock_ms
          : 1.0;
  bench::Table cold_table(
      {"search", "wall clock (ms)", "vs sequential"});
  cold_table.AddRow({"brute-force",
                     bench::Num(cold_seq->wall_clock_ms, "%.1f"),
                     bench::Num(1.0, "%.2fx")});
  cold_table.AddRow({"parallel-brute-force",
                     bench::Num(cold_par->wall_clock_ms, "%.1f"),
                     bench::Num(cold_ratio, "%.2fx")});
  cold_table.Print();

  const std::string json = StrPrintf(
      "{\"bench\": \"concurrent_workload\", \"queries\": %zu, "
      "\"hardware_threads\": %u, "
      "\"sequential_wall_ms\": %s, \"sequential\": {%s}, "
      "\"levels\": [%s], "
      "\"brute_force_cold\": {\"sequential_ms\": %s, \"parallel_ms\": %s, "
      "\"ratio\": %s}}\n",
      workload.size(), hardware_threads,
      JsonNumber(baseline->wall_clock_ms).c_str(),
      bench::LatencyJsonFields(baseline_lat, "ms").c_str(),
      json_levels.c_str(),
      JsonNumber(cold_seq->wall_clock_ms).c_str(),
      JsonNumber(cold_par->wall_clock_ms).c_str(),
      JsonNumber(cold_ratio).c_str());
  if (Status written = WriteTextFile("BENCH_concurrent.json", json);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_concurrent.json\n");
  std::printf(
      "\nspeedup scales with physical cores (target: >=2x at 4 threads on "
      "a >=4-core host); plans, costs, and resource configurations are "
      "identical to the sequential baseline at every thread count\n");

  if (smoke) {
    bool ok = true;
    if (cold_ratio < kColdRatioFloor) {
      std::fprintf(stderr,
                   "SMOKE FAIL: parallel brute-force cold path is %.2fx "
                   "the sequential wall clock (floor %.2fx) — the "
                   "sequential fallback regressed\n",
                   cold_ratio, kColdRatioFloor);
      ok = false;
    }
    if (hardware_threads >= 4) {
      if (speedup_at_4 < kSpeedupFloor) {
        std::fprintf(stderr,
                     "SMOKE FAIL: 4-thread speedup %.2fx is below the "
                     "%.2fx floor on a %u-thread host — the concurrent "
                     "core regressed\n",
                     speedup_at_4, kSpeedupFloor, hardware_threads);
        ok = false;
      }
    } else {
      std::printf(
          "smoke: host has %u hardware threads, skipping the 4-thread "
          "speedup gate (needs >= 4)\n",
          hardware_threads);
    }
    if (!ok) return 1;
    std::printf("smoke: all scaling gates passed\n");
  }
  return 0;
}
