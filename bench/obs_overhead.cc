// Overhead budget of the observability layer. The instrumentation is
// compiled into every planner hot path, so its *disabled* cost is the
// one that matters: with tracing off and metrics off the gates must be
// invisible, and the default configuration (metrics on, tracing off)
// must stay within 5% of fully dark planning. The bench measures whole
// planning runs at each observability level plus the per-call cost of
// the disabled primitives, and exits non-zero when the 5% budget is
// blown — so CI can run it as a regression gate.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "common/stopwatch.h"
#include "core/raqo_planner.h"
#include "core/workload_runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

std::vector<core::WorkloadQuery> TpchWorkload(
    const catalog::Catalog& catalog) {
  std::vector<core::WorkloadQuery> workload;
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
        catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
    core::WorkloadQuery query;
    query.label = catalog::TpchQueryName(q);
    query.tables = *catalog::TpchQueryTables(catalog, q);
    workload.push_back(std::move(query));
  }
  return workload;
}

/// One full planning pass over the workload; returns wall millis.
double PlanOnce(core::RaqoPlanner& planner,
                const std::vector<core::WorkloadQuery>& workload) {
  core::WorkloadRunner runner(&planner);
  Stopwatch watch;
  Result<core::WorkloadReport> report = runner.Run(workload);
  const double ms = watch.ElapsedMillis();
  RAQO_CHECK(report.ok()) << report.status().ToString();
  return ms;
}

/// Best-of-`reps` timing after one warmup pass: the minimum is the run
/// least disturbed by the machine, which is what an overhead comparison
/// should use.
double BestOf(int reps, core::RaqoPlanner& planner,
              const std::vector<core::WorkloadQuery>& workload) {
  PlanOnce(planner, workload);  // warmup: caches, branch predictors
  double best = PlanOnce(planner, workload);
  for (int r = 1; r < reps; ++r) {
    best = std::min(best, PlanOnce(planner, workload));
  }
  return best;
}

/// Keeps the compiler from deleting a measured loop.
template <typename T>
void Sink(T&& value) {
  volatile auto v = value;
  (void)v;
}

}  // namespace
}  // namespace raqo

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  RAQO_CHECK(models.ok()) << models.status().ToString();
  const std::vector<core::WorkloadQuery> workload = TpchWorkload(catalog);

  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  core::RaqoPlanner planner(&catalog, *models,
                            resource::ClusterConditions::PaperDefault(),
                            resource::PricingModel(), options);

  constexpr int kReps = 5;
  struct Level {
    const char* name;
    bool metrics;
    bool tracing;
    double best_ms = 0.0;
  };
  Level levels[] = {
      {"all off (baseline)", false, false},
      {"metrics on (default)", true, false},
      {"metrics + tracing on", true, true},
  };
  for (Level& level : levels) {
    obs::DefaultMetrics().set_enabled(level.metrics);
    obs::DefaultTracer().set_enabled(level.tracing);
    obs::DefaultTracer().Clear();
    level.best_ms = BestOf(kReps, planner, workload);
  }
  obs::DefaultMetrics().set_enabled(true);  // restore defaults
  obs::DefaultTracer().set_enabled(false);
  obs::DefaultTracer().Clear();

  bench::Section("planning a TPC-H workload at each observability level");
  bench::Table table({"configuration", "best ms", "vs baseline"});
  const double baseline = levels[0].best_ms;
  for (const Level& level : levels) {
    table.AddRow({level.name, bench::Num(level.best_ms, "%.3f"),
                  bench::Num(100.0 * (level.best_ms / baseline - 1.0),
                             "%+.1f%%")});
  }
  table.Print();

  // Disabled-primitive costs: what every instrumentation site pays when
  // the layer is off.
  bench::Section("disabled-path primitives (per call)");
  constexpr int64_t kIters = 2'000'000;
  bench::Table prim({"primitive", "ns/call"});
  {
    obs::DefaultTracer().set_enabled(false);
    Stopwatch watch;
    int64_t live = 0;
    for (int64_t i = 0; i < kIters; ++i) {
      obs::Span span = obs::DefaultTracer().StartSpan("off");
      live += span.recording() ? 1 : 0;
    }
    Sink(live);
    prim.AddRow({"StartSpan, tracing off",
                 bench::Num(watch.ElapsedMicros() * 1e3 / kIters, "%.2f")});
  }
  {
    obs::DefaultMetrics().set_enabled(false);
    static obs::Counter* counter =
        obs::DefaultMetrics().GetCounter("bench.gate");
    Stopwatch watch;
    int64_t live = 0;
    for (int64_t i = 0; i < kIters; ++i) {
      if (obs::MetricsOn()) counter->Add(1);
      live += i;
    }
    Sink(live);
    prim.AddRow({"counter site, metrics off",
                 bench::Num(watch.ElapsedMicros() * 1e3 / kIters, "%.2f")});
    obs::DefaultMetrics().set_enabled(true);
  }
  {
    static obs::Counter* counter =
        obs::DefaultMetrics().GetCounter("bench.hot");
    Stopwatch watch;
    for (int64_t i = 0; i < kIters; ++i) {
      if (obs::MetricsOn()) counter->Add(1);
    }
    prim.AddRow({"counter site, metrics on",
                 bench::Num(watch.ElapsedMicros() * 1e3 / kIters, "%.2f")});
    Sink(counter->Value());
  }
  {
    static obs::Histogram* histogram =
        obs::DefaultMetrics().GetHistogram("bench.hist");
    Stopwatch watch;
    for (int64_t i = 0; i < kIters; ++i) {
      histogram->Record(static_cast<double>(i % 1000));
    }
    prim.AddRow({"histogram Record, metrics on",
                 bench::Num(watch.ElapsedMicros() * 1e3 / kIters, "%.2f")});
    Sink(histogram->Count());
  }
  prim.Print();

  // The regression gate: the default configuration (metrics on, tracing
  // compiled in but disabled) must cost less than 5% over fully dark.
  const double overhead = levels[1].best_ms / baseline - 1.0;
  std::printf("\ndefault-configuration overhead: %+.2f%% (budget 5%%)\n",
              overhead * 100.0);
  if (overhead >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the 5%% "
                 "budget\n",
                 overhead * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
