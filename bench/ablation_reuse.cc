// Ablation: per-operator resources vs container reuse (the trade-off the
// paper's research agenda raises in Section VIII, "RAQO on arbitrary
// queries", point iii). For each TPC-H query, the RAQO joint plan's
// per-operator resources are compared — on the execution simulator — with
// the best single plan-wide configuration, whose stages reuse containers
// and skip per-stage startup. Also prints the Section VI-B search-space
// accounting that motivates per-operator independence in the first place.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/container_reuse.h"
#include "core/raqo_planner.h"
#include "core/search_space.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  sim::ExecutionSimulator simulator(sim::EngineProfile::Hive(), &cat);
  core::RaqoPlanner planner(&cat, models,
                            resource::ClusterConditions::PaperDefault());

  bench::Section("Search-space accounting (Section VI-B), 1000-point "
                 "resource grid");
  {
    bench::Table table({"relations", "joint space", "independent space"});
    for (int n : {2, 4, 8, 20, 100}) {
      const core::SearchSpaceSize space =
          core::ComputeSearchSpace(n, plan::kNumJoinImpls, 100, 10);
      table.AddRow({bench::Int(n),
                    StrPrintf("10^%.1f", space.log10_joint),
                    StrPrintf("10^%.1f", space.log10_independent)});
    }
    table.Print();
  }

  bench::Section("Per-operator resources vs harmonized (container reuse)");
  bench::Table table({"query", "per-operator (s)", "harmonized (s)",
                      "harmonized config", "winner"});
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ3, catalog::TpchQuery::kQ2,
        catalog::TpchQuery::kAll}) {
    const std::vector<catalog::TableId> tables =
        *catalog::TpchQueryTables(cat, q);
    Result<core::JointPlan> joint = planner.Plan(tables);
    RAQO_CHECK(joint.ok()) << joint.status().ToString();
    Result<core::ReuseAnalysis> analysis =
        core::AnalyzeContainerReuse(simulator, *joint->plan);
    RAQO_CHECK(analysis.ok()) << analysis.status().ToString();
    table.AddRow({catalog::TpchQueryName(q),
                  bench::Num(analysis->per_operator_seconds),
                  bench::Num(analysis->harmonized_seconds),
                  analysis->harmonized_config.ToString(),
                  analysis->harmonize_wins ? "harmonized" : "per-operator"});
  }
  table.Print();
  std::printf(
      "\ntwo effects combine here: (i) a shared configuration skips "
      "per-stage container startup, and (ii) the harmonization search "
      "re-scores the candidate configurations on the simulator, "
      "correcting residual cost-model error in the per-operator choices. "
      "When operators genuinely want different shapes (e.g. one broadcast "
      "needing a huge container next to a wide shuffle), per-operator "
      "planning keeps its edge — the trade-off the paper flags\n");
  return 0;
}
