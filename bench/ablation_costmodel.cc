// Ablation: cost-model feature sets. The paper trains its regression on
// [ss, ss^2, cs, cs^2, nc, nc^2, cs*nc] and defers richer features to
// future work ("We could further tune the above cost model by adding
// more features"). This bench quantifies that choice against the
// execution profiles: fit quality (R^2, RMSE, MAPE) of the paper's
// feature set vs the extended set (larger input + inverse-parallelism
// terms), per operator and per engine.

#include <cstdio>

#include "bench/bench_util.h"
#include "cost/model_eval.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

void Engine(const sim::EngineProfile& profile) {
  bench::Section("Cost-model fit on " + profile.name + " profile runs");
  bench::Table table({"operator", "feature set", "R^2", "RMSE (s)",
                      "MAPE (%)", "samples"});
  for (plan::JoinImpl impl : {plan::JoinImpl::kSortMergeJoin,
                              plan::JoinImpl::kBroadcastHashJoin}) {
    const auto samples =
        sim::CollectProfileSamples(profile, impl, sim::ProfileGrid());
    for (cost::FeatureSet set :
         {cost::FeatureSet::kPaper, cost::FeatureSet::kExtended}) {
      Result<cost::OperatorCostModel> model = cost::OperatorCostModel::Train(
          "ablation", samples, set);
      RAQO_CHECK(model.ok()) << model.status().ToString();
      Result<cost::ModelFitReport> fit =
          cost::EvaluateFit(*model, samples);
      RAQO_CHECK(fit.ok());
      table.AddRow({plan::JoinImplName(impl),
                    set == cost::FeatureSet::kPaper ? "paper-7" : "extended-10",
                    bench::Num(fit->r_squared, "%.4f"),
                    bench::Num(fit->rmse_seconds),
                    bench::Num(fit->mean_abs_pct_error, "%.1f"),
                    bench::Int(static_cast<int64_t>(fit->samples))});
    }
  }
  table.Print();
}

}  // namespace

int main() {
  using namespace raqo;
  Engine(sim::EngineProfile::Hive());
  Engine(sim::EngineProfile::Spark());
  std::printf(
      "\nthe extended set captures the probe/shuffle side and the "
      "1/parallelism shape the quadratic paper form cannot, which is "
      "what keeps RAQO's plan ranking aligned with actual execution "
      "(see EXPERIMENTS.md, cost-model notes)\n");
  return 0;
}
