// Reproduces Figure 1: the cumulative distribution of the queue-time to
// execution-time ratio of jobs on a shared production cluster. The paper's
// headline: more than 80% of jobs spend at least as much time queued as
// executing, and more than 20% wait at least 4x their execution time.
//
// The Microsoft production traces are not available, so the jobs come from
// a synthetic heavy-tailed workload pushed through a FIFO container-queue
// simulation of a near-saturated cluster (see DESIGN.md, substitutions).

#include <cstdio>

#include "bench/bench_util.h"
#include "trace/queue_sim.h"

int main() {
  using namespace raqo;
  bench::Section("Figure 1: queue-time / runtime ratio CDF");

  trace::WorkloadOptions options;  // calibrated defaults
  Result<EmpiricalCdf> cdf = trace::QueueRuntimeRatioCdf(options);
  if (!cdf.ok()) {
    std::fprintf(stderr, "error: %s\n", cdf.status().ToString().c_str());
    return 1;
  }

  bench::Table table({"fraction of jobs", "queue/runtime ratio"});
  for (const auto& [fraction, ratio] : cdf->Points(21)) {
    table.AddRow({bench::Num(fraction), bench::Num(ratio, "%.3f")});
  }
  table.Print();

  std::printf("\nheadline statistics (paper: >0.80 and >0.20):\n");
  std::printf("  fraction with ratio >= 1:  %.3f\n",
              cdf->FractionAtOrAbove(1.0));
  std::printf("  fraction with ratio >= 4:  %.3f\n",
              cdf->FractionAtOrAbove(4.0));
  std::printf("  median ratio:              %.3f\n", cdf->Quantile(0.5));
  return 0;
}
