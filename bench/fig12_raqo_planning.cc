// Reproduces Figure 12: RAQO planning on the TPC-H schema. For each
// evaluation query (Q12: 1 join, Q3: 2 joins, Q2: 3 joins, All: 7 joins)
// and each query planner (the FastRandomized multi-objective planner and
// the Selinger bottom-up planner), the run compares plain query
// optimization ("QO", costing under one fixed resource configuration)
// against cost-based RAQO (hill-climbing resource planning inside
// getPlanCost; cache off, as in the paper's default setup).
//
// Reported, as in the paper: planner wall-clock runtime and the number of
// resource configurations explored (#Resource-Iterations).

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

struct Row {
  double wall_ms = 0.0;
  int64_t resource_iters = 0;
  double cost_seconds = 0.0;
};

Row Run(const catalog::Catalog& cat,
        const std::vector<catalog::TableId>& tables,
        const cost::JoinCostModels& models, core::PlannerAlgorithm algo,
        bool raqo) {
  const int kRepeats = 3;
  Row best{};
  for (int rep = 0; rep < kRepeats; ++rep) {
    core::RaqoPlannerOptions options;
    options.algorithm = algo;
    core::RaqoPlanner planner(&cat, models,
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(), options);
    Result<core::JointPlan> result =
        raqo ? planner.Plan(tables)
             : planner.PlanForResources(tables,
                                        resource::ResourceConfig(4, 10));
    RAQO_CHECK(result.ok()) << result.status().ToString();
    best.wall_ms += result->stats.wall_ms / kRepeats;
    best.resource_iters = result->stats.resource_configs_explored;
    best.cost_seconds = result->cost.seconds;
  }
  return best;
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());

  bench::Section("Figure 12: planner runtimes on TPC-H (avg of 3 runs)");
  bench::Table table({"query", "planner", "QO (ms)", "RAQO (ms)",
                      "RAQO resource-iters", "QO cost (s)",
                      "RAQO cost (s)"});
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
        catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
    const std::vector<catalog::TableId> tables =
        *catalog::TpchQueryTables(cat, q);
    for (core::PlannerAlgorithm algo :
         {core::PlannerAlgorithm::kFastRandomized,
          core::PlannerAlgorithm::kSelinger}) {
      const Row qo = Run(cat, tables, models, algo, /*raqo=*/false);
      const Row rq = Run(cat, tables, models, algo, /*raqo=*/true);
      table.AddRow({catalog::TpchQueryName(q),
                    core::PlannerAlgorithmName(algo),
                    bench::Num(qo.wall_ms, "%.3f"),
                    bench::Num(rq.wall_ms, "%.3f"),
                    bench::Int(rq.resource_iters),
                    bench::Num(qo.cost_seconds),
                    bench::Num(rq.cost_seconds)});
    }
  }
  table.Print();
  std::printf(
      "\npaper: plans still produced in milliseconds; resource planning "
      "adds overhead because the whole resource space is considered per "
      "candidate operator (>0.5M iterations for FastRandomized on All)\n");
  return 0;
}
