// Reproduces Figure 10: the *default* decision trees for join operator
// implementation in Hive and Spark — a single split on the data size at
// the engine's broadcast threshold (10 MB), entirely blind to resources.

#include <cstdio>

#include "bench/bench_util.h"
#include "rules/rule_based.h"
#include "sim/engine_profile.h"

int main() {
  using namespace raqo;
  for (const sim::EngineProfile& profile :
       {sim::EngineProfile::Hive(), sim::EngineProfile::Spark()}) {
    bench::Section("Figure 10: default decision tree (" + profile.name +
                   ")");
    Result<rules::DecisionTree> tree = rules::BuildDefaultRuleTree(profile);
    if (!tree.ok()) {
      std::fprintf(stderr, "error: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", tree->ToText().c_str());
    std::printf("\nnodes=%d leaves=%d max-path=%d\n", tree->NodeCount(),
                tree->LeafCount(), tree->MaxPathLength());
  }
  return 0;
}
