// Reproduces Figure 7: the *monetary* switch points between BHJ and SMJ
// over varying data sizes (the dollar-cost analogue of Figure 4). The
// paper's takeaway: the most cost-effective implementation varies with
// both the available resources and the data, so query planning without
// resource planning also costs money, not just time.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/table.h"
#include "resource/resource_config.h"
#include "sim/exec_model.h"

namespace {

using namespace raqo;

/// Monetary cost (GB*s of reserved memory) of one join, +inf when OOM.
double MoneyOf(const sim::EngineProfile& profile, plan::JoinImpl impl,
               double small_gb, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::JoinRunResult> r =
      sim::SimulateJoin(profile, impl, catalog::GbToBytes(small_gb),
                        catalog::GbToBytes(77.0), params);
  if (!r.ok()) return std::numeric_limits<double>::infinity();
  return cs * nc * r->seconds;
}

/// Largest smaller-relation size at which BHJ is the monetarily cheaper
/// implementation (bisection, as in rules::FindSwitchPointGb but on the
/// dollar objective).
double MonetarySwitchGb(const sim::EngineProfile& profile, double cs,
                        int nc) {
  auto bhj_wins = [&](double ss) {
    return MoneyOf(profile, plan::JoinImpl::kBroadcastHashJoin, ss, cs, nc) <=
           MoneyOf(profile, plan::JoinImpl::kSortMergeJoin, ss, cs, nc);
  };
  double lo = 0.0;
  double hi = 12.0;
  if (!bhj_wins(0.01)) return 0.0;
  if (bhj_wins(hi)) return hi;
  while (hi - lo > 0.01) {
    const double mid = (lo + hi) / 2;
    (bhj_wins(mid) ? lo : hi) = mid;
  }
  return (lo + hi) / 2;
}

}  // namespace

int main() {
  using namespace raqo;
  const sim::EngineProfile hive = sim::EngineProfile::Hive();

  bench::Section("Figure 7(a): monetary switch point vs container size "
                 "(nc = 10)");
  {
    bench::Table table({"container (GB)", "monetary switch (GB)",
                        "time switch for reference (GB)"});
    for (double cs : {3.0, 5.0, 7.0, 9.0, 11.0}) {
      // Time switch via the same bisection on seconds.
      auto time_wins = [&](double ss) {
        sim::ExecParams p;
        p.container_size_gb = cs;
        p.num_containers = 10;
        auto b = sim::SimulateJoin(hive, plan::JoinImpl::kBroadcastHashJoin,
                                   catalog::GbToBytes(ss),
                                   catalog::GbToBytes(77.0), p);
        auto s = sim::SimulateJoin(hive, plan::JoinImpl::kSortMergeJoin,
                                   catalog::GbToBytes(ss),
                                   catalog::GbToBytes(77.0), p);
        return b.ok() && s.ok() && b->seconds <= s->seconds;
      };
      double lo = 0, hi = 12;
      if (!time_wins(0.01)) {
        hi = 0;
      } else if (!time_wins(hi)) {
        while (hi - lo > 0.01) {
          const double mid = (lo + hi) / 2;
          (time_wins(mid) ? lo : hi) = mid;
        }
      }
      table.AddRow({bench::Num(cs, "%.0f"),
                    bench::Num(MonetarySwitchGb(hive, cs, 10)),
                    bench::Num((lo + hi) / 2)});
    }
    table.Print();
  }

  bench::Section("Figure 7(b): monetary switch point vs container count "
                 "(cs = 9 GB)");
  {
    bench::Table table({"containers", "monetary switch (GB)"});
    for (int nc : {5, 10, 20, 40}) {
      table.AddRow({bench::Int(nc),
                    bench::Num(MonetarySwitchGb(hive, 9.0, nc))});
    }
    table.Print();
  }
  std::printf("\npaper: monetary switch points move with both resources "
              "and data, like the time switch points\n");
  return 0;
}
