// Reproduces Figure 2: the potential gains of joint query and resource
// optimization. A single-join TPC-H query (sampled orders x lineitem) runs
// under a sweep of resource configurations; "Default Opt." is the plan the
// engine's built-in rule picks (broadcast only below 10 MB, i.e. SMJ here)
// executed at each configuration, while "Query & Resource Opt." picks the
// join implementation *and* the resource configuration jointly.
//
// Paper's shape: the default optimizer is optimal for very few resource
// configurations; its plans are up to ~2x slower and ~2x more
// resource-hungry than the joint optimum.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/table.h"
#include "resource/pricing.h"
#include "rules/rule_based.h"
#include "sim/exec_model.h"

namespace {

using namespace raqo;

struct Run {
  double seconds = 0.0;
  double tb_seconds = 0.0;
  bool feasible = false;
};

Run Execute(const sim::EngineProfile& profile, plan::JoinImpl impl,
            double small_gb, double large_gb, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::JoinRunResult> r =
      sim::SimulateJoin(profile, impl, catalog::GbToBytes(small_gb),
                        catalog::GbToBytes(large_gb), params);
  Run run;
  if (!r.ok()) return run;
  run.feasible = true;
  run.seconds = r->seconds;
  run.tb_seconds = resource::PricingModel::TerabyteSeconds(
      resource::ResourceConfig(cs, static_cast<double>(nc)), r->seconds);
  return run;
}

void Engine(const char* label, const sim::EngineProfile& profile,
            double small_gb, double large_gb) {
  const std::vector<std::pair<double, int>> configs = {
      {2, 10}, {2, 40}, {4, 10}, {4, 25}, {4, 40}, {6, 10},
      {6, 25}, {6, 40}, {8, 10}, {8, 25}, {10, 10}, {10, 40}};

  // The joint optimum: best implementation at its best configuration.
  Run joint;
  plan::JoinImpl joint_impl = plan::JoinImpl::kSortMergeJoin;
  std::pair<double, int> joint_config = {0, 0};
  for (const auto& [cs, nc] : configs) {
    for (plan::JoinImpl impl : {plan::JoinImpl::kSortMergeJoin,
                                plan::JoinImpl::kBroadcastHashJoin}) {
      const Run run = Execute(profile, impl, small_gb, large_gb, cs, nc);
      if (run.feasible && (!joint.feasible || run.seconds < joint.seconds)) {
        joint = run;
        joint_impl = impl;
        joint_config = {cs, nc};
      }
    }
  }

  // The default optimizer: 10 MB rule, blind to resources.
  rules::DefaultRulePolicy default_rule(profile.default_bhj_threshold_mb);
  const plan::JoinImpl default_impl = default_rule.Choose(
      small_gb, resource::ResourceConfig(4, 10), 0);

  bench::Section(std::string("Figure 2 (") + label +
                 "): execution time and resources used");
  std::printf("join: %.2f GB x %.2f GB; default rule picks %s; joint "
              "optimum is %s at <%g GB x %d containers>\n\n",
              small_gb, large_gb, plan::JoinImplName(default_impl),
              plan::JoinImplName(joint_impl), joint_config.first,
              joint_config.second);

  bench::Table table({"resource config", "Default Opt. (s)",
                      "Q&R Opt. (s)", "Default (TB*s)", "Q&R (TB*s)"});
  double worst_ratio = 0.0;
  for (const auto& [cs, nc] : configs) {
    const Run def = Execute(profile, default_impl, small_gb, large_gb, cs,
                            nc);
    const std::string cfg = StrPrintf("%4.0f GB x %3d", cs, nc);
    if (!def.feasible) {
      table.AddRow({cfg, "OOM", bench::Num(joint.seconds), "OOM",
                    bench::Num(joint.tb_seconds)});
      continue;
    }
    worst_ratio = std::max(worst_ratio, def.seconds / joint.seconds);
    table.AddRow({cfg, bench::Num(def.seconds), bench::Num(joint.seconds),
                  bench::Num(def.tb_seconds),
                  bench::Num(joint.tb_seconds)});
  }
  table.Print();
  std::printf("\nworst default/joint time ratio: %.2fx (paper: up to ~2x)\n",
              worst_ratio);
}

}  // namespace

int main() {
  // Hive at the paper's scale (sampled orders x lineitem, TPC-H SF100).
  Engine("Hive", sim::EngineProfile::Hive(), 5.1, 77.0);
  // SparkSQL works at MB-scale broadcast capacities (Figure 9(b)).
  Engine("SparkSQL", sim::EngineProfile::Spark(), 0.4, 20.0);
  return 0;
}
