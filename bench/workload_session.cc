// Workload-level view: a stream of TPC-H queries hits the RAQO planner
// the way an enterprise workload hits an optimizer service.
//  1. Across-query resource-plan caching (the Figure 15(b) scenario as an
//     API): repeated/similar queries reuse earlier resource plans.
//  2. Queueing-policy ablation on the job trace of Figure 1: strict FIFO
//     vs greedy backfill — relevant because RAQO jobs arrive with precise
//     resource requests the scheduler can reason about.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"
#include "trace/queue_sim.h"

namespace {

using namespace raqo;

void PlanningSession() {
  bench::Section("Across-query caching over a TPC-H planning session");
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());

  std::vector<core::WorkloadQuery> workload;
  for (int round = 0; round < 3; ++round) {
    for (catalog::TpchQuery q :
         {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
          catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
      workload.push_back({StrPrintf("%s#%d", catalog::TpchQueryName(q),
                                    round + 1),
                          *catalog::TpchQueryTables(cat, q)});
    }
  }

  auto run = [&](bool across) {
    core::RaqoPlannerOptions options;
    options.evaluator.use_cache = true;
    options.evaluator.cache_mode = core::CacheLookupMode::kNearestNeighbor;
    options.evaluator.cache_threshold_gb = 0.05;
    options.clear_cache_between_queries = !across;
    core::RaqoPlanner planner(&cat, models,
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(), options);
    core::WorkloadRunner runner(&planner);
    Result<core::WorkloadReport> report = runner.Run(workload);
    RAQO_CHECK(report.ok()) << report.status().ToString();
    return *std::move(report);
  };

  const core::WorkloadReport cleared = run(false);
  const core::WorkloadReport warm = run(true);

  bench::Table table({"query", "iters (cache/query)", "iters (cache kept)",
                      "hits (kept)"});
  for (size_t i = 0; i < warm.queries.size(); ++i) {
    table.AddRow({warm.queries[i].label,
                  bench::Int(cleared.queries[i].resource_configs_explored),
                  bench::Int(warm.queries[i].resource_configs_explored),
                  bench::Int(warm.queries[i].cache_hits)});
  }
  table.Print();
  std::printf("\ntotals: %lld vs %lld resource iterations (%.1fx saved by "
              "keeping the cache across queries); wall %.1f vs %.1f ms\n",
              (long long)cleared.total_resource_configs_explored,
              (long long)warm.total_resource_configs_explored,
              static_cast<double>(cleared.total_resource_configs_explored) /
                  static_cast<double>(
                      std::max<int64_t>(1,
                                        warm.total_resource_configs_explored)),
              cleared.total_wall_ms, warm.total_wall_ms);
}

void QueuePolicyAblation() {
  bench::Section("Queueing-policy ablation on the Figure 1 trace");
  trace::WorkloadOptions options;
  options.num_jobs = 10'000;
  const auto jobs = *trace::GenerateWorkload(options);

  bench::Table table({"policy", "frac ratio>=1", "frac ratio>=4",
                      "median ratio"});
  for (trace::QueuePolicy policy :
       {trace::QueuePolicy::kFifo, trace::QueuePolicy::kBackfill}) {
    const auto outcomes =
        *trace::SimulateQueue(jobs, options.cluster_capacity, policy);
    std::vector<double> ratios;
    ratios.reserve(outcomes.size());
    for (const auto& o : outcomes) {
      ratios.push_back(o.queue_to_runtime_ratio());
    }
    EmpiricalCdf cdf(std::move(ratios));
    table.AddRow({policy == trace::QueuePolicy::kFifo ? "FIFO" : "backfill",
                  bench::Num(cdf.FractionAtOrAbove(1.0), "%.3f"),
                  bench::Num(cdf.FractionAtOrAbove(4.0), "%.3f"),
                  bench::Num(cdf.Quantile(0.5), "%.2f")});
  }
  table.Print();
  std::printf("\ngreedy backfill soaks up the fragmentation that strict "
              "FIFO leaves behind on this trace (at the price of delaying "
              "jobs with large requests); the Figure 1 distribution is a "
              "FIFO-queue phenomenon\n");
}

}  // namespace

int main() {
  PlanningSession();
  QueuePolicyAblation();
  return 0;
}
