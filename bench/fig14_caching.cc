// Reproduces Figure 14: the effectiveness of the resource-plan cache on
// the TPC-H All query, over the "data delta threshold" (how far apart two
// smaller-input sizes may be for a cached resource plan to be reused).
// Compared, as in the paper: hill climbing alone (HC), HC with
// nearest-neighbor cache lookups (HC+Caching_NN), and HC with
// weighted-average lookups (HC+Caching_WA). Reported: resource iterations
// and planner runtime. The paper sees up to ~10x planner-time reduction
// at a 0.1 GB threshold.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

struct Row {
  double wall_ms = 0.0;
  int64_t resource_iters = 0;
  int64_t cache_hits = 0;
};

Row Run(const catalog::Catalog& cat,
        const std::vector<catalog::TableId>& tables,
        const cost::JoinCostModels& models, bool use_cache,
        core::CacheLookupMode mode, double threshold) {
  const int kRepeats = 3;
  Row out{};
  for (int rep = 0; rep < kRepeats; ++rep) {
    core::RaqoPlannerOptions options;
    options.algorithm = core::PlannerAlgorithm::kFastRandomized;
    options.evaluator.use_cache = use_cache;
    options.evaluator.cache_mode = mode;
    options.evaluator.cache_threshold_gb = threshold;
    core::RaqoPlanner planner(&cat, models,
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(), options);
    // The cache is cleared before each query run, as in the paper.
    Result<core::JointPlan> result = planner.Plan(tables);
    RAQO_CHECK(result.ok()) << result.status().ToString();
    out.wall_ms += result->stats.wall_ms / kRepeats;
    out.resource_iters = result->stats.resource_configs_explored;
    out.cache_hits = result->stats.cache_hits;
  }
  return out;
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  const std::vector<catalog::TableId> tables =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kAll);

  const Row hc = Run(cat, tables, models, false,
                     core::CacheLookupMode::kNearestNeighbor, 0.0);

  bench::Section("Figure 14: resource-plan cache on TPC-H All "
                 "(HC baseline vs cached variants; avg of 3 runs)");
  std::printf("HillClimbing (HC) baseline: %lld resource iterations, "
              "%.3f ms\n\n",
              (long long)hc.resource_iters, hc.wall_ms);

  bench::Table table({"data delta threshold (GB)", "HC+NN iters",
                      "HC+NN (ms)", "HC+NN hits", "HC+WA iters",
                      "HC+WA (ms)", "HC+WA hits"});
  for (double threshold : {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const Row nn = Run(cat, tables, models, true,
                       core::CacheLookupMode::kNearestNeighbor, threshold);
    const Row wa = Run(cat, tables, models, true,
                       core::CacheLookupMode::kWeightedAverage, threshold);
    table.AddRow({StrPrintf("%g", threshold), bench::Int(nn.resource_iters),
                  bench::Num(nn.wall_ms, "%.3f"), bench::Int(nn.cache_hits),
                  bench::Int(wa.resource_iters),
                  bench::Num(wa.wall_ms, "%.3f"),
                  bench::Int(wa.cache_hits)});
  }
  table.Print();
  std::printf("\npaper: caching becomes more effective as the threshold "
              "grows; up to ~10x planner-time reduction at 0.1 GB\n");
  return 0;
}
