#ifndef RAQO_BENCH_BENCH_UTIL_H_
#define RAQO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/strings.h"

namespace raqo::bench {

/// Tail-latency summary of one latency series (any unit; the caller
/// keeps units consistent). Every bench reports the same three
/// percentiles so JSON artifacts stay comparable across benches.
struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Percentiles over an unsorted sample (copied; linear-interpolated via
/// raqo::Percentile). Zeroes on an empty sample.
inline LatencyStats SummarizeLatencies(const std::vector<double>& values) {
  LatencyStats stats;
  if (values.empty()) return stats;
  stats.p50 = Percentile(values, 50.0);
  stats.p95 = Percentile(values, 95.0);
  stats.p99 = Percentile(values, 99.0);
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    if (v > stats.max) stats.max = v;
  }
  stats.mean = sum / static_cast<double>(values.size());
  return stats;
}

/// The JSON fragment every bench embeds for a latency series:
/// `"p50_<unit>": ..., "p95_<unit>": ..., "p99_<unit>": ...`.
inline std::string LatencyJsonFields(const LatencyStats& stats,
                                     const char* unit) {
  return StrPrintf(
      "\"p50_%s\": %.3f, \"p95_%s\": %.3f, \"p99_%s\": %.3f", unit,
      stats.p50, unit, stats.p95, unit, stats.p99);
}

/// Minimal fixed-width table printer for the figure-reproduction
/// binaries: each bench prints the same rows/series the paper's figure
/// plots, so the output can be compared against the paper directly.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    RAQO_CHECK(cells.size() == headers_.size())
        << "row width mismatch in bench table";
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::string line;
      for (size_t c = 0; c < row.size(); ++c) {
        line += StrPrintf("%-*s", static_cast<int>(widths[c]) + 2,
                          row[c].c_str());
      }
      std::printf("%s\n", line.c_str());
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline std::string Num(double v, const char* fmt = "%.2f") {
  return StrPrintf(fmt, v);
}

inline std::string Int(int64_t v) { return StrPrintf("%lld", (long long)v); }

}  // namespace raqo::bench

#endif  // RAQO_BENCH_BENCH_UTIL_H_
