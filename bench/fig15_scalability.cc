// Reproduces Figure 15: RAQO planner scalability.
//  (a) Schema size: a randomly generated 100-table schema; queries join
//      an increasing number of relations (up to all 100). Compared:
//      plain QO (fixed resources), RAQO (hill climbing), and RAQO with
//      the resource-plan cache. The paper sees the cached RAQO ~6x faster
//      than uncached and only ~1.29x slower than plain QO on average.
//  (b) Resource space: the 100-table query planned under cluster
//      conditions scaled from 100 to 100K containers and 10 to 100 GB
//      containers (40 conditions). Paper: overhead negligible up to 1K
//      containers, ~5x past 10K, runtimes still sub-second; across-query
//      caching helps ~30% past 10K containers.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/random_schema.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

core::RaqoPlannerOptions Options(bool raqo, bool cache) {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kFastRandomized;
  // A lighter mutation budget than the TPC-H runs: each 100-table plan
  // evaluation costs 99 operator costings.
  options.randomized.iterations = 5;
  options.randomized.moves_per_iteration = 24;
  options.evaluator.use_cache = cache;
  options.evaluator.cache_mode = core::CacheLookupMode::kNearestNeighbor;
  options.evaluator.cache_threshold_gb = 0.01;
  (void)raqo;
  return options;
}

double PlanMs(core::RaqoPlanner& planner,
              const std::vector<catalog::TableId>& tables, bool raqo) {
  Result<core::JointPlan> result =
      raqo ? planner.Plan(tables)
           : planner.PlanForResources(tables, resource::ResourceConfig(4, 10));
  RAQO_CHECK(result.ok()) << result.status().ToString();
  return result->stats.wall_ms;
}

/// Cluster conditions for the resource-space sweep. Algorithm 1 takes its
/// step sizes from the cluster conditions (GetDiscreteSteps); on very
/// large clusters the allocation granularity grows with the capacity
/// (nobody allocates 43,217 containers on a 100K-container cluster), so
/// the container step is capacity/1000 past 1K containers.
resource::ClusterConditions BigCluster(double max_cs, double max_nc) {
  const double nc_step = max_nc <= 1000.0 ? 1.0 : max_nc / 1000.0;
  return *resource::ClusterConditions::Create(
      resource::ResourceConfig(1.0, nc_step),
      resource::ResourceConfig(max_cs, max_nc),
      resource::ResourceConfig(1.0, nc_step));
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 100;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());

  bench::Section("Figure 15(a): scaling the schema (random 100-table "
                 "schema, growing join queries)");
  {
    bench::Table table({"query size (#tables)", "QO (ms)", "RAQO (ms)",
                        "RAQO+cache (ms)"});
    for (int n : {2, 5, 10, 20, 30, 50, 75, 100}) {
      const std::vector<catalog::TableId> tables =
          *catalog::RandomQueryTables(cat, n, 1234 + n);
      core::RaqoPlanner qo(&cat, models,
                           resource::ClusterConditions::PaperDefault(),
                           resource::PricingModel(), Options(false, false));
      core::RaqoPlanner raqo(&cat, models,
                             resource::ClusterConditions::PaperDefault(),
                             resource::PricingModel(),
                             Options(true, false));
      core::RaqoPlanner cached(&cat, models,
                               resource::ClusterConditions::PaperDefault(),
                               resource::PricingModel(),
                               Options(true, true));
      table.AddRow({bench::Int(n), bench::Num(PlanMs(qo, tables, false),
                                              "%.2f"),
                    bench::Num(PlanMs(raqo, tables, true), "%.2f"),
                    bench::Num(PlanMs(cached, tables, true), "%.2f")});
    }
    table.Print();
    std::printf("\npaper: cached RAQO ~6x over non-cached; ~1.29x over "
                "plain QO on average\n");
  }

  bench::Section("Figure 15(b): scaling the cluster (100-table query; "
                 "containers 100..100K, container size 10..100 GB)");
  {
    const std::vector<catalog::TableId> tables =
        *catalog::RandomQueryTables(cat, 100, 1334);
    bench::Table table({"max containers", "max container (GB)",
                        "RAQO+cache (ms)", "across-query cache (ms)"});
    for (double max_nc : {100.0, 1'000.0, 10'000.0, 100'000.0}) {
      for (double max_cs : {10.0, 30.0, 50.0, 70.0, 100.0}) {
        core::RaqoPlannerOptions options = Options(true, true);
        core::RaqoPlanner planner(&cat, models, BigCluster(max_cs, max_nc),
                                  resource::PricingModel(), options);
        // Default behaviour: cache cleared before each query run.
        const double cleared = PlanMs(planner, tables, true);
        // Across-query caching: a second identical query reuses the
        // previous run's resource plans.
        core::RaqoPlannerOptions keep = options;
        keep.clear_cache_between_queries = false;
        core::RaqoPlanner warm(&cat, models, BigCluster(max_cs, max_nc),
                               resource::PricingModel(), keep);
        PlanMs(warm, tables, true);  // warm-up query fills the cache
        const double across = PlanMs(warm, tables, true);
        table.AddRow({bench::Int(static_cast<int64_t>(max_nc)),
                      bench::Num(max_cs, "%.0f"),
                      bench::Num(cleared, "%.2f"),
                      bench::Num(across, "%.2f")});
      }
    }
    table.Print();
    std::printf("\npaper: overhead negligible to 1K containers, grows "
                "past 10K but stays sub-second; across-query caching "
                "~30%% better past 10K containers\n");
  }
  return 0;
}
