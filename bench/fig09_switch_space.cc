// Reproduces Figure 9: the space of BHJ/SMJ switch points in the
// (container size x smaller relation size) plane, for several
// <#containers, #reducers> combinations, in both Hive and Spark. Below
// each curve the optimizer should broadcast; above it, shuffle. The
// engines' *default* rule (broadcast under 10 MB, flat line at the
// bottom) is far from every curve — the paper's point (iii).

#include <cstdio>

#include "bench/bench_util.h"
#include "rules/switch_points.h"
#include "sim/engine_profile.h"

namespace {

using namespace raqo;

void Engine(const char* label, const sim::EngineProfile& profile,
            const std::vector<std::pair<int, int>>& combos, double larger_gb,
            double max_ss_gb, const char* unit, double unit_scale) {
  bench::Section(std::string("Figure 9 (") + label +
                 "): switch points over container size");
  std::vector<std::string> headers = {"container (GB)"};
  for (const auto& [nc, nr] : combos) {
    headers.push_back(StrPrintf("<%d,%d> (%s)", nc, nr, unit));
  }
  headers.push_back(std::string("default rule (") + unit + ")");
  bench::Table table(headers);

  for (double cs : {3.0, 5.0, 7.0, 9.0, 11.0}) {
    std::vector<std::string> row = {bench::Num(cs, "%.0f")};
    for (const auto& [nc, nr] : combos) {
      rules::SwitchPointQuery q;
      q.container_size_gb = cs;
      q.num_containers = nc;
      q.num_reducers = nr;
      q.larger_gb = larger_gb;
      Result<double> s =
          rules::FindSwitchPointGb(profile, q, max_ss_gb, 0.002);
      row.push_back(s.ok() ? bench::Num(*s * unit_scale, "%.1f") : "err");
    }
    row.push_back(bench::Num(profile.default_bhj_threshold_mb *
                                 (unit_scale / 1024.0),
                             "%.2f"));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main() {
  using namespace raqo;
  // Hive: GB-scale switch points (paper Figure 9(a)).
  Engine("Hive", sim::EngineProfile::Hive(),
         {{5, 200}, {5, 1000}, {9, 200}, {9, 1000}}, 77.0, 12.0, "GB", 1.0);
  // Spark: MB-scale switch points (paper Figure 9(b)).
  Engine("Spark", sim::EngineProfile::Spark(),
         {{6, 200}, {6, 1000}, {10, 200}, {10, 1000}}, 20.0, 4.0, "MB",
         1024.0);
  std::printf(
      "\npaper's observations: (i) choices change significantly across "
      "this space, (ii) container size helps BHJ only up to a point, "
      "(iii) the default 10 MB rule is way off everywhere\n");
  return 0;
}
