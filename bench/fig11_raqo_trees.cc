// Reproduces Figure 11: the RAQO decision trees for join operator
// implementation, learned (CART, gini) over the labeled data-resource
// space of Figure 9. Unlike the default trees, these branch on container
// size and container counts as well as data size. The paper reports a
// maximum path length of 6 for the Hive tree and 7 for the Spark tree,
// and notes pruning [34] as the remedy should the trees grow too large.

#include <cstdio>

#include "bench/bench_util.h"
#include "rules/rule_based.h"
#include "rules/switch_points.h"
#include "sim/engine_profile.h"

namespace {

using namespace raqo;

int EngineTree(const sim::EngineProfile& profile, double larger_gb,
               std::vector<double> data_gb) {
  bench::Section("Figure 11: RAQO decision tree (" + profile.name + ")");
  rules::JoinChoiceGrid grid;
  grid.larger_gb = larger_gb;
  grid.data_gb = std::move(data_gb);
  Result<rules::Dataset> data = rules::BuildJoinChoiceDataset(profile, grid);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  rules::TreeParams params;
  params.max_depth = 8;
  params.min_samples_leaf = 2;
  Result<rules::DecisionTree> tree = rules::DecisionTree::Fit(*data, params);
  if (!tree.ok()) {
    std::fprintf(stderr, "error: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", tree->ToText().c_str());
  std::printf("\ntraining rows=%zu accuracy=%.3f nodes=%d leaves=%d "
              "max-path=%d (paper: 6 for Hive, 7 for Spark)\n",
              data->num_rows(), tree->Accuracy(*data), tree->NodeCount(),
              tree->LeafCount(), tree->MaxPathLength());
  const int pruned = tree->PessimisticPrune();
  std::printf("after pessimistic pruning: pruned %d subtrees, nodes=%d "
              "max-path=%d accuracy=%.3f\n",
              pruned, tree->NodeCount(), tree->MaxPathLength(),
              tree->Accuracy(*data));
  return 0;
}

}  // namespace

int main() {
  using namespace raqo;
  if (int rc = EngineTree(sim::EngineProfile::Hive(), 77.0,
                          {0.1, 0.25, 0.5, 1.0, 1.7, 2.5, 3.4, 4.25, 5.1,
                           6.4, 8.0, 10.0})) {
    return rc;
  }
  // Spark works at MB scale (Figure 9(b)).
  return EngineTree(sim::EngineProfile::Spark(), 20.0,
                    {0.02, 0.05, 0.1, 0.2, 0.33, 0.42, 0.6, 0.75, 1.0,
                     1.2});
}
