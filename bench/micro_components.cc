// Component microbenchmarks (google-benchmark): the building blocks whose
// costs drive the planner-overhead figures, plus the ablation the paper
// suggests between the two resource-plan cache index layouts (sorted
// array vs CSB+-tree).

#include <benchmark/benchmark.h>

#include "catalog/tpch.h"
#include "common/rng.h"
#include "core/csb_tree.h"
#include "core/plan_cache.h"
#include "core/raqo_cost_evaluator.h"
#include "core/resource_planner.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/selinger.h"
#include "sim/exec_model.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

void BM_CostModelPredict(benchmark::State& state) {
  const cost::JoinCostModels& models = Models();
  cost::JoinFeatures f;
  f.smaller_gb = 3.0;
  f.larger_gb = 77.0;
  f.container_size_gb = 4.0;
  f.num_containers = 10.0;
  for (auto _ : state) {
    f.num_containers = (f.num_containers < 100.0) ? f.num_containers + 1 : 1;
    benchmark::DoNotOptimize(models.smj.PredictSeconds(f));
  }
}
BENCHMARK(BM_CostModelPredict);

void BM_SimulateJoin(benchmark::State& state) {
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  sim::ExecParams params;
  params.container_size_gb = 4.0;
  params.num_containers = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::SimulateJoin(hive, plan::JoinImpl::kSortMergeJoin,
                          catalog::GbToBytes(3), catalog::GbToBytes(77),
                          params));
  }
}
BENCHMARK(BM_SimulateJoin);

void BM_HillClimbResourcePlanning(benchmark::State& state) {
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::WithMax(10, state.range(0));
  const cost::JoinCostModels& models = Models();
  core::HillClimbResourcePlanner planner;
  cost::JoinFeatures f;
  f.smaller_gb = 3.0;
  f.larger_gb = 77.0;
  int64_t iters = 0;
  for (auto _ : state) {
    auto r = planner.PlanResources(
        [&](const resource::ResourceConfig& c) {
          f.container_size_gb = c.container_size_gb();
          f.num_containers = c.num_containers();
          return models.smj.PredictSeconds(f);
        },
        cluster);
    benchmark::DoNotOptimize(r);
    iters += r.ok() ? r->configs_explored : 0;
  }
  state.counters["resource_iters/op"] =
      static_cast<double>(iters) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_HillClimbResourcePlanning)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BruteForceResourcePlanning(benchmark::State& state) {
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::WithMax(10, state.range(0));
  const cost::JoinCostModels& models = Models();
  core::BruteForceResourcePlanner planner;
  cost::JoinFeatures f;
  f.smaller_gb = 3.0;
  f.larger_gb = 77.0;
  for (auto _ : state) {
    auto r = planner.PlanResources(
        [&](const resource::ResourceConfig& c) {
          f.container_size_gb = c.container_size_gb();
          f.num_containers = c.num_containers();
          return models.smj.PredictSeconds(f);
        },
        cluster);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BruteForceResourcePlanning)->Arg(100)->Arg(1000);

template <typename IndexT>
void BM_PlanIndexLookup(benchmark::State& state) {
  IndexT index;
  Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    core::CachedResourcePlan p;
    p.key_gb = rng.Uniform(0, 100);
    p.config = resource::ResourceConfig(4, 10);
    p.cost = 1.0;
    index.Insert(p);
  }
  double probe = 0.0;
  for (auto _ : state) {
    probe += 0.37;
    if (probe > 100) probe = 0;
    benchmark::DoNotOptimize(index.FindNeighbors(probe, 0.5));
  }
}
BENCHMARK(BM_PlanIndexLookup<core::SortedArrayIndex>)
    ->Arg(100)
    ->Arg(10000);
BENCHMARK(BM_PlanIndexLookup<core::CsbTreeIndex>)->Arg(100)->Arg(10000);

void BM_CsbTreeInsert(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    core::CsbTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.NextDouble() * 1e6, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_CsbTreeInsert)->Arg(1000)->Arg(10000);

void BM_SelingerTpchAll(benchmark::State& state) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const std::vector<catalog::TableId> tables =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kAll);
  optimizer::SelingerPlanner planner;
  for (auto _ : state) {
    optimizer::FixedResourceEvaluator eval(Models(),
                                           resource::ResourceConfig(4, 10));
    benchmark::DoNotOptimize(planner.Plan(cat, tables, eval));
  }
}
BENCHMARK(BM_SelingerTpchAll);

void BM_RaqoEvaluatorCostJoin(benchmark::State& state) {
  core::RaqoCostEvaluator eval(Models(),
                               resource::ClusterConditions::PaperDefault());
  optimizer::JoinContext ctx;
  ctx.impl = plan::JoinImpl::kSortMergeJoin;
  ctx.right_bytes = catalog::GbToBytes(77);
  double ss = 0.5;
  for (auto _ : state) {
    ss = ss < 8.0 ? ss + 0.125 : 0.5;
    ctx.left_bytes = catalog::GbToBytes(ss);
    benchmark::DoNotOptimize(eval.CostJoin(ctx));
  }
}
BENCHMARK(BM_RaqoEvaluatorCostJoin);

}  // namespace

BENCHMARK_MAIN();
