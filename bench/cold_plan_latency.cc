// Cold plan latency: exhaustive vs switch-point-aware resource search.
//
// The joint optimizer's cold cost (no resource-plan cache) is dominated
// by the per-candidate grid search: Selinger asks the evaluator to cost
// hundreds of candidate joins, and the exhaustive search answers each
// with rp x rc model evaluations over the paper-default 10x100 grid.
// The switch-aware search answers the same question bit-identically by
// re-costing the previous candidate's optimum first (the paper's
// switch-point observation: the winner rarely moves between candidates)
// and dominance-pruning the rest of the grid with sound cost-model
// lower bounds (docs/PERF.md).
//
// This bench plans the TPC-H evaluation queries plus a random-schema
// workload with both searches, asserts the plans are identical, and
// reports per-query latency percentiles, the evaluation-count ratio,
// and the wall-clock speedup. With --smoke it is a CI gate: plans must
// be identical and the switch-aware search must be >= 2x faster cold.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/random_schema.h"
#include "catalog/tpch.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/raqo_planner.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

// The smoke gate: cold planning with the switch-aware search must be at
// least this much faster than the exhaustive brute force on the
// paper-default grid, with bit-identical plans.
constexpr double kSpeedupFloor = 2.0;

// Repetitions per workload; latencies accumulate across repeats so the
// percentiles are not single-sample noise.
constexpr int kRepeats = 5;

core::RaqoPlannerOptions ColdOptions(core::ResourceSearch search) {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = false;
  options.evaluator.search = search;
  return options;
}

struct SearchRun {
  double total_wall_ms = 0.0;
  int64_t configs_explored = 0;
  std::vector<double> query_wall_ms;
  // Reports of the final repeat, for the plan-identity check.
  core::WorkloadReport last_report;
};

bool SamePlans(const core::WorkloadReport& a, const core::WorkloadReport& b) {
  if (a.queries.size() != b.queries.size()) return false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].plan != b.queries[i].plan) return false;
    if (a.queries[i].cost.seconds != b.queries[i].cost.seconds) return false;
    if (a.queries[i].cost.dollars != b.queries[i].cost.dollars) return false;
    if (a.queries[i].join_resources != b.queries[i].join_resources) {
      return false;
    }
  }
  return true;
}

SearchRun RunWorkload(const catalog::Catalog& cat,
                      const cost::JoinCostModels& models,
                      const resource::ClusterConditions& cluster,
                      const std::vector<core::WorkloadQuery>& workload,
                      core::ResourceSearch search) {
  SearchRun run;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    core::RaqoPlanner planner(&cat, models, cluster,
                              resource::PricingModel(), ColdOptions(search));
    core::WorkloadRunner runner(&planner);
    Result<core::WorkloadReport> report = runner.Run(workload);
    RAQO_CHECK(report.ok()) << report.status().ToString();
    run.total_wall_ms += report->wall_clock_ms;
    for (const core::QueryRunReport& query : report->queries) {
      run.query_wall_ms.push_back(query.wall_ms);
      if (repeat == 0) run.configs_explored += query.resource_configs_explored;
    }
    run.last_report = *std::move(report);
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raqo;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  // Suite 1: the paper's TPC-H evaluation queries at scale factor 100.
  catalog::Catalog tpch = catalog::BuildTpchCatalog(100.0);
  std::vector<core::WorkloadQuery> tpch_workload;
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
        catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
    core::WorkloadQuery query;
    query.label = catalog::TpchQueryName(q);
    query.tables = *catalog::TpchQueryTables(tpch, q);
    tpch_workload.push_back(std::move(query));
  }

  // Suite 2: random 30-table schema, 32 queries of 4..9 relations.
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 30;
  catalog::Catalog random_cat = *catalog::BuildRandomCatalog(schema);
  Rng rng(7);
  std::vector<core::WorkloadQuery> random_workload;
  for (int i = 0; i < 32; ++i) {
    core::WorkloadQuery query;
    query.label = "r" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        random_cat, static_cast<int>(rng.UniformInt(4, 9)),
        static_cast<uint64_t>(500 + i));
    random_workload.push_back(std::move(query));
  }

  bench::Section(
      "Cold plan latency: exhaustive vs switch-aware resource search "
      "(no cache, paper-default 10x100 grid)");

  struct Suite {
    const char* name;
    const catalog::Catalog* cat;
    const std::vector<core::WorkloadQuery>* workload;
  };
  const Suite suites[] = {{"tpch", &tpch, &tpch_workload},
                          {"random", &random_cat, &random_workload}};

  bench::Table table({"suite", "search", "wall (ms)", "p50/p95/p99 (ms)",
                      "evals/query", "speedup", "plans identical"});
  std::string json_suites;
  double worst_speedup = 1e300;
  bool all_identical = true;

  for (const Suite& suite : suites) {
    const SearchRun brute =
        RunWorkload(*suite.cat, models, cluster, *suite.workload,
                    core::ResourceSearch::kBruteForce);
    const SearchRun incremental =
        RunWorkload(*suite.cat, models, cluster, *suite.workload,
                    core::ResourceSearch::kSwitchAwareGrid);

    const bool identical =
        SamePlans(brute.last_report, incremental.last_report);
    all_identical = all_identical && identical;
    const double speedup = incremental.total_wall_ms > 0.0
                               ? brute.total_wall_ms / incremental.total_wall_ms
                               : 1.0;
    worst_speedup = std::min(worst_speedup, speedup);

    const bench::LatencyStats brute_lat =
        bench::SummarizeLatencies(brute.query_wall_ms);
    const bench::LatencyStats inc_lat =
        bench::SummarizeLatencies(incremental.query_wall_ms);
    const double queries = static_cast<double>(suite.workload->size());
    table.AddRow({suite.name, "brute-force",
                  bench::Num(brute.total_wall_ms, "%.1f"),
                  StrPrintf("%.2f/%.2f/%.2f", brute_lat.p50, brute_lat.p95,
                            brute_lat.p99),
                  bench::Num(static_cast<double>(brute.configs_explored) /
                                 queries,
                             "%.0f"),
                  bench::Num(1.0, "%.2fx"), "-"});
    table.AddRow({suite.name, "switch-aware-grid",
                  bench::Num(incremental.total_wall_ms, "%.1f"),
                  StrPrintf("%.2f/%.2f/%.2f", inc_lat.p50, inc_lat.p95,
                            inc_lat.p99),
                  bench::Num(
                      static_cast<double>(incremental.configs_explored) /
                          queries,
                      "%.0f"),
                  bench::Num(speedup, "%.2fx"), identical ? "yes" : "NO"});

    if (!json_suites.empty()) json_suites += ", ";
    json_suites += StrPrintf(
        "{\"suite\": \"%s\", \"queries\": %zu, \"repeats\": %d, "
        "\"brute_force\": {\"wall_ms\": %s, %s, \"configs_explored\": %lld}, "
        "\"switch_aware\": {\"wall_ms\": %s, %s, \"configs_explored\": %lld}, "
        "\"speedup\": %s, \"plans_identical\": %s}",
        suite.name, suite.workload->size(), kRepeats,
        JsonNumber(brute.total_wall_ms).c_str(),
        bench::LatencyJsonFields(brute_lat, "ms").c_str(),
        (long long)brute.configs_explored,
        JsonNumber(incremental.total_wall_ms).c_str(),
        bench::LatencyJsonFields(inc_lat, "ms").c_str(),
        (long long)incremental.configs_explored,
        JsonNumber(speedup).c_str(), identical ? "true" : "false");
  }
  table.Print();

  const std::string json = StrPrintf(
      "{\"bench\": \"cold_plan_latency\", \"speedup_floor\": %s, "
      "\"worst_speedup\": %s, \"plans_identical\": %s, \"suites\": [%s]}\n",
      JsonNumber(kSpeedupFloor).c_str(), JsonNumber(worst_speedup).c_str(),
      all_identical ? "true" : "false", json_suites.c_str());
  if (Status written = WriteTextFile("BENCH_cold_plan.json", json);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_cold_plan.json\n");

  if (smoke) {
    bool ok = true;
    if (!all_identical) {
      std::fprintf(stderr,
                   "SMOKE FAIL: switch-aware search returned different "
                   "plans — the exhaustive-equivalence contract broke\n");
      ok = false;
    }
    if (worst_speedup < kSpeedupFloor) {
      std::fprintf(stderr,
                   "SMOKE FAIL: cold speedup %.2fx is below the %.2fx "
                   "floor — pruning or warm-start regressed\n",
                   worst_speedup, kSpeedupFloor);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("smoke: cold-latency gates passed (worst %.2fx, plans "
                "identical)\n",
                worst_speedup);
  }
  return 0;
}
