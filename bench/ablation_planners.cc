// Ablation: planner and resource-search design choices.
//  1. Query planners under the same RAQO evaluator: Selinger (left-deep
//     DP), bushy DP (exact bushy optimum), FastRandomized (approximate,
//     scales past DP limits) — plan quality vs planning effort.
//  2. Resource-search strategies at growing cluster sizes: brute force
//     vs the paper's Algorithm 1 hill climbing vs the accelerated-stride
//     extension — the cost of Figure 15(b)-scale clusters.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/raqo_cost_evaluator.h"
#include "core/resource_planner.h"
#include "optimizer/bushy_dp.h"
#include "optimizer/fast_randomized.h"
#include "optimizer/selinger.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

void PlannerAblation() {
  bench::Section("Ablation 1: query planners under RAQO (TPC-H, "
                 "hill-climb resource planning)");
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  bench::Table table({"query", "planner", "cost (s)", "wall (ms)",
                      "plans considered", "resource iters"});
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ3, catalog::TpchQuery::kQ2,
        catalog::TpchQuery::kAll}) {
    const std::vector<catalog::TableId> tables =
        *catalog::TpchQueryTables(cat, q);
    auto report = [&](const char* name,
                      const Result<optimizer::PlannedQuery>& r) {
      RAQO_CHECK(r.ok()) << r.status().ToString();
      table.AddRow({catalog::TpchQueryName(q), name,
                    bench::Num(r->cost.seconds),
                    bench::Num(r->stats.wall_ms, "%.3f"),
                    bench::Int(r->stats.plans_considered),
                    bench::Int(r->stats.resource_configs_explored)});
    };
    {
      core::RaqoCostEvaluator eval(Models(),
                                   resource::ClusterConditions::PaperDefault());
      report("Selinger", optimizer::SelingerPlanner().Plan(cat, tables, eval));
    }
    {
      core::RaqoCostEvaluator eval(Models(),
                                   resource::ClusterConditions::PaperDefault());
      report("BushyDP", optimizer::BushyDpPlanner().Plan(cat, tables, eval));
    }
    {
      core::RaqoCostEvaluator eval(Models(),
                                   resource::ClusterConditions::PaperDefault());
      report("FastRandomized",
             optimizer::FastRandomizedPlanner().PlanBest(cat, tables, eval));
    }
  }
  table.Print();
  std::printf("\nBushyDP is the ground-truth optimum; Selinger restricts "
              "to left-deep trees; FastRandomized approximates both at a "
              "fraction of the enumeration for large queries\n");
}

void ResourceSearchAblation() {
  bench::Section("Ablation 2: resource-search strategies vs cluster size "
                 "(single SMJ operator, unit allocation steps)");
  bench::Table table({"cluster (containers)", "strategy", "iters",
                      "chosen config", "cost (s)"});
  cost::JoinFeatures base;
  base.smaller_gb = 3.0;
  base.larger_gb = 77.0;
  auto objective = [&](const resource::ResourceConfig& c) {
    cost::JoinFeatures f = base;
    f.container_size_gb = c.container_size_gb();
    f.num_containers = c.num_containers();
    return Models().smj.PredictSeconds(f);
  };
  for (double max_nc : {100.0, 1'000.0, 10'000.0}) {
    const resource::ClusterConditions cluster =
        resource::ClusterConditions::WithMax(10, max_nc);
    const core::BruteForceResourcePlanner brute;
    const core::HillClimbResourcePlanner hill;
    const core::AcceleratedHillClimbResourcePlanner accel;
    for (const core::ResourcePlanner* planner :
         std::initializer_list<const core::ResourcePlanner*>{
             &brute, &hill, &accel}) {
      if (planner == &brute && max_nc > 1'000.0) {
        table.AddRow({bench::Int(static_cast<int64_t>(max_nc)),
                      planner->name(), "(skipped)", "-", "-"});
        continue;
      }
      Result<core::ResourcePlanResult> r =
          planner->PlanResources(objective, cluster);
      RAQO_CHECK(r.ok()) << r.status().ToString();
      table.AddRow({bench::Int(static_cast<int64_t>(max_nc)),
                    planner->name(), bench::Int(r->configs_explored),
                    r->config.ToString(), bench::Num(r->cost)});
    }
  }
  table.Print();
  std::printf("\nAlgorithm 1 walks one grid step per move, so its cost "
              "grows with the distance to the optimum; the accelerated "
              "variant doubles its stride and stays logarithmic\n");
}

}  // namespace

int main() {
  PlannerAblation();
  ResourceSearchAblation();
  return 0;
}
