// Reproduces Figure 6: the *monetary* cost (serverless pricing: pay for
// container memory x time) of BHJ vs SMJ over varying resources, for the
// same joins as Figure 3. Paper's observation: either implementation can
// be the cost-effective one depending on resources; the switching points
// match the execution-time ones but the absolute dollar gaps differ.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/table.h"
#include "resource/pricing.h"
#include "sim/exec_model.h"

namespace {

using namespace raqo;

std::string CostOrOom(const sim::EngineProfile& profile, plan::JoinImpl impl,
                      double small_gb, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::JoinRunResult> r =
      sim::SimulateJoin(profile, impl, catalog::GbToBytes(small_gb),
                        catalog::GbToBytes(77.0), params);
  if (!r.ok()) return "OOM";
  // Report in the paper's arbitrary "monetary cost" units: GB-seconds of
  // reserved memory (a fixed $/GB-hour multiplier away from dollars).
  const resource::ResourceConfig config(cs, static_cast<double>(nc));
  return bench::Num(config.total_memory_gb() * r->seconds, "%.0f");
}

}  // namespace

int main() {
  using namespace raqo;
  const sim::EngineProfile hive = sim::EngineProfile::Hive();

  bench::Section(
      "Figure 6(a): monetary cost, vary container size (nc=10, 5.1 GB)");
  {
    bench::Table table({"container (GB)", "SMJ (GB*s)", "BHJ (GB*s)"});
    for (double cs : {4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
      table.AddRow({bench::Num(cs, "%.0f"),
                    CostOrOom(hive, plan::JoinImpl::kSortMergeJoin, 5.1, cs,
                              10),
                    CostOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, 5.1,
                              cs, 10)});
    }
    table.Print();
  }

  bench::Section(
      "Figure 6(b): monetary cost, vary containers (cs=3 GB, 3.4 GB)");
  {
    bench::Table table({"containers", "SMJ (GB*s)", "BHJ (GB*s)"});
    for (int nc : {5, 10, 15, 20, 25, 30, 35, 40, 45}) {
      table.AddRow({bench::Int(nc),
                    CostOrOom(hive, plan::JoinImpl::kSortMergeJoin, 3.4,
                              3.0, nc),
                    CostOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, 3.4,
                              3.0, nc)});
    }
    table.Print();
  }
  std::printf("\npaper: the cost-effective implementation flips with the "
              "resources; SMJ's dollar cost grows with container size even "
              "though its runtime is flat\n");
  return 0;
}
