// Reproduces Figure 5: the impact of resources on the choice between two
// join orderings of the two-way-join query (simplified TPC-H Q3):
//   select * from customer, orders, lineitem
//   where c_custkey = o_custkey and l_orderkey = o_orderkey
// with a sampled orders table (850 MB) so that broadcasts are viable.
//   Plan 1: BHJ(BHJ(lineitem, orders), customer)
//   Plan 2: SMJ(BHJ(orders, customer), lineitem)
// Paper's shape: container size barely moves either plan (but plan 1 is
// OOM below a threshold); the number of containers does matter, and past
// a switch point (~32 containers) plan 2 overtakes plan 1.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "plan/plan_node.h"
#include "sim/simulator.h"

namespace {

using namespace raqo;

/// The sampled-orders catalog of Section III-B.
catalog::Catalog SampledCatalog(double orders_mb) {
  catalog::Catalog cat;
  const catalog::TableId customer =
      *cat.AddTable({"customer", 15'000'000, 165});
  const double orders_rows = catalog::MbToBytes(orders_mb) / 110.0;
  const catalog::TableId orders = *cat.AddTable({"orders", orders_rows, 110});
  const catalog::TableId lineitem =
      *cat.AddTable({"lineitem", 600'000'000, 130});
  // FK selectivities against the *full* key domains (sampling orders
  // thins the join, it does not change the key space).
  RAQO_CHECK(cat.AddJoin(orders, customer, 1.0 / 15'000'000.0,
                         "o_custkey = c_custkey")
                 .ok());
  RAQO_CHECK(cat.AddJoin(lineitem, orders, 1.0 / 150'000'000.0,
                         "l_orderkey = o_orderkey")
                 .ok());
  return cat;
}

std::unique_ptr<plan::PlanNode> Plan1(const catalog::Catalog& cat) {
  const auto l = *cat.FindTable("lineitem");
  const auto o = *cat.FindTable("orders");
  const auto c = *cat.FindTable("customer");
  return plan::PlanNode::MakeJoin(
      plan::JoinImpl::kBroadcastHashJoin,
      plan::PlanNode::MakeJoin(plan::JoinImpl::kBroadcastHashJoin,
                               plan::PlanNode::MakeScan(l),
                               plan::PlanNode::MakeScan(o)),
      plan::PlanNode::MakeScan(c));
}

std::unique_ptr<plan::PlanNode> Plan2(const catalog::Catalog& cat) {
  const auto l = *cat.FindTable("lineitem");
  const auto o = *cat.FindTable("orders");
  const auto c = *cat.FindTable("customer");
  return plan::PlanNode::MakeJoin(
      plan::JoinImpl::kSortMergeJoin,
      plan::PlanNode::MakeJoin(plan::JoinImpl::kBroadcastHashJoin,
                               plan::PlanNode::MakeScan(o),
                               plan::PlanNode::MakeScan(c)),
      plan::PlanNode::MakeScan(l));
}

std::string RunOrOom(sim::ExecutionSimulator& simulator,
                     const plan::PlanNode& plan, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::SimPlanResult> r = simulator.RunPlan(plan, params);
  if (!r.ok()) return "OOM";
  return bench::Num(r->seconds);
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::Catalog cat = SampledCatalog(850.0);
  sim::ExecutionSimulator simulator(sim::EngineProfile::Hive(), &cat);
  auto plan1 = Plan1(cat);
  auto plan2 = Plan2(cat);
  std::printf("plan 1: %s\nplan 2: %s\n", plan1->ToString(&cat).c_str(),
              plan2->ToString(&cat).c_str());

  bench::Section("Figure 5(a): vary container size (nc = 10)");
  {
    bench::Table table({"container (GB)", "Plan 1 (s)", "Plan 2 (s)"});
    for (double cs : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
      table.AddRow({bench::Num(cs, "%.0f"),
                    RunOrOom(simulator, *plan1, cs, 10),
                    RunOrOom(simulator, *plan2, cs, 10)});
    }
    table.Print();
    std::printf("\npaper: plan 1 wins across sizes but is OOM below a "
                "container-size threshold\n");
  }

  bench::Section("Figure 5(b): vary concurrent containers (cs = 3 GB)");
  {
    bench::Table table({"containers", "Plan 1 (s)", "Plan 2 (s)"});
    for (int nc : {5, 10, 15, 20, 25, 30, 32, 35, 40, 45}) {
      table.AddRow({bench::Int(nc), RunOrOom(simulator, *plan1, 3.0, nc),
                    RunOrOom(simulator, *plan2, 3.0, nc)});
    }
    table.Print();
    std::printf("\npaper: plan 2 overtakes plan 1 past ~32 containers\n");
  }
  return 0;
}
