// Reproduces Figure 4: how the BHJ/SMJ switch point moves when both the
// data and the resources vary.
//  (a) execution time vs orders size for 3 GB and 9 GB containers
//      (paper: switch at 3.4 GB with 3 GB containers — the OOM boundary —
//      and 6.4 GB with 9 GB containers).
//  (b) execution time vs orders size for 10 and 40 concurrent containers
//      (paper reports the switch moving from 2.1 GB to 3.8 GB).
// The conclusion the figure supports: switch points are not static, so
// the optimizer must know both the data statistics and the resources.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/table.h"
#include "rules/switch_points.h"
#include "sim/exec_model.h"

namespace {

using namespace raqo;

std::string TimeOrOom(const sim::EngineProfile& profile, plan::JoinImpl impl,
                      double small_gb, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::JoinRunResult> r =
      sim::SimulateJoin(profile, impl, catalog::GbToBytes(small_gb),
                        catalog::GbToBytes(77.0), params);
  if (!r.ok()) return "OOM";
  return bench::Num(r->seconds);
}

double Switch(const sim::EngineProfile& profile, double cs, int nc) {
  rules::SwitchPointQuery q;
  q.container_size_gb = cs;
  q.num_containers = nc;
  q.larger_gb = 77.0;
  return rules::FindSwitchPointGb(profile, q).ValueOr(-1.0);
}

}  // namespace

int main() {
  using namespace raqo;
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  const std::vector<double> sizes = {0.5, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12};

  bench::Section("Figure 4(a): vary orders size at two container sizes "
                 "(nc = 10)");
  {
    bench::Table table({"orders (GB)", "SMJ 3GB (s)", "BHJ 3GB (s)",
                        "SMJ 9GB (s)", "BHJ 9GB (s)"});
    for (double ss : sizes) {
      table.AddRow(
          {bench::Num(ss, "%.1f"),
           TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, ss, 3, 10),
           TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, ss, 3, 10),
           TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, ss, 9, 10),
           TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, ss, 9, 10)});
    }
    table.Print();
    std::printf("\nswitch points: 3 GB containers -> %.2f GB (paper 3.4), "
                "9 GB containers -> %.2f GB (paper 6.4)\n",
                Switch(hive, 3, 10), Switch(hive, 9, 10));
  }

  bench::Section("Figure 4(b): vary orders size at two container counts "
                 "(cs = 9 GB)");
  {
    bench::Table table({"orders (GB)", "SMJ 10c (s)", "BHJ 10c (s)",
                        "SMJ 40c (s)", "BHJ 40c (s)"});
    for (double ss : sizes) {
      table.AddRow(
          {bench::Num(ss, "%.1f"),
           TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, ss, 9, 10),
           TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, ss, 9, 10),
           TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, ss, 9, 40),
           TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, ss, 9, 40)});
    }
    table.Print();
    std::printf("\nswitch points: 10 containers -> %.2f GB, 40 containers "
                "-> %.2f GB (paper: 2.1 and 3.8; see EXPERIMENTS.md on the "
                "direction of the shift)\n",
                Switch(hive, 9, 10), Switch(hive, 9, 40));
  }
  return 0;
}
