// Reproduces Figure 3: BHJ vs SMJ in Hive over varying resources, with
// fixed data.
//  (a) vary container size (10 containers, 5.1 GB orders x 77 GB
//      lineitem): SMJ stays flat, BHJ is OOM below 5 GB, improves with
//      memory, and overtakes SMJ at a switch point (paper: 7 GB).
//  (b) vary the number of containers (3 GB containers, 3.4 GB orders):
//      BHJ wins at low parallelism, SMJ benefits from containers and wins
//      past a switch point (paper: ~20 containers, 2x faster at 40).

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/table.h"
#include "sim/exec_model.h"

namespace {

using namespace raqo;

std::string TimeOrOom(const sim::EngineProfile& profile, plan::JoinImpl impl,
                      double small_gb, double large_gb, double cs, int nc) {
  sim::ExecParams params;
  params.container_size_gb = cs;
  params.num_containers = nc;
  Result<sim::JoinRunResult> r =
      sim::SimulateJoin(profile, impl, catalog::GbToBytes(small_gb),
                        catalog::GbToBytes(large_gb), params);
  if (!r.ok()) return "OOM";
  return bench::Num(r->seconds);
}

}  // namespace

int main() {
  using namespace raqo;
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  const double large_gb = 77.0;

  bench::Section(
      "Figure 3(a): vary container size (nc=10, orders=5.1 GB)");
  {
    bench::Table table({"container (GB)", "SMJ (s)", "BHJ (s)"});
    for (double cs : {4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
      table.AddRow({bench::Num(cs, "%.0f"),
                    TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, 5.1,
                              large_gb, cs, 10),
                    TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, 5.1,
                              large_gb, cs, 10)});
    }
    table.Print();
    std::printf("\npaper: BHJ OOM below 5 GB; switch point at ~7 GB\n");
  }

  bench::Section(
      "Figure 3(b): vary concurrent containers (cs=3 GB, orders=3.4 GB)");
  {
    bench::Table table({"containers", "SMJ (s)", "BHJ (s)"});
    for (int nc : {5, 10, 15, 20, 25, 30, 35, 40, 45}) {
      table.AddRow({bench::Int(nc),
                    TimeOrOom(hive, plan::JoinImpl::kSortMergeJoin, 3.4,
                              large_gb, 3.0, nc),
                    TimeOrOom(hive, plan::JoinImpl::kBroadcastHashJoin, 3.4,
                              large_gb, 3.0, nc)});
    }
    table.Print();
    std::printf(
        "\npaper: BHJ faster below ~20 containers; SMJ ~2x faster at 40\n");
  }
  return 0;
}
