// Reproduces Figure 13: hill climbing vs brute-force resource planning on
// the TPC-H queries — the number of resource configurations explored and
// the corresponding planner runtimes. The paper reports hill climbing
// exploring ~4x fewer configurations than brute force, with matching
// runtime gains.

#include <cstdio>

#include "bench/bench_util.h"
#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

namespace {

using namespace raqo;

struct Row {
  double wall_ms = 0.0;
  int64_t resource_iters = 0;
};

Row Run(const catalog::Catalog& cat,
        const std::vector<catalog::TableId>& tables,
        const cost::JoinCostModels& models, core::ResourceSearch search) {
  const int kRepeats = 3;
  Row out{};
  for (int rep = 0; rep < kRepeats; ++rep) {
    core::RaqoPlannerOptions options;
    options.algorithm = core::PlannerAlgorithm::kFastRandomized;
    options.evaluator.search = search;
    core::RaqoPlanner planner(&cat, models,
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(), options);
    Result<core::JointPlan> result = planner.Plan(tables);
    RAQO_CHECK(result.ok()) << result.status().ToString();
    out.wall_ms += result->stats.wall_ms / kRepeats;
    out.resource_iters = result->stats.resource_configs_explored;
  }
  return out;
}

}  // namespace

int main() {
  using namespace raqo;
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());

  bench::Section(
      "Figure 13: hill climbing vs brute force (FastRandomized planner)");
  bench::Table table({"query", "BruteForce iters", "HillClimb iters",
                      "iter reduction", "BruteForce (ms)",
                      "HillClimb (ms)", "runtime reduction"});
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
        catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
    const std::vector<catalog::TableId> tables =
        *catalog::TpchQueryTables(cat, q);
    const Row brute =
        Run(cat, tables, models, core::ResourceSearch::kBruteForce);
    const Row hill =
        Run(cat, tables, models, core::ResourceSearch::kHillClimb);
    table.AddRow(
        {catalog::TpchQueryName(q), bench::Int(brute.resource_iters),
         bench::Int(hill.resource_iters),
         bench::Num(static_cast<double>(brute.resource_iters) /
                        static_cast<double>(hill.resource_iters),
                    "%.1fx"),
         bench::Num(brute.wall_ms, "%.3f"), bench::Num(hill.wall_ms, "%.3f"),
         bench::Num(brute.wall_ms / hill.wall_ms, "%.1fx")});
  }
  table.Print();
  std::printf("\npaper: hill climbing explores ~4x fewer resource "
              "configurations, with similar runtime improvements\n");
  return 0;
}
