file(REMOVE_RECURSE
  "CMakeFiles/cloud_cost_explorer.dir/cloud_cost_explorer.cpp.o"
  "CMakeFiles/cloud_cost_explorer.dir/cloud_cost_explorer.cpp.o.d"
  "cloud_cost_explorer"
  "cloud_cost_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_cost_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
