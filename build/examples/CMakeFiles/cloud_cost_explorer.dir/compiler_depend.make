# Empty compiler generated dependencies file for cloud_cost_explorer.
# This may be replaced when dependencies are built.
