# Empty dependencies file for multi_tenant_budget.
# This may be replaced when dependencies are built.
