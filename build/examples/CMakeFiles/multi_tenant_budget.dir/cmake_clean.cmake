file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_budget.dir/multi_tenant_budget.cpp.o"
  "CMakeFiles/multi_tenant_budget.dir/multi_tenant_budget.cpp.o.d"
  "multi_tenant_budget"
  "multi_tenant_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
