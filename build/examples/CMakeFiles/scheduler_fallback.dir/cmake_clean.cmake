file(REMOVE_RECURSE
  "CMakeFiles/scheduler_fallback.dir/scheduler_fallback.cpp.o"
  "CMakeFiles/scheduler_fallback.dir/scheduler_fallback.cpp.o.d"
  "scheduler_fallback"
  "scheduler_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
