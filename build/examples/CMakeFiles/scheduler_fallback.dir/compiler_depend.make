# Empty compiler generated dependencies file for scheduler_fallback.
# This may be replaced when dependencies are built.
