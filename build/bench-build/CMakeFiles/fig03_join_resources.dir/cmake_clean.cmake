file(REMOVE_RECURSE
  "../bench/fig03_join_resources"
  "../bench/fig03_join_resources.pdb"
  "CMakeFiles/fig03_join_resources.dir/fig03_join_resources.cc.o"
  "CMakeFiles/fig03_join_resources.dir/fig03_join_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_join_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
