# Empty compiler generated dependencies file for fig12_raqo_planning.
# This may be replaced when dependencies are built.
