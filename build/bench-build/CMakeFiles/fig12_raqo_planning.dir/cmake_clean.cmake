file(REMOVE_RECURSE
  "../bench/fig12_raqo_planning"
  "../bench/fig12_raqo_planning.pdb"
  "CMakeFiles/fig12_raqo_planning.dir/fig12_raqo_planning.cc.o"
  "CMakeFiles/fig12_raqo_planning.dir/fig12_raqo_planning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_raqo_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
