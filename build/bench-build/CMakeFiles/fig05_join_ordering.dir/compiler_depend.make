# Empty compiler generated dependencies file for fig05_join_ordering.
# This may be replaced when dependencies are built.
