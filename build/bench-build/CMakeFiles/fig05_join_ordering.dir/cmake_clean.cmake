file(REMOVE_RECURSE
  "../bench/fig05_join_ordering"
  "../bench/fig05_join_ordering.pdb"
  "CMakeFiles/fig05_join_ordering.dir/fig05_join_ordering.cc.o"
  "CMakeFiles/fig05_join_ordering.dir/fig05_join_ordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_join_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
