file(REMOVE_RECURSE
  "../bench/fig10_default_trees"
  "../bench/fig10_default_trees.pdb"
  "CMakeFiles/fig10_default_trees.dir/fig10_default_trees.cc.o"
  "CMakeFiles/fig10_default_trees.dir/fig10_default_trees.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_default_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
