# Empty dependencies file for fig10_default_trees.
# This may be replaced when dependencies are built.
