# Empty dependencies file for fig11_raqo_trees.
# This may be replaced when dependencies are built.
