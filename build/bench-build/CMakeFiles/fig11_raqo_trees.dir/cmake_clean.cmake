file(REMOVE_RECURSE
  "../bench/fig11_raqo_trees"
  "../bench/fig11_raqo_trees.pdb"
  "CMakeFiles/fig11_raqo_trees.dir/fig11_raqo_trees.cc.o"
  "CMakeFiles/fig11_raqo_trees.dir/fig11_raqo_trees.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_raqo_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
