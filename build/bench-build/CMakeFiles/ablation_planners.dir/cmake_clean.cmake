file(REMOVE_RECURSE
  "../bench/ablation_planners"
  "../bench/ablation_planners.pdb"
  "CMakeFiles/ablation_planners.dir/ablation_planners.cc.o"
  "CMakeFiles/ablation_planners.dir/ablation_planners.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
