# Empty compiler generated dependencies file for ablation_planners.
# This may be replaced when dependencies are built.
