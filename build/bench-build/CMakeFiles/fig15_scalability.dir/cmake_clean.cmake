file(REMOVE_RECURSE
  "../bench/fig15_scalability"
  "../bench/fig15_scalability.pdb"
  "CMakeFiles/fig15_scalability.dir/fig15_scalability.cc.o"
  "CMakeFiles/fig15_scalability.dir/fig15_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
