# Empty dependencies file for fig04_switch_vs_data.
# This may be replaced when dependencies are built.
