file(REMOVE_RECURSE
  "../bench/fig04_switch_vs_data"
  "../bench/fig04_switch_vs_data.pdb"
  "CMakeFiles/fig04_switch_vs_data.dir/fig04_switch_vs_data.cc.o"
  "CMakeFiles/fig04_switch_vs_data.dir/fig04_switch_vs_data.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_switch_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
