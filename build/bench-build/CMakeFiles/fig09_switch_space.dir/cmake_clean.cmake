file(REMOVE_RECURSE
  "../bench/fig09_switch_space"
  "../bench/fig09_switch_space.pdb"
  "CMakeFiles/fig09_switch_space.dir/fig09_switch_space.cc.o"
  "CMakeFiles/fig09_switch_space.dir/fig09_switch_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_switch_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
