# Empty compiler generated dependencies file for fig09_switch_space.
# This may be replaced when dependencies are built.
