# Empty dependencies file for fig07_monetary_switch.
# This may be replaced when dependencies are built.
