file(REMOVE_RECURSE
  "../bench/fig07_monetary_switch"
  "../bench/fig07_monetary_switch.pdb"
  "CMakeFiles/fig07_monetary_switch.dir/fig07_monetary_switch.cc.o"
  "CMakeFiles/fig07_monetary_switch.dir/fig07_monetary_switch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_monetary_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
