file(REMOVE_RECURSE
  "../bench/fig14_caching"
  "../bench/fig14_caching.pdb"
  "CMakeFiles/fig14_caching.dir/fig14_caching.cc.o"
  "CMakeFiles/fig14_caching.dir/fig14_caching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
