# Empty compiler generated dependencies file for fig14_caching.
# This may be replaced when dependencies are built.
