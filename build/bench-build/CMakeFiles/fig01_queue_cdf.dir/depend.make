# Empty dependencies file for fig01_queue_cdf.
# This may be replaced when dependencies are built.
