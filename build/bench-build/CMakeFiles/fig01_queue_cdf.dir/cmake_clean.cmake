file(REMOVE_RECURSE
  "../bench/fig01_queue_cdf"
  "../bench/fig01_queue_cdf.pdb"
  "CMakeFiles/fig01_queue_cdf.dir/fig01_queue_cdf.cc.o"
  "CMakeFiles/fig01_queue_cdf.dir/fig01_queue_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_queue_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
