file(REMOVE_RECURSE
  "../bench/fig02_potential_gains"
  "../bench/fig02_potential_gains.pdb"
  "CMakeFiles/fig02_potential_gains.dir/fig02_potential_gains.cc.o"
  "CMakeFiles/fig02_potential_gains.dir/fig02_potential_gains.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_potential_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
