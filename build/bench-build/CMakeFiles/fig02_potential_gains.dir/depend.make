# Empty dependencies file for fig02_potential_gains.
# This may be replaced when dependencies are built.
