file(REMOVE_RECURSE
  "../bench/fig06_monetary"
  "../bench/fig06_monetary.pdb"
  "CMakeFiles/fig06_monetary.dir/fig06_monetary.cc.o"
  "CMakeFiles/fig06_monetary.dir/fig06_monetary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_monetary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
