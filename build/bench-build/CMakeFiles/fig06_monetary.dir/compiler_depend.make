# Empty compiler generated dependencies file for fig06_monetary.
# This may be replaced when dependencies are built.
