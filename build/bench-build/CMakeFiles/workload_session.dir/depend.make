# Empty dependencies file for workload_session.
# This may be replaced when dependencies are built.
