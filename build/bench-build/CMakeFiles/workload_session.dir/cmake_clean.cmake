file(REMOVE_RECURSE
  "../bench/workload_session"
  "../bench/workload_session.pdb"
  "CMakeFiles/workload_session.dir/workload_session.cc.o"
  "CMakeFiles/workload_session.dir/workload_session.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
