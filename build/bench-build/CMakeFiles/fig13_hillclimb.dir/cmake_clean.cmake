file(REMOVE_RECURSE
  "../bench/fig13_hillclimb"
  "../bench/fig13_hillclimb.pdb"
  "CMakeFiles/fig13_hillclimb.dir/fig13_hillclimb.cc.o"
  "CMakeFiles/fig13_hillclimb.dir/fig13_hillclimb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hillclimb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
