# Empty compiler generated dependencies file for fig13_hillclimb.
# This may be replaced when dependencies are built.
