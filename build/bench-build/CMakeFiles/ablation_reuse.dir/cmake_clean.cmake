file(REMOVE_RECURSE
  "../bench/ablation_reuse"
  "../bench/ablation_reuse.pdb"
  "CMakeFiles/ablation_reuse.dir/ablation_reuse.cc.o"
  "CMakeFiles/ablation_reuse.dir/ablation_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
