
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/raqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/raqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/raqo_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/raqo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/raqo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/raqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/raqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
