file(REMOVE_RECURSE
  "CMakeFiles/csb_tree_test.dir/csb_tree_test.cc.o"
  "CMakeFiles/csb_tree_test.dir/csb_tree_test.cc.o.d"
  "csb_tree_test"
  "csb_tree_test.pdb"
  "csb_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csb_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
