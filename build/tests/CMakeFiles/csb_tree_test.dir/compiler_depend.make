# Empty compiler generated dependencies file for csb_tree_test.
# This may be replaced when dependencies are built.
