# Empty dependencies file for bushy_dp_test.
# This may be replaced when dependencies are built.
