file(REMOVE_RECURSE
  "CMakeFiles/bushy_dp_test.dir/bushy_dp_test.cc.o"
  "CMakeFiles/bushy_dp_test.dir/bushy_dp_test.cc.o.d"
  "bushy_dp_test"
  "bushy_dp_test.pdb"
  "bushy_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bushy_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
