file(REMOVE_RECURSE
  "CMakeFiles/raqo_test.dir/raqo_test.cc.o"
  "CMakeFiles/raqo_test.dir/raqo_test.cc.o.d"
  "raqo_test"
  "raqo_test.pdb"
  "raqo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
