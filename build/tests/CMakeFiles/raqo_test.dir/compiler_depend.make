# Empty compiler generated dependencies file for raqo_test.
# This may be replaced when dependencies are built.
