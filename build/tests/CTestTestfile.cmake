# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/csb_tree_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/raqo_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/bushy_dp_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
