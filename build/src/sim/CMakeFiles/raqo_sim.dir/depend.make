# Empty dependencies file for raqo_sim.
# This may be replaced when dependencies are built.
