
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine_profile.cc" "src/sim/CMakeFiles/raqo_sim.dir/engine_profile.cc.o" "gcc" "src/sim/CMakeFiles/raqo_sim.dir/engine_profile.cc.o.d"
  "/root/repo/src/sim/exec_model.cc" "src/sim/CMakeFiles/raqo_sim.dir/exec_model.cc.o" "gcc" "src/sim/CMakeFiles/raqo_sim.dir/exec_model.cc.o.d"
  "/root/repo/src/sim/profile_runner.cc" "src/sim/CMakeFiles/raqo_sim.dir/profile_runner.cc.o" "gcc" "src/sim/CMakeFiles/raqo_sim.dir/profile_runner.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/raqo_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/raqo_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/raqo_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/raqo_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/raqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
