file(REMOVE_RECURSE
  "libraqo_sim.a"
)
