file(REMOVE_RECURSE
  "CMakeFiles/raqo_sim.dir/engine_profile.cc.o"
  "CMakeFiles/raqo_sim.dir/engine_profile.cc.o.d"
  "CMakeFiles/raqo_sim.dir/exec_model.cc.o"
  "CMakeFiles/raqo_sim.dir/exec_model.cc.o.d"
  "CMakeFiles/raqo_sim.dir/profile_runner.cc.o"
  "CMakeFiles/raqo_sim.dir/profile_runner.cc.o.d"
  "CMakeFiles/raqo_sim.dir/scheduler.cc.o"
  "CMakeFiles/raqo_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/raqo_sim.dir/simulator.cc.o"
  "CMakeFiles/raqo_sim.dir/simulator.cc.o.d"
  "libraqo_sim.a"
  "libraqo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
