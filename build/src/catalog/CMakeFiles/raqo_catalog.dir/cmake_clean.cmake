file(REMOVE_RECURSE
  "CMakeFiles/raqo_catalog.dir/catalog.cc.o"
  "CMakeFiles/raqo_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/raqo_catalog.dir/join_graph.cc.o"
  "CMakeFiles/raqo_catalog.dir/join_graph.cc.o.d"
  "CMakeFiles/raqo_catalog.dir/random_schema.cc.o"
  "CMakeFiles/raqo_catalog.dir/random_schema.cc.o.d"
  "CMakeFiles/raqo_catalog.dir/tpch.cc.o"
  "CMakeFiles/raqo_catalog.dir/tpch.cc.o.d"
  "libraqo_catalog.a"
  "libraqo_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
