# Empty dependencies file for raqo_catalog.
# This may be replaced when dependencies are built.
