file(REMOVE_RECURSE
  "libraqo_catalog.a"
)
