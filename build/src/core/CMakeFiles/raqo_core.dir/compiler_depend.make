# Empty compiler generated dependencies file for raqo_core.
# This may be replaced when dependencies are built.
