file(REMOVE_RECURSE
  "CMakeFiles/raqo_core.dir/adaptive.cc.o"
  "CMakeFiles/raqo_core.dir/adaptive.cc.o.d"
  "CMakeFiles/raqo_core.dir/container_reuse.cc.o"
  "CMakeFiles/raqo_core.dir/container_reuse.cc.o.d"
  "CMakeFiles/raqo_core.dir/csb_tree.cc.o"
  "CMakeFiles/raqo_core.dir/csb_tree.cc.o.d"
  "CMakeFiles/raqo_core.dir/parametric.cc.o"
  "CMakeFiles/raqo_core.dir/parametric.cc.o.d"
  "CMakeFiles/raqo_core.dir/plan_cache.cc.o"
  "CMakeFiles/raqo_core.dir/plan_cache.cc.o.d"
  "CMakeFiles/raqo_core.dir/raqo_cost_evaluator.cc.o"
  "CMakeFiles/raqo_core.dir/raqo_cost_evaluator.cc.o.d"
  "CMakeFiles/raqo_core.dir/raqo_planner.cc.o"
  "CMakeFiles/raqo_core.dir/raqo_planner.cc.o.d"
  "CMakeFiles/raqo_core.dir/resource_planner.cc.o"
  "CMakeFiles/raqo_core.dir/resource_planner.cc.o.d"
  "CMakeFiles/raqo_core.dir/robust.cc.o"
  "CMakeFiles/raqo_core.dir/robust.cc.o.d"
  "CMakeFiles/raqo_core.dir/search_space.cc.o"
  "CMakeFiles/raqo_core.dir/search_space.cc.o.d"
  "CMakeFiles/raqo_core.dir/workload_runner.cc.o"
  "CMakeFiles/raqo_core.dir/workload_runner.cc.o.d"
  "libraqo_core.a"
  "libraqo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
