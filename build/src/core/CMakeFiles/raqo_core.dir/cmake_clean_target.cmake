file(REMOVE_RECURSE
  "libraqo_core.a"
)
