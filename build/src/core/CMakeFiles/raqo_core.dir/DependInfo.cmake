
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/raqo_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/container_reuse.cc" "src/core/CMakeFiles/raqo_core.dir/container_reuse.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/container_reuse.cc.o.d"
  "/root/repo/src/core/csb_tree.cc" "src/core/CMakeFiles/raqo_core.dir/csb_tree.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/csb_tree.cc.o.d"
  "/root/repo/src/core/parametric.cc" "src/core/CMakeFiles/raqo_core.dir/parametric.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/parametric.cc.o.d"
  "/root/repo/src/core/plan_cache.cc" "src/core/CMakeFiles/raqo_core.dir/plan_cache.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/plan_cache.cc.o.d"
  "/root/repo/src/core/raqo_cost_evaluator.cc" "src/core/CMakeFiles/raqo_core.dir/raqo_cost_evaluator.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/raqo_cost_evaluator.cc.o.d"
  "/root/repo/src/core/raqo_planner.cc" "src/core/CMakeFiles/raqo_core.dir/raqo_planner.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/raqo_planner.cc.o.d"
  "/root/repo/src/core/resource_planner.cc" "src/core/CMakeFiles/raqo_core.dir/resource_planner.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/resource_planner.cc.o.d"
  "/root/repo/src/core/robust.cc" "src/core/CMakeFiles/raqo_core.dir/robust.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/robust.cc.o.d"
  "/root/repo/src/core/search_space.cc" "src/core/CMakeFiles/raqo_core.dir/search_space.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/search_space.cc.o.d"
  "/root/repo/src/core/workload_runner.cc" "src/core/CMakeFiles/raqo_core.dir/workload_runner.cc.o" "gcc" "src/core/CMakeFiles/raqo_core.dir/workload_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/raqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/raqo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/raqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
