file(REMOVE_RECURSE
  "CMakeFiles/raqo_rules.dir/dataset.cc.o"
  "CMakeFiles/raqo_rules.dir/dataset.cc.o.d"
  "CMakeFiles/raqo_rules.dir/decision_tree.cc.o"
  "CMakeFiles/raqo_rules.dir/decision_tree.cc.o.d"
  "CMakeFiles/raqo_rules.dir/rule_based.cc.o"
  "CMakeFiles/raqo_rules.dir/rule_based.cc.o.d"
  "CMakeFiles/raqo_rules.dir/switch_points.cc.o"
  "CMakeFiles/raqo_rules.dir/switch_points.cc.o.d"
  "CMakeFiles/raqo_rules.dir/tree_io.cc.o"
  "CMakeFiles/raqo_rules.dir/tree_io.cc.o.d"
  "libraqo_rules.a"
  "libraqo_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
