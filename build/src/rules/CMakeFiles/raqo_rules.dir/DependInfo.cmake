
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/dataset.cc" "src/rules/CMakeFiles/raqo_rules.dir/dataset.cc.o" "gcc" "src/rules/CMakeFiles/raqo_rules.dir/dataset.cc.o.d"
  "/root/repo/src/rules/decision_tree.cc" "src/rules/CMakeFiles/raqo_rules.dir/decision_tree.cc.o" "gcc" "src/rules/CMakeFiles/raqo_rules.dir/decision_tree.cc.o.d"
  "/root/repo/src/rules/rule_based.cc" "src/rules/CMakeFiles/raqo_rules.dir/rule_based.cc.o" "gcc" "src/rules/CMakeFiles/raqo_rules.dir/rule_based.cc.o.d"
  "/root/repo/src/rules/switch_points.cc" "src/rules/CMakeFiles/raqo_rules.dir/switch_points.cc.o" "gcc" "src/rules/CMakeFiles/raqo_rules.dir/switch_points.cc.o.d"
  "/root/repo/src/rules/tree_io.cc" "src/rules/CMakeFiles/raqo_rules.dir/tree_io.cc.o" "gcc" "src/rules/CMakeFiles/raqo_rules.dir/tree_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/raqo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/raqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
