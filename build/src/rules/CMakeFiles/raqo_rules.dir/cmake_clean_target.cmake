file(REMOVE_RECURSE
  "libraqo_rules.a"
)
