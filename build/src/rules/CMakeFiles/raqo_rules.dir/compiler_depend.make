# Empty compiler generated dependencies file for raqo_rules.
# This may be replaced when dependencies are built.
