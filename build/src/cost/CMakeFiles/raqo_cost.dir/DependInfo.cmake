
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cost_model.cc" "src/cost/CMakeFiles/raqo_cost.dir/cost_model.cc.o" "gcc" "src/cost/CMakeFiles/raqo_cost.dir/cost_model.cc.o.d"
  "/root/repo/src/cost/cost_vector.cc" "src/cost/CMakeFiles/raqo_cost.dir/cost_vector.cc.o" "gcc" "src/cost/CMakeFiles/raqo_cost.dir/cost_vector.cc.o.d"
  "/root/repo/src/cost/features.cc" "src/cost/CMakeFiles/raqo_cost.dir/features.cc.o" "gcc" "src/cost/CMakeFiles/raqo_cost.dir/features.cc.o.d"
  "/root/repo/src/cost/model_eval.cc" "src/cost/CMakeFiles/raqo_cost.dir/model_eval.cc.o" "gcc" "src/cost/CMakeFiles/raqo_cost.dir/model_eval.cc.o.d"
  "/root/repo/src/cost/model_io.cc" "src/cost/CMakeFiles/raqo_cost.dir/model_io.cc.o" "gcc" "src/cost/CMakeFiles/raqo_cost.dir/model_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
