# Empty compiler generated dependencies file for raqo_cost.
# This may be replaced when dependencies are built.
