file(REMOVE_RECURSE
  "CMakeFiles/raqo_cost.dir/cost_model.cc.o"
  "CMakeFiles/raqo_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/raqo_cost.dir/cost_vector.cc.o"
  "CMakeFiles/raqo_cost.dir/cost_vector.cc.o.d"
  "CMakeFiles/raqo_cost.dir/features.cc.o"
  "CMakeFiles/raqo_cost.dir/features.cc.o.d"
  "CMakeFiles/raqo_cost.dir/model_eval.cc.o"
  "CMakeFiles/raqo_cost.dir/model_eval.cc.o.d"
  "CMakeFiles/raqo_cost.dir/model_io.cc.o"
  "CMakeFiles/raqo_cost.dir/model_io.cc.o.d"
  "libraqo_cost.a"
  "libraqo_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
