file(REMOVE_RECURSE
  "libraqo_cost.a"
)
