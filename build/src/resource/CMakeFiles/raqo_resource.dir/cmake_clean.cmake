file(REMOVE_RECURSE
  "CMakeFiles/raqo_resource.dir/cluster_conditions.cc.o"
  "CMakeFiles/raqo_resource.dir/cluster_conditions.cc.o.d"
  "CMakeFiles/raqo_resource.dir/resource_config.cc.o"
  "CMakeFiles/raqo_resource.dir/resource_config.cc.o.d"
  "libraqo_resource.a"
  "libraqo_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
