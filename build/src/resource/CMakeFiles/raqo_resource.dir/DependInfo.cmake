
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resource/cluster_conditions.cc" "src/resource/CMakeFiles/raqo_resource.dir/cluster_conditions.cc.o" "gcc" "src/resource/CMakeFiles/raqo_resource.dir/cluster_conditions.cc.o.d"
  "/root/repo/src/resource/resource_config.cc" "src/resource/CMakeFiles/raqo_resource.dir/resource_config.cc.o" "gcc" "src/resource/CMakeFiles/raqo_resource.dir/resource_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
