file(REMOVE_RECURSE
  "libraqo_resource.a"
)
