# Empty dependencies file for raqo_resource.
# This may be replaced when dependencies are built.
