# Empty compiler generated dependencies file for raqo_trace.
# This may be replaced when dependencies are built.
