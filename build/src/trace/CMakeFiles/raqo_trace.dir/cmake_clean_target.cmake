file(REMOVE_RECURSE
  "libraqo_trace.a"
)
