file(REMOVE_RECURSE
  "CMakeFiles/raqo_trace.dir/queue_sim.cc.o"
  "CMakeFiles/raqo_trace.dir/queue_sim.cc.o.d"
  "CMakeFiles/raqo_trace.dir/workload.cc.o"
  "CMakeFiles/raqo_trace.dir/workload.cc.o.d"
  "libraqo_trace.a"
  "libraqo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
