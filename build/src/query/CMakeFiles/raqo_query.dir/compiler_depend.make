# Empty compiler generated dependencies file for raqo_query.
# This may be replaced when dependencies are built.
