file(REMOVE_RECURSE
  "libraqo_query.a"
)
