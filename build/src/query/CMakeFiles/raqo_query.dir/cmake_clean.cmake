file(REMOVE_RECURSE
  "CMakeFiles/raqo_query.dir/sql_parser.cc.o"
  "CMakeFiles/raqo_query.dir/sql_parser.cc.o.d"
  "libraqo_query.a"
  "libraqo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
