# Empty dependencies file for raqo_optimizer.
# This may be replaced when dependencies are built.
