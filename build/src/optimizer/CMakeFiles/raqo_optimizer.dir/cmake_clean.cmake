file(REMOVE_RECURSE
  "CMakeFiles/raqo_optimizer.dir/bushy_dp.cc.o"
  "CMakeFiles/raqo_optimizer.dir/bushy_dp.cc.o.d"
  "CMakeFiles/raqo_optimizer.dir/fast_randomized.cc.o"
  "CMakeFiles/raqo_optimizer.dir/fast_randomized.cc.o.d"
  "CMakeFiles/raqo_optimizer.dir/fixed_resource_evaluator.cc.o"
  "CMakeFiles/raqo_optimizer.dir/fixed_resource_evaluator.cc.o.d"
  "CMakeFiles/raqo_optimizer.dir/plan_cost.cc.o"
  "CMakeFiles/raqo_optimizer.dir/plan_cost.cc.o.d"
  "CMakeFiles/raqo_optimizer.dir/planner_result.cc.o"
  "CMakeFiles/raqo_optimizer.dir/planner_result.cc.o.d"
  "CMakeFiles/raqo_optimizer.dir/selinger.cc.o"
  "CMakeFiles/raqo_optimizer.dir/selinger.cc.o.d"
  "libraqo_optimizer.a"
  "libraqo_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
