
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/bushy_dp.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/bushy_dp.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/bushy_dp.cc.o.d"
  "/root/repo/src/optimizer/fast_randomized.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/fast_randomized.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/fast_randomized.cc.o.d"
  "/root/repo/src/optimizer/fixed_resource_evaluator.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/fixed_resource_evaluator.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/fixed_resource_evaluator.cc.o.d"
  "/root/repo/src/optimizer/plan_cost.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/plan_cost.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/plan_cost.cc.o.d"
  "/root/repo/src/optimizer/planner_result.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/planner_result.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/planner_result.cc.o.d"
  "/root/repo/src/optimizer/selinger.cc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/selinger.cc.o" "gcc" "src/optimizer/CMakeFiles/raqo_optimizer.dir/selinger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/raqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/raqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
