file(REMOVE_RECURSE
  "libraqo_optimizer.a"
)
