file(REMOVE_RECURSE
  "CMakeFiles/raqo_plan.dir/cardinality.cc.o"
  "CMakeFiles/raqo_plan.dir/cardinality.cc.o.d"
  "CMakeFiles/raqo_plan.dir/plan_builder.cc.o"
  "CMakeFiles/raqo_plan.dir/plan_builder.cc.o.d"
  "CMakeFiles/raqo_plan.dir/plan_dot.cc.o"
  "CMakeFiles/raqo_plan.dir/plan_dot.cc.o.d"
  "CMakeFiles/raqo_plan.dir/plan_node.cc.o"
  "CMakeFiles/raqo_plan.dir/plan_node.cc.o.d"
  "CMakeFiles/raqo_plan.dir/table_set.cc.o"
  "CMakeFiles/raqo_plan.dir/table_set.cc.o.d"
  "libraqo_plan.a"
  "libraqo_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
