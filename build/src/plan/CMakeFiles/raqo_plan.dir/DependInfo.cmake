
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/cardinality.cc" "src/plan/CMakeFiles/raqo_plan.dir/cardinality.cc.o" "gcc" "src/plan/CMakeFiles/raqo_plan.dir/cardinality.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/plan/CMakeFiles/raqo_plan.dir/plan_builder.cc.o" "gcc" "src/plan/CMakeFiles/raqo_plan.dir/plan_builder.cc.o.d"
  "/root/repo/src/plan/plan_dot.cc" "src/plan/CMakeFiles/raqo_plan.dir/plan_dot.cc.o" "gcc" "src/plan/CMakeFiles/raqo_plan.dir/plan_dot.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/plan/CMakeFiles/raqo_plan.dir/plan_node.cc.o" "gcc" "src/plan/CMakeFiles/raqo_plan.dir/plan_node.cc.o.d"
  "/root/repo/src/plan/table_set.cc" "src/plan/CMakeFiles/raqo_plan.dir/table_set.cc.o" "gcc" "src/plan/CMakeFiles/raqo_plan.dir/table_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/raqo_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/raqo_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
