# Empty dependencies file for raqo_plan.
# This may be replaced when dependencies are built.
