file(REMOVE_RECURSE
  "libraqo_plan.a"
)
