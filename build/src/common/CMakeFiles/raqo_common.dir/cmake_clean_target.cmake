file(REMOVE_RECURSE
  "libraqo_common.a"
)
