# Empty dependencies file for raqo_common.
# This may be replaced when dependencies are built.
