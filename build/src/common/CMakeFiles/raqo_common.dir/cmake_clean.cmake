file(REMOVE_RECURSE
  "CMakeFiles/raqo_common.dir/matrix.cc.o"
  "CMakeFiles/raqo_common.dir/matrix.cc.o.d"
  "CMakeFiles/raqo_common.dir/regression.cc.o"
  "CMakeFiles/raqo_common.dir/regression.cc.o.d"
  "CMakeFiles/raqo_common.dir/rng.cc.o"
  "CMakeFiles/raqo_common.dir/rng.cc.o.d"
  "CMakeFiles/raqo_common.dir/stats.cc.o"
  "CMakeFiles/raqo_common.dir/stats.cc.o.d"
  "CMakeFiles/raqo_common.dir/status.cc.o"
  "CMakeFiles/raqo_common.dir/status.cc.o.d"
  "CMakeFiles/raqo_common.dir/strings.cc.o"
  "CMakeFiles/raqo_common.dir/strings.cc.o.d"
  "libraqo_common.a"
  "libraqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
