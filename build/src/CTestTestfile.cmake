# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("resource")
subdirs("catalog")
subdirs("query")
subdirs("plan")
subdirs("cost")
subdirs("sim")
subdirs("trace")
subdirs("rules")
subdirs("optimizer")
subdirs("core")
