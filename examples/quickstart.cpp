// Quickstart: optimize a TPC-H query jointly over query plans and
// resource configurations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The walk-through:
//   1. build a catalog (tables + statistics + join graph),
//   2. train the operator cost models from execution profiles
//      (here: profile runs against the bundled cluster simulator),
//   3. describe the current cluster conditions,
//   4. ask the RAQO planner for a joint query + resource plan,
//   5. compare against the traditional fixed-resource baseline.

#include <cstdio>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "query/sql_parser.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  // 1. The schema: TPC-H at scale factor 100 (lineitem ~ 73 GB).
  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);

  // 2. Cost models: f(data, resources) -> seconds, one per join
  //    implementation, trained on simulated profile runs. (The paper's
  //    published Hive coefficients are also available via
  //    cost::PaperHiveModels().)
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 models.status().ToString().c_str());
    return 1;
  }

  // 3. Cluster conditions, as the resource manager would report them:
  //    containers of 1..10 GB, up to 100 of them, allocatable in steps
  //    of 1.
  resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  // 4. Plan TPC-H Q3 (customer x orders x lineitem) jointly. Queries
  //    can be given declaratively; the parser resolves tables and
  //    validates the join predicates against the catalog.
  core::RaqoPlanner planner(&catalog, *models, cluster);
  Result<query::ParsedQuery> parsed = query::ParseJoinQuery(
      catalog,
      "select * from customer, orders, lineitem "
      "where customer.c_custkey = orders.o_custkey "
      "and lineitem.l_orderkey = orders.o_orderkey");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const std::vector<catalog::TableId>& query = parsed->tables;

  Result<core::JointPlan> joint = planner.Plan(query);
  if (!joint.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 joint.status().ToString().c_str());
    return 1;
  }

  std::printf("joint query/resource plan:\n  %s\n",
              joint->plan->ToString(&catalog).c_str());
  std::printf("estimated cost: %s\n", joint->cost.ToString().c_str());
  std::printf("planner stats: %.2f ms, %lld resource configurations "
              "explored\n\n",
              joint->stats.wall_ms,
              (long long)joint->stats.resource_configs_explored);

  // 5. The traditional two-step baseline: plan first under a fixed
  //    "user guesstimate" configuration.
  Result<core::JointPlan> baseline =
      planner.PlanForResources(query, resource::ResourceConfig(4, 10));
  if (baseline.ok()) {
    std::printf("fixed-resource baseline (4 GB x 10 containers):\n  %s\n",
                baseline->plan->ToString(&catalog).c_str());
    std::printf("estimated cost: %s\n", baseline->cost.ToString().c_str());
    std::printf("RAQO speed-up over the baseline: %.2fx\n",
                baseline->cost.seconds / joint->cost.seconds);
  }

  // 6. Filters change the data statistics, which changes the best joint
  //    plan: a selective shipdate filter shrinks lineitem enough to make
  //    broadcasting viable.
  Result<query::ParsedQuery> filtered_query = query::ParseJoinQuery(
      catalog,
      "select * from customer, orders, lineitem "
      "where customer.c_custkey = orders.o_custkey "
      "and lineitem.l_orderkey = orders.o_orderkey "
      "and lineitem.l_shipdate >= 2300");
  if (filtered_query.ok()) {
    Result<catalog::Catalog> filtered_catalog =
        query::ApplyFilters(catalog, *filtered_query);
    if (filtered_catalog.ok()) {
      core::RaqoPlanner filtered_planner(&*filtered_catalog, *models,
                                         cluster);
      Result<core::JointPlan> filtered_plan =
          filtered_planner.Plan(filtered_query->tables);
      if (filtered_plan.ok()) {
        std::printf("\nwith filters (lineitem %.1f GB after predicates):\n"
                    "  %s\nestimated cost: %s\n",
                    filtered_catalog
                        ->table(*filtered_catalog->FindTable("lineitem"))
                        .total_gb(),
                    filtered_plan->plan->ToString(&*filtered_catalog)
                        .c_str(),
                    filtered_plan->cost.ToString().c_str());
      }
    }
  }
  return 0;
}
