// Multi-tenant planning through the RAQO server (Section IV): each
// tenant gets a resource envelope (the "r => p" use case — pick the
// best plan *for the given resources*) and a cumulative dollar budget
// that the server's admission control enforces. Small envelopes force
// shuffle joins and different join orders than large ones — exactly
// the behaviour a resource-blind optimizer cannot provide — and a
// tenant that spends through its budget is cut off at admission with
// RESOURCE_EXHAUSTED instead of quietly billing forever.

#include <cstdio>
#include <vector>

#include "catalog/tpch.h"
#include "common/strings.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  // Three tiers: a cramped envelope with a small budget, a mid-size
  // one, and an unthrottled one (0 = unlimited).
  struct Tenant {
    const char* name;
    resource::ResourceConfig envelope;
    double budget_dollars;
  };
  const std::vector<Tenant> tenants = {
      {"bronze", resource::ResourceConfig(1.0, 4), 0.10},
      {"silver", resource::ResourceConfig(4.0, 10), 0.50},
      {"gold", resource::ResourceConfig(10.0, 100), 0.0},
  };

  server::PlanningService service(&catalog, *models,
                                  resource::ClusterConditions::PaperDefault(),
                                  resource::PricingModel(),
                                  server::PlanningServiceOptions());
  server::ServerOptions server_options;
  server_options.port = 0;  // loopback, ephemeral
  for (const Tenant& tenant : tenants) {
    server_options.tenant_quotas[tenant.name].max_dollars =
        tenant.budget_dollars;
  }
  server::PlanningServer server(&service, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("multi-tenant planning of TPC-H Q2 over the wire\n\n");

  // Every tenant plans the same query — part x supplier x partsupp x
  // nation — but inside its own envelope, paying from its own budget,
  // until the server refuses to admit more.
  for (const Tenant& tenant : tenants) {
    server::ClientOptions client_options;
    client_options.tenant = tenant.name;
    Result<server::PlanningClient> client = server::PlanningClient::Connect(
        "127.0.0.1", server.port(), client_options);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }

    std::printf("%s  (envelope %s, budget %s)\n", tenant.name,
                tenant.envelope.ToString().c_str(),
                tenant.budget_dollars > 0.0
                    ? StrPrintf("$%.2f", tenant.budget_dollars).c_str()
                    : "unlimited");

    constexpr int kMaxCalls = 8;
    for (int i = 0; i < kMaxCalls; ++i) {
      server::PlanRequest request;
      request.id = StrPrintf("%s-%d", tenant.name, i);
      request.tables = {"part", "supplier", "partsupp", "nation"};
      request.has_resources = true;
      request.resources = tenant.envelope;
      Result<server::PlanResponse> response = client->Call(request);
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      if (!response->ok()) {
        std::printf("  call %d: %s — %s\n", i, response->status.c_str(),
                    response->error.c_str());
        break;
      }
      if (i == 0) {
        std::printf("  plan: %s\n", response->plan.c_str());
      }
      std::printf("  call %d: %.1f s estimated, $%.4f charged\n", i,
                  response->cost.seconds, response->cost.dollars);
    }
    std::printf("\n");
  }

  const auto stats = server.tenant_stats();
  std::printf("server-side accounting\n");
  std::printf("  %-8s %9s %12s %12s\n", "tenant", "admitted", "rejected",
              "$ spent");
  for (const Tenant& tenant : tenants) {
    const auto it = stats.find(tenant.name);
    if (it == stats.end()) continue;
    std::printf("  %-8s %9lld %12lld %11.4f\n", tenant.name,
                (long long)it->second.admitted,
                (long long)it->second.rejected_budget,
                it->second.dollars_spent);
  }

  server.Shutdown();
  server.Wait();

  std::printf(
      "\nnote how the cramped envelope forces shuffle joins and a "
      "different join order than the large ones, and how the budgeted "
      "tenants are refused at admission once their spending crosses the "
      "line — the unthrottled tenant keeps planning.\n");
  return 0;
}
