// Use case "r => p" (Section IV): in a multi-tenant cluster each tenant
// has a resource quota; RAQO picks the best query plan *for the given
// budget*. This example sweeps the quota and shows the chosen plan — both
// join implementations and join order — flipping as the budget grows,
// which is exactly the behaviour a resource-blind optimizer cannot
// provide.

#include <cstdio>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  core::RaqoPlanner planner(&catalog, *models,
                            resource::ClusterConditions::PaperDefault());
  // TPC-H Q2: part x supplier x partsupp x nation (3 joins).
  std::vector<catalog::TableId> query =
      *catalog::TpchQueryTables(catalog, catalog::TpchQuery::kQ2);

  std::printf("tenant quota sweep for TPC-H Q2\n");
  std::printf("%-26s %-52s %12s\n", "quota (per-operator)", "chosen plan",
              "est. time");
  struct Quota {
    double container_gb;
    double containers;
  };
  for (const Quota& quota : {Quota{1, 4}, Quota{2, 10}, Quota{4, 10},
                             Quota{4, 40}, Quota{8, 40}, Quota{10, 100}}) {
    const resource::ResourceConfig budget(quota.container_gb,
                                          quota.containers);
    Result<core::JointPlan> plan = planner.PlanForResources(query, budget);
    if (!plan.ok()) {
      std::printf("%-26s %s\n", budget.ToString().c_str(),
                  plan.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s %-52s %10.1f s\n", budget.ToString().c_str(),
                plan->plan->ToString(&catalog).c_str(),
                plan->cost.seconds);
  }

  std::printf(
      "\nnote how small quotas force shuffle joins (nothing fits in "
      "memory) while large containers unlock broadcast joins, and the "
      "join order adapts along the way.\n");
  return 0;
}
