// Command-line client for the RAQO planning server:
//
//   raqo_client --port 7470 --sql "select * from orders, lineitem, customer"
//   raqo_client --port 7470 --sql "select * from orders, lineitem" \
//       --max-dollars 0.40
//
// Prints the chosen plan, the per-join resource configuration, and the
// predicted cost/latency the server answered with.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "server/client.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raqo;

  std::string host = "127.0.0.1";
  uint16_t port = 7470;
  if (const char* v = FlagValue(argc, argv, "--host")) host = v;
  if (const char* v = FlagValue(argc, argv, "--port")) {
    port = static_cast<uint16_t>(std::atoi(v));
  }

  server::PlanRequest request;
  request.id = "raqo_client";
  request.sql = "select * from orders, lineitem, customer";
  if (const char* v = FlagValue(argc, argv, "--sql")) request.sql = v;
  if (const char* v = FlagValue(argc, argv, "--max-dollars")) {
    request.has_max_dollars = true;
    request.max_dollars = std::atof(v);
  }
  if (const char* v = FlagValue(argc, argv, "--algorithm")) {
    request.algorithm = v;
  }
  if (const char* v = FlagValue(argc, argv, "--search")) request.search = v;
  if (const char* v = FlagValue(argc, argv, "--deadline-ms")) {
    request.deadline_ms = std::atoll(v);
  }

  Result<server::PlanningClient> client =
      server::PlanningClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  Result<server::PlanResponse> response = client->Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "call: %s\n", response.status().ToString().c_str());
    return 1;
  }
  if (!response->ok()) {
    std::fprintf(stderr, "%s: %s\n", response->status.c_str(),
                 response->error.c_str());
    return 2;
  }

  std::printf("plan:     %s\n", response->plan.c_str());
  for (size_t i = 0; i < response->join_resources.size(); ++i) {
    const resource::ResourceConfig& r = response->join_resources[i];
    std::printf("join %zu:   %.0f x %.1f GB containers\n", i,
                r.num_containers(), r.container_size_gb());
  }
  std::printf("cost:     %.3f s, $%.4f\n", response->cost.seconds,
              response->cost.dollars);
  std::printf(
      "planning: %.2f ms wall, %lld plans, %lld resource configs, "
      "cache %lld/%lld, queue wait %.0f us\n",
      response->stats.wall_ms, (long long)response->stats.plans_considered,
      (long long)response->stats.resource_configs_explored,
      (long long)response->stats.cache_hits,
      (long long)(response->stats.cache_hits + response->stats.cache_misses),
      response->queue_wait_us);
  return 0;
}
