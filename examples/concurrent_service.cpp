// A miniature RAQO planning service: a batch of TPC-H queries fanned
// across worker threads that share one thread-safe resource-plan cache.
// The concurrent run returns exactly the plans the sequential runner
// would (exact-match cache mode keeps planning deterministic), while the
// shared cache lets later queries reuse resource plans computed by any
// worker — the across-query reuse of Figure 15(b), now concurrent.

#include <cstdio>

#include "catalog/tpch.h"
#include "core/concurrent_workload_runner.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  // The workload: every TPC-H join query. It is submitted twice, as two
  // separate batches — the shared cache persists across Run calls, so
  // the second round hits the resource plans the first round cached.
  // (Putting both rounds in one batch would let a query race its own
  // resubmission on another worker before the cache is warm.)
  auto make_round = [&](const char* suffix) {
    std::vector<core::WorkloadQuery> workload;
    for (catalog::TpchQuery q :
         {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
          catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
      core::WorkloadQuery query;
      query.label = std::string(catalog::TpchQueryName(q)) + suffix;
      query.tables = *catalog::TpchQueryTables(catalog, q);
      workload.push_back(std::move(query));
    }
    return workload;
  };

  core::RaqoPlannerOptions planner_options;
  planner_options.evaluator.use_cache = true;
  planner_options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  planner_options.clear_cache_between_queries = false;

  core::ConcurrentRunnerOptions service_options;
  service_options.num_threads = 4;
  service_options.share_cache = true;
  service_options.cache_shards = 8;

  core::ConcurrentWorkloadRunner service(
      &catalog, *models, resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), planner_options, service_options);

  std::printf("%-22s %12s %10s  %s\n", "query", "est. seconds",
              "#res-iter", "joint plan");
  size_t total_queries = 0;
  double total_ms = 0.0;
  for (const char* suffix : {"", " (resubmitted)"}) {
    Result<core::WorkloadReport> report = service.Run(make_round(suffix));
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    for (const core::QueryRunReport& q : report->queries) {
      std::printf("%-22s %12.2f %10lld  %s\n", q.label.c_str(),
                  q.cost.seconds, (long long)q.resource_configs_explored,
                  q.plan.c_str());
    }
    total_queries += report->queries.size();
    total_ms += report->wall_clock_ms;
  }
  const core::CacheStats cache = service.shared_cache_stats();
  std::printf(
      "\n%zu queries on %d threads in %.1f ms; shared cache: %lld hits / "
      "%lld misses, %zu entries\n",
      total_queries, service.num_threads(), total_ms,
      (long long)cache.hits, (long long)cache.misses,
      service.shared_cache_size());
  return 0;
}
