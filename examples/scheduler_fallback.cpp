// Extension demo ("Interaction with DAG scheduler", Section VIII): with
// RAQO, a submitted job carries precise per-operator resource requests —
// so what should the scheduler do when the cluster cannot grant them
// right now? This example:
//   1. plans a primary joint plan plus a frugal alternative for the same
//      query (RAQO under full vs constrained conditions),
//   2. checks both plans' resilience to cluster degradation
//      (core::EvaluatePlanRobustness),
//   3. feeds them to the resource-aware scheduler under different
//      availability snapshots and prints its wait-vs-switch decisions.

#include <cstdio>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "core/robust.h"
#include "sim/profile_runner.h"
#include "sim/scheduler.h"

int main() {
  using namespace raqo;

  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models = sim::TrainModelsFromSimulator(hive);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  std::vector<catalog::TableId> query =
      *catalog::TpchQueryTables(catalog, catalog::TpchQuery::kQ3);

  // 1. Primary plan: optimized for the full cluster. Alternative plan:
  //    optimized as if only a slice of the cluster were available, so its
  //    resource requests are deliberately frugal.
  core::RaqoPlanner planner(&catalog, *models,
                            resource::ClusterConditions::PaperDefault());
  Result<core::JointPlan> primary = planner.Plan(query);
  planner.UpdateClusterConditions(resource::ClusterConditions::WithMax(4, 12));
  Result<core::JointPlan> alternative = planner.Plan(query);
  if (!primary.ok() || !alternative.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  std::printf("primary:     %s  (est. %.1f s)\n",
              primary->plan->ToString(&catalog).c_str(),
              primary->cost.seconds);
  std::printf("alternative: %s  (est. %.1f s)\n\n",
              alternative->plan->ToString(&catalog).c_str(),
              alternative->cost.seconds);

  // 2. Robustness: how would each plan cope if the cluster degraded
  //    between optimization and execution?
  for (const auto& [name, plan] :
       {std::pair<const char*, const plan::PlanNode*>{"primary",
                                                      primary->plan.get()},
        {"alternative", alternative->plan.get()}}) {
    Result<core::RobustnessReport> report = core::EvaluatePlanRobustness(
        catalog, *models, resource::ClusterConditions::PaperDefault(),
        resource::PricingModel(), *plan);
    if (report.ok()) {
      std::printf("%-12s robustness: worst %.1f s over degradations, "
                  "infeasible in %d/%zu scenarios\n",
                  name, report->worst_cost, report->infeasible_count,
                  report->per_perturbation_cost.size());
    }
  }

  // 3. The scheduler's call under different cluster moods.
  sim::ResourceAwareScheduler scheduler(hive, &catalog);
  struct Snapshot {
    const char* when;
    sim::ClusterAvailability available;
  };
  const Snapshot snapshots[] = {
      {"cluster idle", {10.0, 100.0, 5.0}},
      {"busy, queue drains briskly", {10.0, 40.0, 20.0}},
      {"busy, queue barely moves", {10.0, 10.0, 0.01}},
      {"only small machines free", {4.0, 100.0, 5.0}},
  };
  std::printf("\n%-30s %s\n", "cluster snapshot", "scheduler decision");
  for (const Snapshot& s : snapshots) {
    Result<sim::ScheduleDecision> d = scheduler.Decide(
        {primary->plan.get(), alternative->plan.get()}, s.available);
    std::printf("%-30s %s\n", s.when,
                d.ok() ? d->ToString().c_str()
                       : d.status().ToString().c_str());
  }
  std::printf(
      "\nplan#0 is the primary, plan#1 the frugal alternative: the "
      "scheduler waits when the queue drains fast, switches plans when "
      "waiting would cost more, and falls back entirely when only small "
      "machines remain.\n");
  return 0;
}
