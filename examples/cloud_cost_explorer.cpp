// Use case "c => (p, r)" (Section IV): a serverless-analytics user cares
// about the dollar amount on the bill. This example runs the
// multi-objective planner once, prints the (execution time, dollars)
// frontier for TPC-H Q3, and then answers price-capped requests:
// "what is the fastest plan I can get for at most $X?"

#include <cstdio>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kFastRandomized;
  options.randomized.iterations = 20;
  // Plan resources for a blend of time and money so the frontier spreads.
  options.evaluator.time_weight = 0.7;
  resource::PricingModel pricing(0.05);  // $/GB-hour
  core::RaqoPlanner planner(&catalog, *models,
                            resource::ClusterConditions::PaperDefault(),
                            pricing, options);

  std::vector<catalog::TableId> query =
      *catalog::TpchQueryTables(catalog, catalog::TpchQuery::kQ3);

  Result<optimizer::MultiObjectiveResult> frontier =
      planner.PlanFrontier(query);
  if (!frontier.ok()) {
    std::fprintf(stderr, "%s\n", frontier.status().ToString().c_str());
    return 1;
  }

  std::printf("time/money frontier for TPC-H Q3 (%zu plans):\n",
              frontier->frontier.size());
  std::printf("%12s %12s   plan\n", "time (s)", "cost ($)");
  for (const optimizer::ParetoEntry& entry : frontier->frontier) {
    std::printf("%12.1f %12.4f   %s\n", entry.cost.seconds,
                entry.cost.dollars,
                entry.plan->ToString(&catalog).c_str());
  }

  std::printf("\nprice-capped requests:\n");
  const double cheapest = frontier->CheapestEntry()->cost.dollars;
  for (double budget : {cheapest * 0.5, cheapest * 1.2, cheapest * 3.0,
                        cheapest * 10.0}) {
    Result<core::JointPlan> pick = planner.PlanForMoneyBudget(query, budget);
    if (!pick.ok()) {
      std::printf("  budget $%.4f: %s\n", budget,
                  pick.status().ToString().c_str());
      continue;
    }
    std::printf("  budget $%.4f: %.1f s for $%.4f -> %s\n", budget,
                pick->cost.seconds, pick->cost.dollars,
                pick->plan->ToString(&catalog).c_str());
  }
  return 0;
}
