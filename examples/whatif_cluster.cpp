// Adaptive RAQO (Sections IV and VIII): cluster conditions on shared
// clusters change constantly. This example replays a day of shifting
// conditions (idle night, busy morning, capacity loss) against both
// rule-based RAQO (the resource-aware decision tree of Section V) and
// cost-based RAQO, showing the join implementation and the resource
// requests adapting — while the engines' default 10 MB rule never moves.

#include <cstdio>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "rules/rule_based.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  // The recurring query joins a 5.1 GB sample of orders with lineitem
  // (the Section III setup), so broadcasting the sample is viable when
  // the cluster offers big enough containers.
  catalog::Catalog catalog;
  const catalog::TableId orders =
      *catalog.AddTable({"orders_sample", 49'000'000, 110});  // ~5.1 GB
  const catalog::TableId lineitem =
      *catalog.AddTable({"lineitem", 600'000'000, 130});  // ~73 GB
  RAQO_CHECK(catalog
                 .AddJoin(lineitem, orders, 1.0 / 150'000'000.0,
                          "l_orderkey = o_orderkey")
                 .ok());
  Result<cost::JoinCostModels> models = sim::TrainModelsFromSimulator(hive);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  // Rule-based RAQO: one decision tree, trained once from profile runs,
  // then traversed with the *current* resources.
  Result<rules::DecisionTreePolicy> raqo_rule = rules::TrainRaqoPolicy(hive);
  if (!raqo_rule.ok()) {
    std::fprintf(stderr, "%s\n", raqo_rule.status().ToString().c_str());
    return 1;
  }
  rules::DefaultRulePolicy default_rule;

  const double small_gb = catalog.table(orders).total_gb();
  std::vector<catalog::TableId> query = {orders, lineitem};

  struct ClusterEpoch {
    const char* when;
    double max_container_gb;
    double max_containers;
  };
  const ClusterEpoch day[] = {
      {"02:00 idle cluster", 10, 100},
      {"09:00 morning rush (big containers gone)", 4, 100},
      {"13:00 noisy neighbor (few slots left)", 10, 8},
      {"18:00 partial outage (small and few)", 3, 12},
      {"23:00 recovered", 10, 100},
  };

  core::RaqoPlanner planner(&catalog, *models,
                            resource::ClusterConditions::PaperDefault());

  std::printf("%-42s %-9s %-9s %-24s\n", "cluster condition",
              "default", "RAQO rule", "cost-based RAQO plan");
  for (const ClusterEpoch& epoch : day) {
    const resource::ClusterConditions conditions =
        resource::ClusterConditions::WithMax(epoch.max_container_gb,
                                             epoch.max_containers);
    // What the rule-based policies decide for this join, given what the
    // cluster can offer right now.
    const resource::ResourceConfig available(epoch.max_container_gb,
                                             epoch.max_containers);
    const plan::JoinImpl def = default_rule.Choose(small_gb, available, 0);
    const plan::JoinImpl rule = raqo_rule->Choose(small_gb, available, 0);

    // Cost-based RAQO re-optimizes against the new conditions.
    planner.UpdateClusterConditions(conditions);
    Result<core::JointPlan> joint = planner.Plan(query);
    std::string joint_desc = joint.ok()
                                 ? joint->plan->ToString(&catalog)
                                 : joint.status().ToString();
    std::printf("%-42s %-9s %-9s %-24s\n", epoch.when,
                plan::JoinImplName(def), plan::JoinImplName(rule),
                joint_desc.c_str());
  }
  std::printf(
      "\nthe default rule is frozen at its 10 MB threshold; RAQO flips "
      "between broadcast and shuffle as conditions change, and the "
      "cost-based planner additionally right-sizes every operator's "
      "resource request.\n");
  return 0;
}
