// Plans a TPC-H workload on the concurrent planning service with the
// observability layer fully on, then exports the telemetry:
//
//   metrics.json — snapshot of every counter/gauge/histogram
//   trace.json   — Chrome trace_event spans; open in chrome://tracing
//                  or https://ui.perfetto.dev to see per-worker
//                  planner.query > planner.selinger >
//                  planner.resource.* > cache.lookup nesting
//
// Finishes with a "where did planning time go" table computed from the
// spans themselves, plus the per-shard breakdown of the shared cache.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/tpch.h"
#include "core/concurrent_workload_runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/profile_runner.h"

int main() {
  using namespace raqo;

  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  // Metrics are on by default; tracing is opt-in. Reset both so the
  // export covers exactly this run.
  obs::DefaultMetrics().set_enabled(true);
  obs::DefaultMetrics().ResetAll();
  obs::DefaultTracer().Clear();
  obs::DefaultTracer().set_enabled(true);

  // The workload: every TPC-H join query, twice — the second round hits
  // the resource plans the first round cached, which shows up as fast
  // cache.lookup spans in place of resource-search spans.
  std::vector<core::WorkloadQuery> workload;
  for (const char* suffix : {"", " (again)"}) {
    for (catalog::TpchQuery q :
         {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
          catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
      core::WorkloadQuery query;
      query.label = std::string(catalog::TpchQueryName(q)) + suffix;
      query.tables = *catalog::TpchQueryTables(catalog, q);
      workload.push_back(std::move(query));
    }
  }

  core::RaqoPlannerOptions planner_options;
  planner_options.evaluator.use_cache = true;
  planner_options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  planner_options.clear_cache_between_queries = false;

  core::ConcurrentRunnerOptions service_options;
  service_options.num_threads = 4;
  service_options.share_cache = true;
  service_options.cache_shards = 8;

  core::ConcurrentWorkloadRunner service(
      &catalog, *models, resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), planner_options, service_options);

  Result<core::WorkloadReport> report = service.Run(workload);
  obs::DefaultTracer().set_enabled(false);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  const std::vector<obs::FinishedSpan> spans =
      obs::DefaultTracer().Snapshot();
  const obs::MetricsSnapshot metrics = obs::DefaultMetrics().Snapshot();
  for (const auto& [path, content] :
       {std::pair<const char*, std::string>{"metrics.json",
                                            obs::MetricsToJson(metrics)},
        {"trace.json", obs::SpansToChromeTraceJson(spans)}}) {
    Status written = obs::WriteTextFile(path, content);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path, content.size());
  }

  std::printf(
      "\nplanned %zu queries on %d threads in %.1f ms (%lld spans, "
      "%lld dropped)\n",
      report->queries.size(), service.num_threads(),
      report->wall_clock_ms, (long long)obs::DefaultTracer().total_finished(),
      (long long)obs::DefaultTracer().dropped());

  // Where the time went, from the spans themselves. Durations are
  // inclusive — a planner.query span contains its resource searches and
  // cache lookups — so this reads "time spent inside", not exclusive
  // profile time.
  struct Agg {
    double total_us = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const obs::FinishedSpan& s : spans) {
    Agg& agg = by_name[s.name];
    agg.total_us += s.dur_us;
    agg.count += 1;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("\nwhere planning time went (top 5 span kinds, inclusive):\n");
  std::printf("%-26s %8s %12s %12s\n", "span", "count", "total ms",
              "mean us");
  for (size_t i = 0; i < rows.size() && i < 5; ++i) {
    const Agg& agg = rows[i].second;
    std::printf("%-26s %8lld %12.2f %12.1f\n", rows[i].first.c_str(),
                (long long)agg.count, agg.total_us / 1e3,
                agg.total_us / static_cast<double>(agg.count));
  }

  const core::CacheStats cache = service.shared_cache_stats();
  std::printf("\nshared cache: %lld/%lld hits (%.0f%% hit rate)\n",
              (long long)cache.hits, (long long)cache.lookups(),
              100.0 * cache.hit_rate());
  std::printf("%6s %8s %9s %9s %11s %13s\n", "shard", "entries", "lookups",
              "inserts", "contended", "lock-wait us");
  const std::vector<core::ShardStats> shards =
      service.shared_cache_shard_stats();
  for (size_t i = 0; i < shards.size(); ++i) {
    const core::ShardStats& s = shards[i];
    std::printf("%6zu %8zu %9lld %9lld %11lld %13.1f\n", i, s.entries,
                (long long)s.lookups, (long long)s.inserts,
                (long long)s.contended_acquires, s.lock_wait_ns / 1e3);
  }
  return 0;
}
