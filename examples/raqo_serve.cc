// The RAQO planning server as a process: binds a TCP port, plans every
// request it is sent (see docs/SERVER.md for the wire protocol), and
// drains gracefully on SIGTERM/SIGINT — in-flight requests finish,
// responses flush, telemetry lands on disk, then the process exits 0.
//
//   raqo_serve --port 7470 --workers 8 --telemetry-dir /tmp/raqo
//
// Try it with raqo_client or bench/server_load.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "catalog/tpch.h"
#include "server/server.h"
#include "sim/profile_runner.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raqo;

  double scale = 100.0;
  server::ServerOptions server_options;
  server_options.port = 7470;
  if (const char* v = FlagValue(argc, argv, "--port")) {
    server_options.port = static_cast<uint16_t>(std::atoi(v));
  }
  if (const char* v = FlagValue(argc, argv, "--workers")) {
    server_options.num_workers = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--reactors")) {
    server_options.num_reactors = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--max-queue")) {
    server_options.max_queue = static_cast<size_t>(std::atoll(v));
  }
  if (const char* v = FlagValue(argc, argv, "--deadline-ms")) {
    server_options.default_deadline_ms = std::atoll(v);
  }
  if (const char* v = FlagValue(argc, argv, "--telemetry-dir")) {
    server_options.telemetry_dir = v;
  }
  if (const char* v = FlagValue(argc, argv, "--scale")) {
    scale = std::atof(v);
  }

  catalog::Catalog catalog = catalog::BuildTpchCatalog(scale);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }

  core::RaqoPlannerOptions planner_options;
  planner_options.evaluator.use_cache = true;
  planner_options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  planner_options.clear_cache_between_queries = false;

  server::PlanningServiceOptions service_options;
  service_options.planner = planner_options;
  server::PlanningService service(&catalog, *models,
                                  resource::ClusterConditions::PaperDefault(),
                                  resource::PricingModel(), service_options);

  server::PlanningServer server(&service, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  server::InstallShutdownSignalHandlers(&server);
  std::printf(
      "raqo_serve: TPC-H sf%.0f catalog, %d workers, %d reactors (%s), "
      "queue %zu\n",
      scale, server_options.num_workers, server.num_reactors(),
      server.reuseport_sharding() ? "SO_REUSEPORT" : "fd handoff",
      server_options.max_queue);
  std::printf("raqo_serve: listening on %s:%u (SIGTERM drains)\n",
              server_options.host.c_str(), server.port());
  std::fflush(stdout);

  server.Wait();
  server::InstallShutdownSignalHandlers(nullptr);

  const server::ServerStats stats = server.stats();
  std::printf(
      "raqo_serve: drained; %lld connections, %lld requests admitted, "
      "%lld responses, %lld queue-full, %lld deadline-expired\n",
      (long long)stats.connections_accepted, (long long)stats.requests_admitted,
      (long long)stats.responses_sent, (long long)stats.rejected_queue_full,
      (long long)stats.rejected_deadline);
  return 0;
}
