// Soak test for the serving stack: several client threads hammer a
// multi-reactor server with pipelined mixed-tenant traffic for a few
// wall-clock seconds while a fault injector resets server-side reads at
// random. The invariants under fire:
//
//   - no response id is ever delivered twice (across reconnects too),
//   - every burst that reads cleanly gets back exactly the ids it sent,
//   - the server's books balance: every admitted request is either sent
//     or counted dropped, nothing vanishes,
//   - no protocol errors: injected resets must never shear a frame in a
//     way the server mistakes for client garbage,
//   - the drain still reaches zero connections afterwards.
//
// This binary always builds, but its ctest entry is gated behind
// -DRAQO_SOAK_TESTS=ON (label "soak") so tier-1 stays fast; CI runs it
// under ThreadSanitizer (see .github/workflows/ci.yml and
// docs/SERVER.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "catalog/tpch.h"
#include "common/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using server::PlanRequest;
using server::PlanningServer;
using server::PlanningService;
using server::ServerOptions;

constexpr auto kSoakDuration = std::chrono::seconds(8);
constexpr int kClientThreads = 8;
constexpr int kBurstSize = 8;
constexpr size_t kMaxFrame = 64u << 20;

/// Resets roughly one in kResetPeriod server-side recvs. Client fds are
/// registered (and deregistered BEFORE close, so a recycled fd number
/// can never inherit pass-through status) to keep the test's own reads
/// honest while everything server-side lives dangerously.
class RandomResetInjector : public net::FaultInjector {
 public:
  static constexpr int kResetPeriod = 997;

  void Protect(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    protected_fds_.insert(fd);
  }
  void Unprotect(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    protected_fds_.erase(fd);
  }
  int resets() const { return resets_.load(); }

  net::FaultAction OnSend(int, size_t) override {
    return net::FaultAction::PassThrough();
  }
  net::FaultAction OnRecv(int fd, size_t) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (protected_fds_.count(fd)) return net::FaultAction::PassThrough();
    }
    if (recvs_.fetch_add(1, std::memory_order_relaxed) % kResetPeriod ==
        kResetPeriod - 1) {
      resets_.fetch_add(1, std::memory_order_relaxed);
      return net::FaultAction::Fail(ECONNRESET);
    }
    return net::FaultAction::PassThrough();
  }

 private:
  std::mutex mu_;
  std::unordered_set<int> protected_fds_;
  std::atomic<int> recvs_{0};
  std::atomic<int> resets_{0};
};

/// A client fd whose lifetime keeps the injector's registry in sync.
struct ProtectedConn {
  ProtectedConn(RandomResetInjector* injector, uint16_t port)
      : injector(injector) {
    Result<net::UniqueFd> connected = net::ConnectTcp("127.0.0.1", port);
    if (!connected.ok()) return;
    fd = std::move(*connected);
    injector->Protect(fd.get());
    // A reset burst means a response that never comes; time out instead
    // of wedging the soak.
    (void)net::SetSocketTimeouts(fd.get(), /*recv_timeout_ms=*/3000,
                                 /*send_timeout_ms=*/3000);
  }
  ~ProtectedConn() {
    if (fd.valid()) {
      injector->Unprotect(fd.get());
      fd.reset();
    }
  }
  bool valid() const { return fd.valid(); }

  RandomResetInjector* injector;
  net::UniqueFd fd;
};

TEST(ServerSoakTest, PipelinedMixedTenantTrafficSurvivesRandomResets) {
  catalog::Catalog catalog = catalog::BuildTpchCatalog(100.0);
  Result<cost::JoinCostModels> models =
      sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  ASSERT_TRUE(models.ok());

  core::RaqoPlannerOptions planner_options;
  planner_options.evaluator.use_cache = true;
  planner_options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  planner_options.clear_cache_between_queries = false;
  server::PlanningServiceOptions service_options;
  service_options.planner = planner_options;
  PlanningService service(&catalog, *models,
                          resource::ClusterConditions::PaperDefault(),
                          resource::PricingModel(), service_options);

  ServerOptions options;
  options.port = 0;
  options.num_reactors = 2;  // the sharded plane, even on 1-CPU machines
  options.num_workers = 4;
  options.max_queue = 1024;
  options.max_connections = 128;
  PlanningServer planning_server(&service, options);
  ASSERT_TRUE(planning_server.Start().ok());
  const uint16_t port = planning_server.port();

  RandomResetInjector injector;
  net::ScopedFaultInjector scoped(&injector);

  std::atomic<int> duplicate_ids{0};
  std::atomic<int> foreign_ids{0};
  std::atomic<int64_t> clean_bursts{0};
  std::atomic<int64_t> forgiven_bursts{0};
  const auto deadline = std::chrono::steady_clock::now() + kSoakDuration;

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      const std::string tenant = "t" + std::to_string(c % 3);
      std::set<std::string> ever_received;
      int seq = 0;
      std::optional<ProtectedConn> conn;
      conn.emplace(&injector, port);
      while (std::chrono::steady_clock::now() < deadline) {
        if (!conn->valid()) {
          // The previous burst died with the connection; reconnect and
          // forgive its outstanding ids — they may have been dropped
          // server-side (counted in responses_dropped) or never read.
          conn.emplace(&injector, port);
          if (!conn->valid()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
          }
        }

        // One pipelined burst of unique ids for this thread's tenant.
        std::set<std::string> sent;
        bool burst_ok = true;
        for (int i = 0; i < kBurstSize && burst_ok; ++i) {
          PlanRequest request;
          request.id =
              "c" + std::to_string(c) + "-" + std::to_string(seq++);
          request.tenant = tenant;
          request.tables = {"orders", "lineitem"};
          if (!server::WriteFrame(conn->fd.get(),
                                  server::SerializePlanRequest(request))
                   .ok()) {
            burst_ok = false;
            break;
          }
          sent.insert(request.id);
        }

        std::set<std::string> received;
        for (size_t i = 0; i < sent.size() && burst_ok; ++i) {
          Result<std::string> payload =
              server::ReadFrame(conn->fd.get(), kMaxFrame);
          if (!payload.ok()) {
            burst_ok = false;
            break;
          }
          Result<server::PlanResponse> response =
              server::ParsePlanResponse(*payload);
          if (!response.ok()) {
            burst_ok = false;
            break;
          }
          // A response id must be fresh forever: not a duplicate of any
          // earlier delivery, not some other burst's id.
          if (!ever_received.insert(response->id).second) {
            duplicate_ids.fetch_add(1);
          }
          if (!sent.count(response->id)) foreign_ids.fetch_add(1);
          received.insert(response->id);
        }

        if (burst_ok) {
          clean_bursts.fetch_add(1);
          EXPECT_EQ(received, sent) << "client " << c;
        } else {
          forgiven_bursts.fetch_add(1);
          conn.emplace(&injector, port);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  planning_server.Shutdown();
  planning_server.Wait();

  const server::ServerStats stats = planning_server.stats();
  EXPECT_EQ(duplicate_ids.load(), 0);
  EXPECT_EQ(foreign_ids.load(), 0);
  EXPECT_GT(clean_bursts.load(), 0);
  // Books balance: every admitted request produced exactly one
  // completion, and each completion was either buffered for a live
  // connection or counted dropped (rejections add to responses_sent, so
  // this is a >=).
  EXPECT_GE(stats.responses_sent + stats.responses_dropped,
            stats.requests_admitted);
  EXPECT_EQ(stats.protocol_errors, 0);
  EXPECT_EQ(stats.open_connections, 0);
  EXPECT_EQ(planning_server.num_reactors(), 2);

  // The storm actually happened. Resets depend on timing, so don't
  // require them — but report the mix for the curious.
  std::printf(
      "soak: %lld clean bursts, %lld forgiven, %d injected resets, "
      "%lld admitted, %lld sent, %lld dropped\n",
      (long long)clean_bursts.load(), (long long)forgiven_bursts.load(),
      injector.resets(), (long long)stats.requests_admitted,
      (long long)stats.responses_sent, (long long)stats.responses_dropped);
}

}  // namespace
}  // namespace raqo
