#include <gtest/gtest.h>

#include "rules/dataset.h"
#include "rules/decision_tree.h"
#include "rules/rule_based.h"
#include "rules/switch_points.h"
#include "sim/engine_profile.h"

namespace raqo::rules {
namespace {

Dataset TwoClassToy() {
  // Separable on feature 0 at 5.0.
  Dataset d;
  d.feature_names = {"x", "y"};
  d.class_names = {"A", "B"};
  d.rows = {{1, 0}, {2, 9}, {3, 1}, {4, 8}, {6, 0}, {7, 9}, {8, 2}, {9, 7}};
  d.labels = {0, 0, 0, 0, 1, 1, 1, 1};
  return d;
}

TEST(DatasetTest, ValidateCatchesProblems) {
  Dataset d = TwoClassToy();
  EXPECT_TRUE(d.Validate().ok());
  Dataset no_features = d;
  no_features.feature_names.clear();
  EXPECT_FALSE(no_features.Validate().ok());
  Dataset bad_label = d;
  bad_label.labels[0] = 7;
  EXPECT_FALSE(bad_label.Validate().ok());
  Dataset ragged = d;
  ragged.rows[0].push_back(1.0);
  EXPECT_FALSE(ragged.Validate().ok());
  Dataset mismatch = d;
  mismatch.labels.pop_back();
  EXPECT_FALSE(mismatch.Validate().ok());
}

TEST(DecisionTreeTest, LearnsSeparableSplit) {
  Result<DecisionTree> tree = DecisionTree::Fit(TwoClassToy());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NodeCount(), 3);
  EXPECT_EQ(tree->LeafCount(), 2);
  EXPECT_EQ(tree->MaxPathLength(), 1);
  EXPECT_DOUBLE_EQ(tree->Accuracy(TwoClassToy()), 1.0);
  EXPECT_EQ(tree->Predict({2.0, 5.0}), 0);
  EXPECT_EQ(tree->Predict({8.5, 5.0}), 1);
  // The root split should be on feature 0 near 5.
  EXPECT_EQ(tree->nodes()[0].feature, 0);
  EXPECT_NEAR(tree->nodes()[0].threshold, 5.0, 1.0);
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  Dataset d;
  d.feature_names = {"x"};
  d.class_names = {"A", "B"};
  d.rows = {{1}, {2}, {3}};
  d.labels = {0, 0, 0};
  Result<DecisionTree> tree = DecisionTree::Fit(d);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NodeCount(), 1);
  EXPECT_EQ(tree->Predict({9}), 0);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  // XOR-ish data needs depth 2; cap at 1.
  Dataset d;
  d.feature_names = {"x", "y"};
  d.class_names = {"A", "B"};
  d.rows = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  d.labels = {0, 1, 1, 0};
  TreeParams params;
  params.max_depth = 1;
  Result<DecisionTree> tree = DecisionTree::Fit(d, params);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->MaxPathLength(), 1);
  params.max_depth = 4;
  Result<DecisionTree> deep = DecisionTree::Fit(d, params);
  ASSERT_TRUE(deep.ok());
  EXPECT_DOUBLE_EQ(deep->Accuracy(d), 1.0);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset d = TwoClassToy();
  TreeParams params;
  params.min_samples_leaf = 4;
  Result<DecisionTree> tree = DecisionTree::Fit(d, params);
  ASSERT_TRUE(tree.ok());
  for (const auto& node : tree->nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.samples, 4);
    }
  }
}

TEST(DecisionTreeTest, UnsplittableDataStaysLeaf) {
  // Identical features, conflicting labels: no valid split exists.
  Dataset d;
  d.feature_names = {"x"};
  d.class_names = {"A", "B"};
  d.rows = {{1}, {1}, {1}, {1}};
  d.labels = {0, 1, 0, 1};
  Result<DecisionTree> tree = DecisionTree::Fit(d);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NodeCount(), 1);
}

TEST(DecisionTreeTest, NodeStatisticsConsistent) {
  Result<DecisionTree> tree = DecisionTree::Fit(TwoClassToy());
  ASSERT_TRUE(tree.ok());
  const auto& root = tree->nodes()[0];
  EXPECT_EQ(root.samples, 8);
  EXPECT_EQ(root.class_counts, (std::vector<int>{4, 4}));
  EXPECT_DOUBLE_EQ(root.gini, 0.5);
}

TEST(DecisionTreeTest, ToTextRendersPaperStyle) {
  Result<DecisionTree> tree = DecisionTree::Fit(TwoClassToy());
  ASSERT_TRUE(tree.ok());
  const std::string text = tree->ToText();
  EXPECT_NE(text.find("gini="), std::string::npos);
  EXPECT_NE(text.find("samples=8"), std::string::npos);
  EXPECT_NE(text.find("value=[4, 4]"), std::string::npos);
  EXPECT_NE(text.find("x <= "), std::string::npos);
}

TEST(DecisionTreeTest, PessimisticPruneCollapsesNoisySubtrees) {
  // One mislabeled point inside an otherwise pure region: the unpruned
  // tree memorizes it; pruning should collapse the noisy subtree.
  Dataset d;
  d.feature_names = {"x"};
  d.class_names = {"A", "B"};
  for (int i = 0; i < 20; ++i) {
    d.rows.push_back({static_cast<double>(i)});
    d.labels.push_back(i < 10 ? 0 : 1);
  }
  d.rows.push_back({3.5});
  d.labels.push_back(1);  // noise
  Result<DecisionTree> tree = DecisionTree::Fit(d);
  ASSERT_TRUE(tree.ok());
  const int before = tree->NodeCount();
  const int pruned = tree->PessimisticPrune();
  EXPECT_GT(pruned, 0);
  EXPECT_LT(tree->NodeCount(), before);
  // Still classifies the bulk correctly.
  EXPECT_EQ(tree->Predict({2.0}), 0);
  EXPECT_EQ(tree->Predict({15.0}), 1);
}

TEST(DecisionTreeTest, PruneKeepsPerfectTreeIntact) {
  Result<DecisionTree> tree = DecisionTree::Fit(TwoClassToy());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->PessimisticPrune(), 0);
  EXPECT_EQ(tree->NodeCount(), 3);
}

TEST(DecisionTreeTest, FitRejectsBadInput) {
  Dataset d = TwoClassToy();
  TreeParams params;
  params.max_depth = -1;
  EXPECT_FALSE(DecisionTree::Fit(d, params).ok());
  params = TreeParams();
  params.min_samples_leaf = 0;
  EXPECT_FALSE(DecisionTree::Fit(d, params).ok());
  Dataset empty;
  empty.feature_names = {"x"};
  empty.class_names = {"A", "B"};
  EXPECT_FALSE(DecisionTree::Fit(empty).ok());
}

TEST(SwitchPointTest, HiveSwitchGrowsWithContainerSize) {
  // Figure 4(a): larger containers push the BHJ/SMJ switch point to
  // larger build sides (3.4 GB at 3 GB containers, ~6.4 GB at 9 GB).
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  SwitchPointQuery q3;
  q3.container_size_gb = 3.0;
  q3.num_containers = 10;
  SwitchPointQuery q9 = q3;
  q9.container_size_gb = 9.0;
  Result<double> s3 = FindSwitchPointGb(hive, q3);
  Result<double> s9 = FindSwitchPointGb(hive, q9);
  ASSERT_TRUE(s3.ok());
  ASSERT_TRUE(s9.ok());
  EXPECT_GT(*s9, *s3);
  EXPECT_NEAR(*s3, 3.4, 0.8);
  EXPECT_NEAR(*s9, 6.4, 2.0);
}

TEST(SwitchPointTest, SparkSwitchesInMbRange) {
  // Figure 9(b): Spark's switch points sit in the hundreds of MB.
  const sim::EngineProfile spark = sim::EngineProfile::Spark();
  SwitchPointQuery q;
  q.container_size_gb = 5.0;
  q.num_containers = 10;
  q.larger_gb = 20.0;
  Result<double> s = FindSwitchPointGb(spark, q, 4.0, 0.005);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(*s, 0.05);
  EXPECT_LT(*s, 1.5);
}

TEST(SwitchPointTest, RejectsBadBounds) {
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  SwitchPointQuery q;
  EXPECT_FALSE(FindSwitchPointGb(hive, q, -1.0).ok());
  EXPECT_FALSE(FindSwitchPointGb(hive, q, 1.0, 0.0).ok());
}

TEST(SwitchPointTest, DatasetLabelsMatchSimulator) {
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  JoinChoiceGrid grid;
  grid.data_gb = {0.5, 5.0};
  grid.container_gb = {3.0, 9.0};
  grid.containers = {10};
  grid.reducers = {200};
  Result<Dataset> data = BuildJoinChoiceDataset(hive, grid);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(data->Validate().ok());
  EXPECT_EQ(data->num_rows(), 4u);
  // Tiny build side: BHJ must win everywhere.
  // (rows are ordered data_gb x container_gb)
  EXPECT_EQ(data->labels[0], kClassBhj);  // 0.5 GB, 3 GB containers
  // 5 GB build into 3 GB containers is OOM: SMJ.
  EXPECT_EQ(data->labels[2], kClassSmj);
}

TEST(RuleBasedTest, DefaultRuleIgnoresResources) {
  DefaultRulePolicy rule(10.0);
  const resource::ResourceConfig small(1, 1);
  const resource::ResourceConfig huge(100, 1000);
  EXPECT_EQ(rule.Choose(0.005, small, 0),
            plan::JoinImpl::kBroadcastHashJoin);
  EXPECT_EQ(rule.Choose(0.005, huge, 0),
            plan::JoinImpl::kBroadcastHashJoin);
  EXPECT_EQ(rule.Choose(0.02, small, 0), plan::JoinImpl::kSortMergeJoin);
  EXPECT_EQ(rule.Choose(0.02, huge, 0), plan::JoinImpl::kSortMergeJoin);
}

TEST(RuleBasedTest, DefaultTreeIsSingleSplit) {
  Result<DecisionTree> tree =
      BuildDefaultRuleTree(sim::EngineProfile::Hive());
  ASSERT_TRUE(tree.ok());
  // Figure 10: one split on data size, two leaves.
  EXPECT_EQ(tree->NodeCount(), 3);
  EXPECT_EQ(tree->MaxPathLength(), 1);
  EXPECT_EQ(tree->nodes()[0].feature, kFeatureDataGb);
  EXPECT_NEAR(tree->nodes()[0].threshold, 10.0 / 1024.0, 0.01);
}

TEST(RuleBasedTest, RaqoPolicyIsResourceAware) {
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  JoinChoiceGrid grid;  // default grid
  Result<DecisionTreePolicy> policy = TrainRaqoPolicy(hive, grid);
  ASSERT_TRUE(policy.ok());
  // A mid-size build side: broadcast into big containers, shuffle into
  // small ones — the decision must flip with the resources.
  const double ss = 5.0;
  const plan::JoinImpl with_small =
      policy->Choose(ss, resource::ResourceConfig(2, 10), 200);
  const plan::JoinImpl with_big =
      policy->Choose(ss, resource::ResourceConfig(10, 10), 200);
  EXPECT_EQ(with_small, plan::JoinImpl::kSortMergeJoin);
  EXPECT_EQ(with_big, plan::JoinImpl::kBroadcastHashJoin);
}

TEST(RuleBasedTest, RaqoTreeFitsTrainingGridWell) {
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  Result<Dataset> data = BuildJoinChoiceDataset(hive, JoinChoiceGrid());
  ASSERT_TRUE(data.ok());
  Result<DecisionTree> tree = DecisionTree::Fit(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->Accuracy(*data), 0.97);
  // The tree must actually branch on resources, not only on data size
  // (that is the whole point of rule-based RAQO).
  bool uses_resources = false;
  for (const auto& node : tree->nodes()) {
    if (!node.is_leaf() && node.feature != kFeatureDataGb) {
      uses_resources = true;
    }
  }
  EXPECT_TRUE(uses_resources);
}

}  // namespace
}  // namespace raqo::rules
