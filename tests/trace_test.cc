#include <gtest/gtest.h>

#include "trace/queue_sim.h"
#include "trace/workload.h"

namespace raqo::trace {
namespace {

TEST(WorkloadTest, GeneratesSortedArrivals) {
  WorkloadOptions options;
  options.num_jobs = 500;
  Result<std::vector<JobSpec>> jobs = GenerateWorkload(options);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 500u);
  for (size_t i = 1; i < jobs->size(); ++i) {
    EXPECT_GE((*jobs)[i].arrival_s, (*jobs)[i - 1].arrival_s);
  }
  for (const JobSpec& j : *jobs) {
    EXPECT_GT(j.runtime_s, 0.0);
    EXPECT_GE(j.containers, 1);
    EXPECT_LE(j.containers, options.max_containers);
  }
}

TEST(WorkloadTest, Deterministic) {
  WorkloadOptions options;
  options.num_jobs = 100;
  auto a = *GenerateWorkload(options);
  auto b = *GenerateWorkload(options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_DOUBLE_EQ(a[i].runtime_s, b[i].runtime_s);
    EXPECT_EQ(a[i].containers, b[i].containers);
  }
}

TEST(WorkloadTest, RejectsBadOptions) {
  WorkloadOptions options;
  options.num_jobs = 0;
  EXPECT_FALSE(GenerateWorkload(options).ok());
  options = WorkloadOptions();
  options.cluster_capacity = 0;
  EXPECT_FALSE(GenerateWorkload(options).ok());
  options = WorkloadOptions();
  options.offered_load = -1;
  EXPECT_FALSE(GenerateWorkload(options).ok());
}

TEST(QueueSimTest, UncontendedJobsStartImmediately) {
  std::vector<JobSpec> jobs = {
      {0.0, 10.0, 1},
      {100.0, 10.0, 1},
  };
  Result<std::vector<JobOutcome>> out = SimulateFifoQueue(jobs, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0].queue_time_s(), 0.0);
  EXPECT_DOUBLE_EQ((*out)[1].queue_time_s(), 0.0);
}

TEST(QueueSimTest, CapacityForcesQueueing) {
  // Two jobs each needing the whole cluster, arriving together.
  std::vector<JobSpec> jobs = {
      {0.0, 10.0, 10},
      {0.0, 10.0, 10},
  };
  Result<std::vector<JobOutcome>> out = SimulateFifoQueue(jobs, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ((*out)[1].start_s, 10.0);
  EXPECT_DOUBLE_EQ((*out)[1].queue_to_runtime_ratio(), 1.0);
}

TEST(QueueSimTest, FifoOrderRespected) {
  // A small job behind a big one must wait (strict FIFO, no backfill).
  std::vector<JobSpec> jobs = {
      {0.0, 100.0, 8},
      {1.0, 1.0, 8},   // cannot fit alongside job 0
      {2.0, 1.0, 1},   // would fit, but FIFO holds it behind job 1
  };
  Result<std::vector<JobOutcome>> out = SimulateFifoQueue(jobs, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[1].start_s, 100.0);
  EXPECT_GE((*out)[2].start_s, (*out)[1].start_s);
}

TEST(QueueSimTest, ValidatesInput) {
  EXPECT_FALSE(SimulateFifoQueue({{0, 1, 1}}, 0).ok());
  EXPECT_FALSE(SimulateFifoQueue({{0, -1, 1}}, 10).ok());
  EXPECT_FALSE(SimulateFifoQueue({{0, 1, 11}}, 10).ok());
  // Unsorted arrivals rejected.
  EXPECT_FALSE(SimulateFifoQueue({{5, 1, 1}, {0, 1, 1}}, 10).ok());
}

TEST(QueueSimTest, Figure1ShapeReproduced) {
  // The paper's headline statistics: >80% of jobs wait at least as long
  // as they run; >20% wait at least 4x their runtime.
  WorkloadOptions options;  // defaults are calibrated for Figure 1
  Result<EmpiricalCdf> cdf = QueueRuntimeRatioCdf(options);
  ASSERT_TRUE(cdf.ok());
  EXPECT_GT(cdf->FractionAtOrAbove(1.0), 0.8);
  EXPECT_GT(cdf->FractionAtOrAbove(4.0), 0.2);
}

TEST(QueueSimTest, LightLoadHasLittleQueueing) {
  WorkloadOptions options;
  options.offered_load = 0.3;
  options.num_jobs = 5'000;
  Result<EmpiricalCdf> cdf = QueueRuntimeRatioCdf(options);
  ASSERT_TRUE(cdf.ok());
  EXPECT_LT(cdf->FractionAtOrAbove(1.0), 0.5);
}

}  // namespace
}  // namespace raqo::trace
