#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/adaptive.h"
#include "core/container_reuse.h"
#include "plan/plan_builder.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using catalog::TableId;
using catalog::TpchQuery;
using resource::ClusterConditions;
using resource::ResourceConfig;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

// ---------------------------------------------------------------------
// Column statistics / derived selectivities

TEST(ColumnStatsTest, FindColumn) {
  catalog::TableDef def;
  def.name = "t";
  def.row_count = 10;
  def.row_bytes = 10;
  def.columns = {{"a", 100.0}, {"b", 5.0}};
  ASSERT_NE(def.FindColumn("a"), nullptr);
  EXPECT_DOUBLE_EQ(def.FindColumn("b")->distinct_values, 5.0);
  EXPECT_EQ(def.FindColumn("c"), nullptr);
}

TEST(ColumnStatsTest, DerivedSelectivityIsInverseMaxNdv) {
  catalog::Catalog cat;
  catalog::TableDef a{"a", 1000, 100, {{"x", 50.0}}};
  catalog::TableDef b{"b", 2000, 100, {{"y", 200.0}}};
  TableId ta = *cat.AddTable(a);
  TableId tb = *cat.AddTable(b);
  ASSERT_TRUE(cat.AddJoinOnColumns(ta, "x", tb, "y").ok());
  EXPECT_DOUBLE_EQ(cat.join_graph().EdgeSelectivity(ta, tb), 1.0 / 200.0);
  // The generated predicate names both columns.
  EXPECT_NE(cat.join_graph().edges()[0].predicate.find("a.x = b.y"),
            std::string::npos);
}

TEST(ColumnStatsTest, AddJoinOnColumnsValidates) {
  catalog::Catalog cat;
  TableId ta = *cat.AddTable({"a", 1000, 100, {{"x", 50.0}}});
  TableId tb = *cat.AddTable({"b", 2000, 100, {{"y", 0.0}}});
  EXPECT_TRUE(cat.AddJoinOnColumns(ta, "nope", tb, "y").IsNotFound());
  EXPECT_TRUE(cat.AddJoinOnColumns(ta, "x", tb, "nope").IsNotFound());
  EXPECT_TRUE(
      cat.AddJoinOnColumns(ta, "x", tb, "y").IsInvalidArgument());
  EXPECT_TRUE(cat.AddJoinOnColumns(99, "x", tb, "y").IsNotFound());
}

TEST(ColumnStatsTest, TpchDerivedSelectivitiesMatchForeignKeys) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  const TableId lineitem = *cat.FindTable("lineitem");
  const TableId orders = *cat.FindTable("orders");
  const TableId customer = *cat.FindTable("customer");
  const TableId nation = *cat.FindTable("nation");
  EXPECT_DOUBLE_EQ(cat.join_graph().EdgeSelectivity(lineitem, orders),
                   1.0 / 1'500'000.0);
  EXPECT_DOUBLE_EQ(cat.join_graph().EdgeSelectivity(orders, customer),
                   1.0 / 150'000.0);
  EXPECT_DOUBLE_EQ(cat.join_graph().EdgeSelectivity(customer, nation),
                   1.0 / 25.0);
  // Key-column statistics are present.
  EXPECT_NE(cat.table(lineitem).FindColumn("l_orderkey"), nullptr);
}

// ---------------------------------------------------------------------
// Container reuse

class ContainerReuseTest : public ::testing::Test {
 protected:
  ContainerReuseTest()
      : cat_(catalog::BuildTpchCatalog(100.0)),
        simulator_(sim::EngineProfile::Hive(), &cat_) {}

  catalog::Catalog cat_;
  sim::ExecutionSimulator simulator_;
};

TEST_F(ContainerReuseTest, SimulatorSkipsStartupOnIdenticalResources) {
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ3);
  auto plan = *plan::BuildLeftDeep(q3, plan::JoinImpl::kSortMergeJoin);
  plan->VisitJoins([](plan::PlanNode& j) {
    j.set_resources(ResourceConfig(4, 20));
  });
  sim::RunPlanOptions reuse;
  reuse.reuse_containers = true;
  auto without = *simulator_.RunPlan(*plan, sim::ExecParams{});
  auto with = *simulator_.RunPlan(*plan, sim::ExecParams{}, reuse);
  EXPECT_EQ(without.reused_stages, 0);
  EXPECT_EQ(with.reused_stages, 1);  // 2 joins, second reuses
  EXPECT_LT(with.seconds, without.seconds);
  EXPECT_DOUBLE_EQ(with.joins[1].run.breakdown.startup_s, 0.0);
}

TEST_F(ContainerReuseTest, NoReuseAcrossDifferentResources) {
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ3);
  auto plan = *plan::BuildLeftDeep(q3, plan::JoinImpl::kSortMergeJoin);
  int i = 0;
  plan->VisitJoins([&](plan::PlanNode& j) {
    j.set_resources(ResourceConfig(4, 20 + 10 * i++));
  });
  sim::RunPlanOptions reuse;
  reuse.reuse_containers = true;
  auto run = *simulator_.RunPlan(*plan, sim::ExecParams{}, reuse);
  EXPECT_EQ(run.reused_stages, 0);
}

TEST_F(ContainerReuseTest, AnalysisFindsHarmonizationWin) {
  // Two SMJ stages with nearly-equivalent but distinct configurations:
  // promoting either to a shared configuration saves a startup at almost
  // no per-stage loss, so harmonization must win.
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ3);
  auto plan = *plan::BuildLeftDeep(q3, plan::JoinImpl::kSortMergeJoin);
  int i = 0;
  plan->VisitJoins([&](plan::PlanNode& j) {
    j.set_resources(ResourceConfig(4, 40 + i++));  // 40 vs 41 containers
  });
  Result<core::ReuseAnalysis> analysis =
      core::AnalyzeContainerReuse(simulator_, *plan);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis->harmonize_wins);
  EXPECT_LT(analysis->harmonized_seconds, analysis->per_operator_seconds);
  auto harmonized = *core::ApplyContainerReuse(simulator_, *plan);
  // All joins now share one configuration.
  std::optional<ResourceConfig> common;
  harmonized->VisitJoins([&](const plan::PlanNode& j) {
    ASSERT_TRUE(j.resources().has_value());
    if (!common.has_value()) common = *j.resources();
    EXPECT_EQ(*j.resources(), *common);
  });
}

TEST_F(ContainerReuseTest, KeepsPerOperatorWhenDemandsDiverge) {
  // One join genuinely needs a big container (broadcast), the other is a
  // massive shuffle that wants many small containers. Forcing either
  // configuration on both costs far more than two startups.
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ3);
  // customer joins orders (broadcast customer, 2.4 GB), then SMJ with
  // lineitem.
  const TableId customer = *cat_.FindTable("customer");
  const TableId orders = *cat_.FindTable("orders");
  const TableId lineitem = *cat_.FindTable("lineitem");
  auto plan = plan::PlanNode::MakeJoin(
      plan::JoinImpl::kSortMergeJoin,
      plan::PlanNode::MakeJoin(plan::JoinImpl::kBroadcastHashJoin,
                               plan::PlanNode::MakeScan(customer),
                               plan::PlanNode::MakeScan(orders)),
      plan::PlanNode::MakeScan(lineitem));
  plan->mutable_left()->set_resources(ResourceConfig(10, 4));
  plan->set_resources(ResourceConfig(1, 100));
  Result<core::ReuseAnalysis> analysis =
      core::AnalyzeContainerReuse(simulator_, *plan);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_FALSE(analysis->harmonize_wins);
  // ApplyContainerReuse leaves the per-operator assignment untouched.
  auto kept = *core::ApplyContainerReuse(simulator_, *plan);
  EXPECT_EQ(*kept->resources(), ResourceConfig(1, 100));
  EXPECT_EQ(*kept->left()->resources(), ResourceConfig(10, 4));
}

TEST_F(ContainerReuseTest, RequiresResourceAnnotations) {
  std::vector<TableId> q12 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ12);
  auto bare = *plan::BuildLeftDeep(q12, plan::JoinImpl::kSortMergeJoin);
  Result<core::ReuseAnalysis> analysis =
      core::AnalyzeContainerReuse(simulator_, *bare);
  ASSERT_FALSE(analysis.ok());
  EXPECT_TRUE(analysis.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------
// Adaptive RAQO driver

class AdaptiveTest : public ::testing::Test {
 protected:
  AdaptiveTest() : cat_(BuildSampledCatalog()) {}

  static catalog::Catalog BuildSampledCatalog() {
    catalog::Catalog cat;
    const TableId orders = *cat.AddTable({"orders_sample", 49'000'000, 110});
    const TableId lineitem = *cat.AddTable({"lineitem", 600'000'000, 130});
    RAQO_CHECK(cat.AddJoin(lineitem, orders, 1e-8).ok());
    return cat;
  }

  core::RaqoPlanner MakePlanner() {
    return core::RaqoPlanner(&cat_, Models(),
                             ClusterConditions::PaperDefault());
  }

  std::vector<TableId> Query() {
    return {*cat_.FindTable("orders_sample"), *cat_.FindTable("lineitem")};
  }

  catalog::Catalog cat_;
};

TEST_F(AdaptiveTest, SubmitInstallsAPlan) {
  core::RaqoPlanner planner = MakePlanner();
  core::AdaptiveRaqo adaptive(&planner);
  Result<const core::JointPlan*> plan = adaptive.Submit(Query());
  ASSERT_TRUE(plan.ok());
  EXPECT_GT((*plan)->cost.seconds, 0.0);
  EXPECT_TRUE(adaptive.current().plan != nullptr);
}

TEST_F(AdaptiveTest, ChangeBeforeSubmitFails) {
  core::RaqoPlanner planner = MakePlanner();
  core::AdaptiveRaqo adaptive(&planner);
  EXPECT_TRUE(adaptive.OnClusterChange(ClusterConditions::PaperDefault())
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(AdaptiveTest, MinorChangeKeepsPlanShape) {
  core::RaqoPlanner planner = MakePlanner();
  core::AdaptiveRaqo adaptive(&planner);
  ASSERT_TRUE(adaptive.Submit(Query()).ok());
  const std::string before = adaptive.current().plan->ToString();
  // Barely-changed conditions: same plan shape should survive.
  Result<core::AdaptiveRaqo::ChangeEvent> event =
      adaptive.OnClusterChange(ClusterConditions::WithMax(10, 95));
  ASSERT_TRUE(event.ok());
  EXPECT_FALSE(event->reoptimized);
  EXPECT_FALSE(event->old_plan_infeasible);
  // The shape is unchanged (resources may have been refreshed).
  auto strip = [](std::string s) {
    // Drop the resource annotations "<...>" for a shape-only comparison.
    std::string out;
    bool in_angle = false;
    for (char c : s) {
      if (c == '<') in_angle = true;
      if (!in_angle) out += c;
      if (c == '>') in_angle = false;
    }
    return out;
  };
  EXPECT_EQ(strip(adaptive.current().plan->ToString()), strip(before));
}

TEST_F(AdaptiveTest, InfeasibleShapeForcesReoptimization) {
  core::RaqoPlanner planner = MakePlanner();
  core::AdaptiveRaqo adaptive(&planner);
  ASSERT_TRUE(adaptive.Submit(Query()).ok());
  // With 10 GB containers available the planner picks the broadcast join
  // for the 5 GB orders sample under low-parallelism conditions; make
  // sure we have a BHJ plan by constraining containers first.
  Result<core::AdaptiveRaqo::ChangeEvent> busy =
      adaptive.OnClusterChange(ClusterConditions::WithMax(10, 6));
  ASSERT_TRUE(busy.ok());
  bool has_bhj = false;
  adaptive.current().plan->VisitJoins([&](const plan::PlanNode& j) {
    if (j.impl() == plan::JoinImpl::kBroadcastHashJoin) has_bhj = true;
  });
  ASSERT_TRUE(has_bhj) << adaptive.current().plan->ToString();
  // Now big containers vanish: the BHJ shape cannot run at all, so the
  // driver must re-optimize to a shuffle plan.
  Result<core::AdaptiveRaqo::ChangeEvent> outage =
      adaptive.OnClusterChange(ClusterConditions::WithMax(3, 100));
  ASSERT_TRUE(outage.ok());
  EXPECT_TRUE(outage->old_plan_infeasible);
  EXPECT_TRUE(outage->reoptimized);
  adaptive.current().plan->VisitJoins([&](const plan::PlanNode& j) {
    EXPECT_EQ(j.impl(), plan::JoinImpl::kSortMergeJoin);
  });
}

}  // namespace
}  // namespace raqo
