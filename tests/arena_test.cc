// Arena bump allocator: alignment, accounting, reset/reuse, and the
// allocator adapter standard containers draw scratch through. The DP
// enumerators route their per-query memos through these paths, so this
// file is also what ASan runs to certify the arena's pointer hygiene
// (no overlap, no use of recycled ranges before Reset).

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <set>
#include <vector>

#include "common/rng.h"

namespace raqo {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> chunks;
  Rng rng(42);
  size_t requested = 0;
  for (int i = 0; i < 500; ++i) {
    const size_t bytes = static_cast<size_t>(rng.UniformInt(1, 700));
    char* p = static_cast<char*>(arena.Allocate(bytes, 1));
    ASSERT_NE(p, nullptr);
    // Stamp the whole chunk; any overlap with a prior chunk would
    // corrupt its stamp below.
    std::memset(p, static_cast<int>(i % 251), bytes);
    chunks.emplace_back(p, bytes);
    requested += bytes;
  }
  EXPECT_EQ(arena.bytes_allocated(), requested);
  EXPECT_GE(arena.bytes_reserved(), requested);
  for (int i = 0; i < static_cast<int>(chunks.size()); ++i) {
    for (size_t b = 0; b < chunks[i].second; ++b) {
      ASSERT_EQ(chunks[i].first[b], static_cast<char>(i % 251))
          << "allocation " << i << " was overwritten";
    }
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  Rng rng(7);
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                       Arena::kMaxAlign}) {
    for (int i = 0; i < 50; ++i) {
      void* p = arena.Allocate(static_cast<size_t>(rng.UniformInt(1, 33)),
                               align);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align;
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreUniqueValidPointers) {
  Arena arena;
  std::set<void*> seen;
  for (int i = 0; i < 64; ++i) {
    void* p = arena.Allocate(0);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "zero-byte pointers must differ";
  }
}

TEST(ArenaTest, OversizedRequestsGetTheirOwnBlock) {
  Arena arena(/*min_block_bytes=*/128);
  // Far beyond the block size: must still succeed, in one contiguous run.
  const size_t big = 1 << 20;
  char* p = static_cast<char*>(arena.Allocate(big));
  std::memset(p, 0xab, big);
  EXPECT_EQ(p[0], static_cast<char>(0xab));
  EXPECT_EQ(p[big - 1], static_cast<char>(0xab));
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(ArenaTest, ResetRetainsCapacityAndStopsGrowth) {
  Arena arena;
  auto churn = [&arena] {
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      arena.Allocate(static_cast<size_t>(rng.UniformInt(8, 2048)));
    }
  };
  churn();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  const size_t reserved_after_warmup = arena.bytes_reserved();
  EXPECT_GT(reserved_after_warmup, 0u);
  // The steady state the planner relies on: repeating a same-shaped
  // query against a reset arena allocates no new blocks... eventually.
  // One extra round may grow (Reset keeps only the largest block), so
  // warm up twice before holding the reservation fixed.
  churn();
  arena.Reset();
  const size_t steady = arena.bytes_reserved();
  for (int round = 0; round < 5; ++round) {
    churn();
    arena.Reset();
    EXPECT_EQ(arena.bytes_reserved(), steady)
        << "arena kept growing across identical query rounds";
  }
}

TEST(ArenaTest, ReusedMemoryIsCleanlyRewritable) {
  Arena arena;
  char* first = static_cast<char*>(arena.Allocate(4096));
  std::memset(first, 1, 4096);
  arena.Reset();
  // After Reset the same storage may be handed out again; writing it
  // must be valid (ASan would flag any bookkeeping error here).
  char* second = static_cast<char*>(arena.Allocate(4096));
  std::memset(second, 2, 4096);
  EXPECT_EQ(second[0], 2);
  EXPECT_EQ(second[4095], 2);
}

TEST(ArenaTest, ArenaVectorMatchesStdVector) {
  Arena arena;
  ArenaVector<int64_t> v{ArenaAllocator<int64_t>(&arena)};
  std::vector<int64_t> reference;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const int64_t x = static_cast<int64_t>(rng.NextUint64());
    v.push_back(x);
    reference.push_back(x);
  }
  ASSERT_EQ(v.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(v[i], reference[i]);
  }
  // Geometric growth left old buffers in the arena — that is the
  // documented trade; the arena must have reserved at least the final
  // buffer.
  EXPECT_GE(arena.bytes_reserved(), v.capacity() * sizeof(int64_t));
}

TEST(ArenaTest, ArenaVectorSizedUpFrontAllocatesOnce) {
  Arena arena;
  ArenaVector<uint32_t> v(1024, 0u, ArenaAllocator<uint32_t>(&arena));
  const size_t after_construction = arena.bytes_allocated();
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint32_t>(i);
  EXPECT_EQ(arena.bytes_allocated(), after_construction)
      << "writes into a pre-sized vector must not allocate";
}

TEST(ArenaTest, AllocatorEqualityFollowsArenaIdentity) {
  Arena a;
  Arena b;
  ArenaAllocator<int> aa(&a);
  ArenaAllocator<double> ad(&a);  // rebound type, same arena
  ArenaAllocator<int> ba(&b);
  EXPECT_TRUE(aa == ad);
  EXPECT_TRUE(aa != ba);
  // Converting construction preserves the arena.
  ArenaAllocator<double> converted(aa);
  EXPECT_EQ(converted.arena(), &a);
}

TEST(ArenaTest, WorksWithNodeBasedContainers) {
  // deque rebinds the allocator to internal node types; the adapter must
  // survive that.
  Arena arena;
  std::deque<int, ArenaAllocator<int>> d{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 500; ++i) d.push_back(i);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(d[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace raqo
