#include <gtest/gtest.h>

#include <cmath>

#include "catalog/table.h"
#include "catalog/tpch.h"
#include "common/regression.h"
#include "plan/plan_builder.h"
#include "sim/engine_profile.h"
#include "sim/exec_model.h"
#include "sim/profile_runner.h"
#include "sim/simulator.h"

namespace raqo::sim {
namespace {

using catalog::GbToBytes;
using plan::JoinImpl;

ExecParams Params(double cs, int nc, int nr = 0) {
  ExecParams p;
  p.container_size_gb = cs;
  p.num_containers = nc;
  p.num_reducers = nr;
  return p;
}

TEST(ExecModelTest, RejectsBadParams) {
  const EngineProfile hive = EngineProfile::Hive();
  EXPECT_FALSE(SimulateJoin(hive, JoinImpl::kSortMergeJoin, 1, 1,
                            Params(0, 10))
                   .ok());
  EXPECT_FALSE(SimulateJoin(hive, JoinImpl::kSortMergeJoin, 1, 1,
                            Params(4, 0))
                   .ok());
  EXPECT_FALSE(SimulateJoin(hive, JoinImpl::kSortMergeJoin, -1, 1,
                            Params(4, 10))
                   .ok());
  ExecParams p = Params(4, 10);
  p.num_reducers = -1;
  EXPECT_FALSE(SimulateJoin(hive, JoinImpl::kSortMergeJoin, 1, 1, p).ok());
}

TEST(ExecModelTest, AutoReducerRule) {
  const EngineProfile hive = EngineProfile::Hive();
  EXPECT_EQ(AutoReducerCount(hive, 100.0), 1);
  EXPECT_EQ(AutoReducerCount(hive, 256.0), 1);
  EXPECT_EQ(AutoReducerCount(hive, 257.0), 2);
  EXPECT_EQ(AutoReducerCount(hive, 1e9), hive.max_auto_reducers);
}

TEST(ExecModelTest, BhjOutOfMemoryBelowCapacity) {
  const EngineProfile hive = EngineProfile::Hive();
  // 5.1 GB build side: paper reports OOM below 5 GB containers with
  // default Hive settings.
  const double small = GbToBytes(5.1);
  const double large = GbToBytes(77.0);
  Result<JoinRunResult> at4 =
      SimulateJoin(hive, JoinImpl::kBroadcastHashJoin, small, large,
                   Params(4, 10));
  ASSERT_FALSE(at4.ok());
  EXPECT_TRUE(at4.status().IsResourceExhausted());
  EXPECT_TRUE(SimulateJoin(hive, JoinImpl::kBroadcastHashJoin, small, large,
                           Params(5, 10))
                  .ok());
}

TEST(ExecModelTest, SmjAlwaysFeasible) {
  const EngineProfile hive = EngineProfile::Hive();
  for (double cs : {1.0, 2.0, 4.0, 10.0}) {
    EXPECT_TRUE(SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                             GbToBytes(20), GbToBytes(77), Params(cs, 10))
                    .ok());
  }
}

TEST(ExecModelTest, InputOrderIrrelevant) {
  const EngineProfile hive = EngineProfile::Hive();
  const auto a = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                              GbToBytes(2), GbToBytes(40), Params(4, 10));
  const auto b = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                              GbToBytes(40), GbToBytes(2), Params(4, 10));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->seconds, b->seconds);
}

TEST(ExecModelTest, SmjScalesWithParallelism) {
  const EngineProfile hive = EngineProfile::Hive();
  double prev = 1e18;
  for (int nc : {5, 10, 20, 40}) {
    const auto run = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                  GbToBytes(5), GbToBytes(77),
                                  Params(3, nc));
    ASSERT_TRUE(run.ok());
    EXPECT_LT(run->seconds, prev) << nc;
    prev = run->seconds;
  }
}

TEST(ExecModelTest, SmjNearlyFlatInContainerSize) {
  // Figure 3(a): SMJ performance remains relatively stable across
  // container sizes.
  const EngineProfile hive = EngineProfile::Hive();
  const auto at4 = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                GbToBytes(5.1), GbToBytes(77),
                                Params(4, 10));
  const auto at10 = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                 GbToBytes(5.1), GbToBytes(77),
                                 Params(10, 10));
  ASSERT_TRUE(at4.ok());
  ASSERT_TRUE(at10.ok());
  EXPECT_LT(std::abs(at4->seconds - at10->seconds) / at4->seconds, 0.25);
}

TEST(ExecModelTest, BhjImprovesWithContainerSize) {
  // Figure 3(a): BHJ benefits from larger memory.
  const EngineProfile hive = EngineProfile::Hive();
  const auto at5 = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                GbToBytes(5.1), GbToBytes(77),
                                Params(5, 10));
  const auto at10 = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                 GbToBytes(5.1), GbToBytes(77),
                                 Params(10, 10));
  ASSERT_TRUE(at5.ok());
  ASSERT_TRUE(at10.ok());
  EXPECT_GT(at5->seconds, at10->seconds * 1.5);
}

TEST(ExecModelTest, ContainerSizeCrossoverExists) {
  // Figure 3(a): SMJ wins for small containers, BHJ for big ones, with a
  // switch point in between.
  const EngineProfile hive = EngineProfile::Hive();
  const double small = GbToBytes(5.1);
  const double large = GbToBytes(77.0);
  const auto smj5 = SimulateJoin(hive, JoinImpl::kSortMergeJoin, small,
                                 large, Params(5, 10));
  const auto bhj5 = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin, small,
                                 large, Params(5, 10));
  const auto smj10 = SimulateJoin(hive, JoinImpl::kSortMergeJoin, small,
                                  large, Params(10, 10));
  const auto bhj10 = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin, small,
                                  large, Params(10, 10));
  ASSERT_TRUE(smj5.ok() && bhj5.ok() && smj10.ok() && bhj10.ok());
  EXPECT_LT(smj5->seconds, bhj5->seconds);    // SMJ wins at 5 GB
  EXPECT_GT(smj10->seconds, bhj10->seconds);  // BHJ wins at 10 GB
}

TEST(ExecModelTest, ParallelismCrossoverExists) {
  // Figure 3(b): BHJ wins at low container counts, SMJ at high ones.
  const EngineProfile hive = EngineProfile::Hive();
  const double small = GbToBytes(3.4);
  const double large = GbToBytes(77.0);
  const auto smj_few = SimulateJoin(hive, JoinImpl::kSortMergeJoin, small,
                                    large, Params(3, 5));
  const auto bhj_few = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                    small, large, Params(3, 5));
  const auto smj_many = SimulateJoin(hive, JoinImpl::kSortMergeJoin, small,
                                     large, Params(3, 40));
  const auto bhj_many = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                     small, large, Params(3, 40));
  ASSERT_TRUE(smj_few.ok() && bhj_few.ok() && smj_many.ok() &&
              bhj_many.ok());
  EXPECT_GT(smj_few->seconds, bhj_few->seconds);
  EXPECT_LT(smj_many->seconds, bhj_many->seconds);
}

TEST(ExecModelTest, PressureFactorRisesNearCapacity) {
  const EngineProfile hive = EngineProfile::Hive();
  const auto relaxed = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                    GbToBytes(1), GbToBytes(77),
                                    Params(9, 10));
  const auto pressured = SimulateJoin(hive, JoinImpl::kBroadcastHashJoin,
                                      GbToBytes(9), GbToBytes(77),
                                      Params(9, 10));
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(pressured.ok());
  EXPECT_LT(relaxed->pressure_factor, 1.1);
  EXPECT_GT(pressured->pressure_factor, 1.5);
  EXPECT_LE(pressured->pressure_factor, 1.0 + hive.pressure_amplitude);
}

TEST(ExecModelTest, FewReducersLimitReduceParallelism) {
  const EngineProfile hive = EngineProfile::Hive();
  const auto few = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                GbToBytes(5), GbToBytes(20),
                                Params(3, 40, 2));
  const auto many = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                 GbToBytes(5), GbToBytes(20),
                                 Params(3, 40, 80));
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_GT(few->seconds, many->seconds);
  EXPECT_EQ(few->reducers, 2);
  EXPECT_EQ(many->reducers, 80);
}

TEST(ExecModelTest, SpillPenaltyShrinksWithMemory) {
  // One fat reducer partition: small containers must spill, large ones
  // sort in memory.
  const EngineProfile hive = EngineProfile::Hive();
  const auto small_mem = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                      GbToBytes(10), GbToBytes(10),
                                      Params(1, 10, 4));
  const auto big_mem = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                    GbToBytes(10), GbToBytes(10),
                                    Params(10, 10, 4));
  ASSERT_TRUE(small_mem.ok());
  ASSERT_TRUE(big_mem.ok());
  EXPECT_GT(small_mem->breakdown.spill_s, 0.0);
  EXPECT_GT(small_mem->seconds, big_mem->seconds);
}

TEST(ExecModelTest, TorrentBroadcastScalesBetter) {
  const EngineProfile hive = EngineProfile::Hive();
  const EngineProfile spark = EngineProfile::Spark();
  auto bcast_growth = [](const EngineProfile& p) {
    ExecParams few = Params(10, 5);
    ExecParams many = Params(10, 50);
    const auto a = SimulateJoin(p, JoinImpl::kBroadcastHashJoin,
                                GbToBytes(0.05), GbToBytes(20), few);
    const auto b = SimulateJoin(p, JoinImpl::kBroadcastHashJoin,
                                GbToBytes(0.05), GbToBytes(20), many);
    return b->breakdown.broadcast_s / a->breakdown.broadcast_s;
  };
  // Hive broadcast grows ~linearly in nc, Spark's torrent ~log.
  EXPECT_GT(bcast_growth(hive), 5.0);
  EXPECT_LT(bcast_growth(spark), 3.0);
}

TEST(ExecModelTest, SparkSwitchPointsAreMbScale) {
  // Figure 9(b): Spark's BHJ capacity is per-task, so OOM hits at
  // hundreds of MB, not GB.
  const EngineProfile spark = EngineProfile::Spark();
  EXPECT_FALSE(SimulateJoin(spark, JoinImpl::kBroadcastHashJoin,
                            GbToBytes(1.0), GbToBytes(10), Params(3, 10))
                   .ok());
  EXPECT_TRUE(SimulateJoin(spark, JoinImpl::kBroadcastHashJoin,
                           GbToBytes(0.3), GbToBytes(10), Params(3, 10))
                  .ok());
}

// Property sweep: for every resource configuration, simulated times are
// finite and positive, and more containers never hurt SMJ.
struct GridPoint {
  double cs;
  int nc;
};

class ExecModelGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ExecModelGridTest, TimesPositiveAndFinite) {
  const EngineProfile hive = EngineProfile::Hive();
  const GridPoint p = GetParam();
  for (JoinImpl impl :
       {JoinImpl::kSortMergeJoin, JoinImpl::kBroadcastHashJoin}) {
    Result<JoinRunResult> run =
        SimulateJoin(hive, impl, GbToBytes(1.0), GbToBytes(30.0),
                     Params(p.cs, p.nc));
    if (!run.ok()) {
      EXPECT_TRUE(run.status().IsResourceExhausted());
      continue;
    }
    EXPECT_GT(run->seconds, 0.0);
    EXPECT_TRUE(std::isfinite(run->seconds));
    EXPECT_NEAR(run->seconds, run->breakdown.Total(), 1e-9);
  }
}

TEST_P(ExecModelGridTest, SmjMonotoneInContainers) {
  // More containers never hurt SMJ in the moderate-parallelism regime.
  // (Beyond ~100 containers, per-container launch costs legitimately
  // dominate a 32 GB join, so the sweep stops there.)
  const EngineProfile hive = EngineProfile::Hive();
  const GridPoint p = GetParam();
  if (p.nc * 2 > 100) return;
  const auto base = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                 GbToBytes(2.0), GbToBytes(30.0),
                                 Params(p.cs, p.nc));
  const auto more = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                 GbToBytes(2.0), GbToBytes(30.0),
                                 Params(p.cs, p.nc * 2));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(more.ok());
  EXPECT_LE(more->seconds, base->seconds * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    ResourceGrid, ExecModelGridTest,
    ::testing::Values(GridPoint{1, 5}, GridPoint{2, 10}, GridPoint{3, 20},
                      GridPoint{5, 10}, GridPoint{7, 40}, GridPoint{10, 5},
                      GridPoint{10, 50}, GridPoint{4, 100}));

TEST(SimulatorTest, RunPlanSumsJoins) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(10.0);
  ExecutionSimulator sim(EngineProfile::Hive(), &cat);
  std::vector<catalog::TableId> q3 =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kQ3);
  auto plan = *plan::BuildLeftDeep(q3, JoinImpl::kSortMergeJoin);
  Result<SimPlanResult> run = sim.RunPlan(*plan, Params(4, 10));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->joins.size(), 2u);
  double sum = 0;
  for (const auto& j : run->joins) sum += j.run.seconds;
  EXPECT_NEAR(run->seconds, sum, 1e-9);
  EXPECT_GT(run->tb_seconds, 0.0);
  EXPECT_GT(run->dollars, 0.0);
}

TEST(SimulatorTest, PerNodeResourcesRespected) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(10.0);
  ExecutionSimulator sim(EngineProfile::Hive(), &cat);
  std::vector<catalog::TableId> q12 =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kQ12);
  auto plan = *plan::BuildLeftDeep(q12, JoinImpl::kSortMergeJoin);
  plan->set_resources(resource::ResourceConfig(8, 40));
  Result<SimPlanResult> run = sim.RunPlan(*plan, Params(1, 1));
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->joins.size(), 1u);
  EXPECT_DOUBLE_EQ(run->joins[0].params.container_size_gb, 8.0);
  EXPECT_EQ(run->joins[0].params.num_containers, 40);
}

TEST(SimulatorTest, OomPropagates) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  ExecutionSimulator sim(EngineProfile::Hive(), &cat);
  std::vector<catalog::TableId> q12 =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kQ12);
  // orders at SF100 (~15 GB) cannot be broadcast into 2 GB containers.
  auto plan = *plan::BuildLeftDeep(q12, JoinImpl::kBroadcastHashJoin);
  Result<SimPlanResult> run = sim.RunPlan(*plan, Params(2, 10));
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsResourceExhausted());
}

TEST(ProfileRunnerTest, CollectsAndSkipsInfeasible) {
  const EngineProfile hive = EngineProfile::Hive();
  ProfileGrid grid;
  grid.smaller_gb = {1.0, 8.0};
  grid.larger_gb = {77.0};
  grid.container_gb = {2.0, 10.0};
  grid.containers = {10};
  const auto smj =
      CollectProfileSamples(hive, JoinImpl::kSortMergeJoin, grid);
  const auto bhj =
      CollectProfileSamples(hive, JoinImpl::kBroadcastHashJoin, grid);
  EXPECT_EQ(smj.size(), 4u);       // SMJ always feasible
  EXPECT_LT(bhj.size(), 4u);       // 8 GB build does not fit 2 GB containers
  EXPECT_GE(bhj.size(), 2u);
}

TEST(ProfileRunnerTest, TrainedModelsTrackSimulator) {
  const EngineProfile hive = EngineProfile::Hive();
  Result<cost::JoinCostModels> models = TrainModelsFromSimulator(hive);
  ASSERT_TRUE(models.ok());
  // The fitted model should reproduce a held-in grid point reasonably.
  const auto truth = SimulateJoin(hive, JoinImpl::kSortMergeJoin,
                                  GbToBytes(3.0), GbToBytes(77.0),
                                  Params(4, 20));
  ASSERT_TRUE(truth.ok());
  cost::JoinFeatures f{3.0, 77.0, 4.0, 20.0};
  const double pred = models->smj.PredictSeconds(f);
  EXPECT_NEAR(pred, truth->seconds, truth->seconds * 0.5);
  // And preserve the BHJ-prefers-memory property.
  cost::JoinFeatures small_mem{4.0, 77.0, 5.0, 10.0};
  cost::JoinFeatures big_mem{4.0, 77.0, 10.0, 10.0};
  EXPECT_GT(models->bhj.PredictSeconds(small_mem),
            models->bhj.PredictSeconds(big_mem));
}

}  // namespace
}  // namespace raqo::sim
