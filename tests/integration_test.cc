#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "plan/plan_builder.h"
#include "rules/rule_based.h"
#include "sim/profile_runner.h"
#include "sim/simulator.h"

namespace raqo {
namespace {

using catalog::TableId;
using catalog::TpchQuery;

/// End-to-end: plans produced by RAQO are executed on the simulator (the
/// "real" system in this reproduction) and compared against baselines.
class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest()
      : cat_(catalog::BuildTpchCatalog(100.0)),
        profile_(sim::EngineProfile::Hive()),
        models_(*sim::TrainModelsFromSimulator(profile_)),
        simulator_(profile_, &cat_) {}

  /// Simulated execution time of a joint plan (per-node resources).
  double Execute(const plan::PlanNode& plan) {
    sim::ExecParams defaults;
    defaults.container_size_gb = 4.0;
    defaults.num_containers = 10;
    Result<sim::SimPlanResult> run = simulator_.RunPlan(plan, defaults);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run.ok() ? run->seconds : 1e18;
  }

  catalog::Catalog cat_;
  sim::EngineProfile profile_;
  cost::JoinCostModels models_;
  sim::ExecutionSimulator simulator_;
};

TEST_F(EndToEndTest, JointPlanExecutesFasterThanDefaultRulePlan) {
  // The motivating experiment (Figure 2): RAQO's joint query/resource
  // plan versus the default-optimizer plan (10 MB rule, fixed default
  // resources) on the single-join query.
  std::vector<TableId> q12 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ12);

  core::RaqoPlanner planner(&cat_, models_,
                            resource::ClusterConditions::PaperDefault());
  Result<core::JointPlan> joint = planner.Plan(q12);
  ASSERT_TRUE(joint.ok());

  // Default plan: the 10 MB rule picks SMJ for a 15 GB orders table and
  // runs on whatever default the user guessed.
  rules::DefaultRulePolicy default_rule;
  const double orders_gb = cat_.table(*cat_.FindTable("orders")).total_gb();
  const plan::JoinImpl default_impl = default_rule.Choose(
      orders_gb, resource::ResourceConfig(4, 10), 0);
  EXPECT_EQ(default_impl, plan::JoinImpl::kSortMergeJoin);
  auto default_plan = *plan::BuildLeftDeep(q12, default_impl);

  const double joint_seconds = Execute(*joint->plan);
  const double default_seconds = Execute(*default_plan);
  EXPECT_LE(joint_seconds, default_seconds * 1.05);
}

TEST_F(EndToEndTest, CostModelRanksPlansLikeTheSimulator) {
  // For pairs of plans whose simulated times differ substantially, the
  // learned cost model must rank them the same way (that is all a
  // planner needs).
  std::vector<TableId> q2 = *catalog::TpchQueryTables(cat_, TpchQuery::kQ2);
  plan::CardinalityEstimator est(&cat_);

  auto evaluate_model = [&](const plan::PlanNode& p) {
    double total = 0.0;
    p.VisitJoins([&](const plan::PlanNode& j) {
      const plan::JoinInputStats stats = est.JoinStats(j);
      cost::JoinFeatures f;
      f.smaller_gb = stats.smaller_gb();
      f.larger_gb = stats.larger_gb();
      f.container_size_gb = 4.0;
      f.num_containers = 10.0;
      total += models_.ForImpl(j.impl()).PredictSeconds(f);
    });
    return total;
  };

  Rng rng(42);
  int comparable = 0;
  int agreements = 0;
  for (int trial = 0; trial < 80; ++trial) {
    auto a = *plan::BuildRandomPlan(cat_, q2, rng);
    auto b = *plan::BuildRandomPlan(cat_, q2, rng);
    sim::ExecParams params;
    params.container_size_gb = 4.0;
    params.num_containers = 10;
    Result<sim::SimPlanResult> ra = simulator_.RunPlan(*a, params);
    Result<sim::SimPlanResult> rb = simulator_.RunPlan(*b, params);
    if (!ra.ok() || !rb.ok()) continue;  // OOM plans do not count
    if (std::max(ra->seconds, rb->seconds) <
        1.3 * std::min(ra->seconds, rb->seconds)) {
      continue;  // too close to call
    }
    ++comparable;
    const bool sim_prefers_a = ra->seconds < rb->seconds;
    const bool model_prefers_a = evaluate_model(*a) < evaluate_model(*b);
    if (sim_prefers_a == model_prefers_a) ++agreements;
  }
  ASSERT_GT(comparable, 5);
  EXPECT_GE(static_cast<double>(agreements) / comparable, 0.8);
}

TEST_F(EndToEndTest, RuleBasedRaqoBeatsDefaultRuleAcrossResources) {
  // Section V: traversing the RAQO decision tree with the current
  // resources picks join implementations that execute no slower than the
  // default 10 MB rule, across a sweep of resource configurations.
  Result<rules::DecisionTreePolicy> policy =
      rules::TrainRaqoPolicy(profile_);
  ASSERT_TRUE(policy.ok());
  rules::DefaultRulePolicy default_rule;

  // Join: sampled orders (varying) x lineitem, as in Section III.
  const double large_gb = 77.0;
  int raqo_wins = 0;
  int ties = 0;
  int total = 0;
  for (double ss : {0.5, 2.0, 4.0, 6.0}) {
    for (double cs : {3.0, 6.0, 9.0}) {
      for (int nc : {10, 40}) {
        sim::ExecParams params;
        params.container_size_gb = cs;
        params.num_containers = nc;
        const resource::ResourceConfig res(cs, nc);
        auto run_with = [&](plan::JoinImpl impl) {
          Result<sim::JoinRunResult> r = simulator_.RunJoin(
              impl, catalog::GbToBytes(ss), catalog::GbToBytes(large_gb),
              params);
          return r.ok() ? r->seconds : 1e18;
        };
        const double raqo_s = run_with(policy->Choose(ss, res, 0));
        const double rule_s = run_with(default_rule.Choose(ss, res, 0));
        ++total;
        if (raqo_s < rule_s * 0.999) {
          ++raqo_wins;
        } else if (raqo_s <= rule_s * 1.05) {
          ++ties;
        }
      }
    }
  }
  // RAQO must never lose meaningfully, and must win a good share.
  EXPECT_EQ(raqo_wins + ties, total);
  EXPECT_GE(raqo_wins, total / 4);
}

TEST_F(EndToEndTest, ResourcePlannedJoinNearGridOptimum) {
  // For a single SMJ, compare the hill-climbed resource choice against
  // the simulator's true optimum over the whole grid: the chosen
  // configuration must be close in *simulated* time (the cost model is
  // only an approximation of the simulator).
  core::RaqoCostEvaluator eval(models_,
                               resource::ClusterConditions::PaperDefault());
  optimizer::JoinContext ctx;
  ctx.impl = plan::JoinImpl::kSortMergeJoin;
  ctx.left_bytes = catalog::GbToBytes(5.0);
  ctx.right_bytes = catalog::GbToBytes(77.0);
  Result<optimizer::OperatorCost> planned = eval.CostJoin(ctx);
  ASSERT_TRUE(planned.ok());

  double best_sim = 1e18;
  double chosen_sim = 0.0;
  resource::ClusterConditions::PaperDefault().ForEachConfig(
      [&](const resource::ResourceConfig& config) {
        sim::ExecParams params;
        params.container_size_gb = config.container_size_gb();
        params.num_containers =
            static_cast<int>(config.num_containers());
        Result<sim::JoinRunResult> run = simulator_.RunJoin(
            ctx.impl, ctx.left_bytes, ctx.right_bytes, params);
        if (run.ok()) {
          best_sim = std::min(best_sim, run->seconds);
          if (config == *planned->resources) chosen_sim = run->seconds;
        }
        return true;
      });
  ASSERT_GT(chosen_sim, 0.0);
  EXPECT_LE(chosen_sim, best_sim * 1.6);
}

}  // namespace
}  // namespace raqo
