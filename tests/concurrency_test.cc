// Concurrency invariants of the planning service layer: the thread
// pool, the sharded thread-safe resource-plan cache, the parallel
// brute-force resource planner, and the concurrent workload runner.
// Every property here must hold under any thread interleaving; run the
// suite under -DRAQO_SANITIZE=thread to let TSan check the data-race
// side of that claim (see docs/CONCURRENCY.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <filesystem>
#endif

#include "catalog/random_schema.h"
#include "catalog/tpch.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/concurrent_workload_runner.h"
#include "core/plan_cache.h"
#include "core/resource_planner.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using catalog::TableId;
using catalog::TpchQuery;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(1000, [&](int64_t begin, int64_t end) {
    ASSERT_LE(begin, end);
    for (int64_t i = begin; i < end; ++i) {
      visits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  // Degenerate sizes.
  pool.ParallelFor(0, [](int64_t, int64_t) { FAIL(); });
  std::atomic<int> ones{0};
  pool.ParallelFor(1, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    ones.fetch_add(1);
  });
  EXPECT_EQ(ones.load(), 1);
}

TEST(ThreadPoolTest, DrainsPendingTasksOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining the queue
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ParallelForRethrowsTheFirstChunkFailure) {
  ThreadPool pool(3);
  // Every other chunk still runs; the caller sees one of the failures
  // rethrown (the first to be recorded) instead of a hang or a crash.
  std::atomic<int64_t> covered{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int64_t begin, int64_t end) {
                         covered.fetch_add(end - begin);
                         if (begin == 0) throw std::runtime_error("chunk 0");
                       }),
      std::runtime_error);
  EXPECT_EQ(covered.load(), 100);
  // The pool survives a throwing job and keeps serving.
  std::atomic<int> after{0};
  pool.ParallelFor(10, [&](int64_t begin, int64_t end) {
    after.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, ParallelForReusesThePoolAcrossManySmallJobs) {
  // The completion-latch fan-out must stay correct under rapid reuse:
  // many back-to-back ParallelFor calls on one pool, each fully covering
  // its range exactly once.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    const int64_t n = 1 + (round % 17);
    pool.ParallelFor(n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
    });
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// Sharded resource-plan index (satellite property (c)): concurrent
// writers and readers never lose an inserted key, and FindNeighbors
// stays sorted ascending.

class ShardedIndexTest
    : public ::testing::TestWithParam<core::CacheIndexKind> {};

INSTANTIATE_TEST_SUITE_P(Layouts, ShardedIndexTest,
                         ::testing::Values(core::CacheIndexKind::kSortedArray,
                                           core::CacheIndexKind::kCsbTree));

TEST_P(ShardedIndexTest, MatchesUnshardedSequentially) {
  core::ShardedResourcePlanIndex sharded(GetParam(), 8);
  core::SortedArrayIndex reference;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    core::CachedResourcePlan plan;
    plan.key_gb = std::round(rng.Uniform(0.0, 50.0) * 8.0) / 8.0;
    plan.cost = rng.Uniform(1.0, 100.0);
    plan.config = resource::ResourceConfig(rng.Uniform(1, 10),
                                           rng.Uniform(1, 100));
    sharded.Insert(plan);
    reference.Insert(plan);
  }
  EXPECT_EQ(sharded.size(), reference.size());
  for (double key = 0.0; key <= 50.0; key += 0.37) {
    const auto a = sharded.FindExact(key);
    const auto b = reference.FindExact(key);
    ASSERT_EQ(a.has_value(), b.has_value()) << key;
    if (a) {
      EXPECT_EQ(a->key_gb, b->key_gb);
    }
    const auto na = sharded.FindNeighbors(key, 2.0);
    const auto nb = reference.FindNeighbors(key, 2.0);
    ASSERT_EQ(na.size(), nb.size()) << key;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].key_gb, nb[i].key_gb);
    }
  }
}

TEST_P(ShardedIndexTest, ConcurrentWritersAndReadersLoseNothing) {
  core::ShardedResourcePlanIndex index(GetParam(), 8);
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kKeysPerWriter = 400;
  // Disjoint per-writer key spaces so the expected final contents are
  // exact regardless of interleaving.
  auto key_of = [](int writer, int i) {
    return static_cast<double>(writer) * 1000.0 + static_cast<double>(i);
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        core::CachedResourcePlan plan;
        plan.key_gb = key_of(w, i);
        plan.cost = static_cast<double>(i);
        index.Insert(plan);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 99);
      while (!stop.load(std::memory_order_acquire)) {
        const double center = rng.Uniform(0.0, 4000.0);
        const std::vector<core::CachedResourcePlan> neighbors =
            index.FindNeighbors(center, 50.0);
        // Results are sorted ascending and inside the window, always.
        for (size_t i = 0; i < neighbors.size(); ++i) {
          EXPECT_LE(std::fabs(neighbors[i].key_gb - center), 50.0);
          if (i > 0) {
            EXPECT_LT(neighbors[i - 1].key_gb, neighbors[i].key_gb);
          }
        }
        // Any key already observed stays observable (no lost inserts).
        if (!neighbors.empty()) {
          EXPECT_TRUE(index.FindExact(neighbors[0].key_gb).has_value());
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Every inserted key is present afterwards.
  EXPECT_EQ(index.size(), static_cast<size_t>(kWriters * kKeysPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      ASSERT_TRUE(index.FindExact(key_of(w, i)).has_value())
          << "lost key from writer " << w << " #" << i;
    }
  }
}

// ---------------------------------------------------------------------
// Thread-safe cache: atomic hit/miss counters account for every lookup.

TEST(ConcurrentCacheTest, StatsAccountForEveryLookup) {
  core::ResourcePlanCache cache(core::CacheLookupMode::kExact, 0.0,
                                core::CacheIndexKind::kSortedArray,
                                /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const double key = std::floor(rng.Uniform(0.0, 100.0));
        if (rng.Bernoulli(0.5)) {
          core::CachedResourcePlan plan;
          plan.key_gb = key;
          cache.Insert("smj", plan);
        } else {
          (void)cache.Lookup("smj", key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const core::CacheStats stats = cache.stats();
  // Every lookup was either a hit or a miss; none lost to racing updates.
  int64_t lookups = 0;
  {
    // Re-derive the exact per-thread op split (same seeds, same rng use).
    for (int t = 0; t < kThreads; ++t) {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        (void)std::floor(rng.Uniform(0.0, 100.0));
        if (!rng.Bernoulli(0.5)) ++lookups;
      }
    }
  }
  EXPECT_EQ(stats.hits + stats.misses, lookups);
  EXPECT_GT(stats.hits, 0);
  EXPECT_LE(cache.size(), 100u);
}

TEST(ConcurrentCacheTest, ExactModeGuardsTheFullDataCharacteristic) {
  // The resource optimum depends on both join inputs; an exact-mode hit
  // for the right smaller size but the wrong larger size would let cache
  // population order leak into planning decisions. Entries for the same
  // smaller size but different larger sizes coexist instead of
  // overwriting each other.
  core::ResourcePlanCache cache(core::CacheLookupMode::kExact, 0.0);
  core::CachedResourcePlan plan;
  plan.key_gb = 2.0;
  plan.larger_gb = 10.0;
  plan.cost = 1.0;
  cache.Insert("smj", plan);
  plan.larger_gb = 20.0;
  plan.cost = 2.0;
  cache.Insert("smj", plan);
  EXPECT_EQ(cache.size(), 2u);  // distinct pairs did not overwrite

  const auto first = cache.Lookup("smj", 2.0, 10.0);
  const auto second = cache.Lookup("smj", 2.0, 20.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->cost, 1.0);
  EXPECT_EQ(second->cost, 2.0);
  EXPECT_EQ(first->key_gb, 2.0);  // caller-facing key is restored
  EXPECT_FALSE(cache.Lookup("smj", 2.0, 11.0).has_value());

  // Guard-less exact usage (no larger size on either side) keeps the
  // paper's original layout.
  core::CachedResourcePlan bare;
  bare.key_gb = 5.0;
  cache.Insert("smj", bare);
  EXPECT_TRUE(cache.Lookup("smj", 5.0).has_value());

  const core::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
}

// ---------------------------------------------------------------------
// Parallel brute force (satellite property (b)): identical optimum and
// an exact rp * rc exploration count.

TEST(ParallelBruteForceTest, MatchesSequentialBruteForceExactly) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const double max_cs = rng.Uniform(2.0, 16.0);
    const double max_nc = static_cast<double>(rng.UniformInt(2, 300));
    const double step_cs = rng.Uniform(0.5, 2.0);
    const double step_nc = static_cast<double>(rng.UniformInt(1, 5));
    const resource::ClusterConditions cluster =
        *resource::ClusterConditions::Create(
            resource::ResourceConfig(1.0, 1.0),
            resource::ResourceConfig(max_cs, max_nc),
            resource::ResourceConfig(step_cs, step_nc));
    // A deterministic objective with a non-trivial landscape.
    const double a = rng.Uniform(1.0, max_cs);
    const double b = rng.Uniform(1.0, max_nc);
    auto objective = [a, b](const resource::ResourceConfig& c) {
      return std::fabs(c.container_size_gb() - a) * 3.0 +
             std::fabs(c.num_containers() - b) * 0.25 +
             std::sin(c.container_size_gb() * c.num_containers());
    };
    const auto sequential =
        core::BruteForceResourcePlanner().PlanResources(objective, cluster);
    for (int threads : {1, 2, 4, 8}) {
      core::ParallelBruteForceResourcePlanner parallel(threads);
      const auto result = parallel.PlanResources(objective, cluster);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(sequential.ok());
      EXPECT_EQ(result->cost, sequential->cost);
      EXPECT_EQ(result->config, sequential->config);
      EXPECT_EQ(result->configs_explored, cluster.TotalGridSize());
      EXPECT_EQ(result->configs_explored, sequential->configs_explored);
    }
  }
}

TEST(ParallelBruteForceTest, TieBreaksLikeTheSequentialScan) {
  // A flat objective makes every cell optimal; the sequential scan keeps
  // the first cell in row-major order, and the parallel merge must too.
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::WithMax(8.0, 40.0);
  auto flat = [](const resource::ResourceConfig&) { return 7.0; };
  const auto sequential =
      core::BruteForceResourcePlanner().PlanResources(flat, cluster);
  core::ParallelBruteForceResourcePlanner parallel(4);
  const auto result = parallel.PlanResources(flat, cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->config, sequential->config);
}

TEST(ParallelBruteForceTest, ReportsInfeasibleGrids) {
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::WithMax(4.0, 10.0);
  auto infeasible = [](const resource::ResourceConfig&) {
    return std::numeric_limits<double>::infinity();
  };
  core::ParallelBruteForceResourcePlanner parallel(4);
  const auto result = parallel.PlanResources(infeasible, cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(ParallelBruteForceTest, WorksAsEvaluatorSearchStrategy) {
  // End-to-end: the kParallelBruteForce search inside RaqoPlanner picks
  // the same joint plan as sequential brute force.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  core::RaqoPlannerOptions seq_options;
  seq_options.evaluator.search = core::ResourceSearch::kBruteForce;
  core::RaqoPlannerOptions par_options;
  par_options.evaluator.search = core::ResourceSearch::kParallelBruteForce;
  par_options.evaluator.parallel_search_threads = 4;
  core::RaqoPlanner sequential(&cat, Models(),
                               resource::ClusterConditions::PaperDefault(),
                               resource::PricingModel(), seq_options);
  core::RaqoPlanner parallel(&cat, Models(),
                             resource::ClusterConditions::PaperDefault(),
                             resource::PricingModel(), par_options);
  const Result<core::JointPlan> a = sequential.Plan(tables);
  const Result<core::JointPlan> b = parallel.Plan(tables);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cost.seconds, b->cost.seconds);
  EXPECT_EQ(a->cost.dollars, b->cost.dollars);
  EXPECT_TRUE(a->plan->StructurallyEquals(*b->plan));
  EXPECT_EQ(a->stats.resource_configs_explored,
            b->stats.resource_configs_explored);
}

TEST(ParallelBruteForceTest, SmallGridsScanInlineOnTheCallingThread) {
  // The paper-default 10x100 grid sits below min_parallel_cells: the
  // planner must scan it on the calling thread without touching the
  // pool, so the cold path never pays fan-out/join dispatch for ~1000
  // cheap model evaluations.
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();
  ASSERT_LT(cluster.TotalGridSize(),
            core::ParallelBruteForceResourcePlanner::kDefaultMinParallelCells);
  core::ParallelBruteForceResourcePlanner parallel(4);
  std::mutex mu;
  std::set<std::thread::id> evaluator_threads;
  auto objective = [&](const resource::ResourceConfig& c) {
    {
      std::lock_guard<std::mutex> lock(mu);
      evaluator_threads.insert(std::this_thread::get_id());
    }
    return c.container_size_gb() + c.num_containers();
  };
  const auto result = parallel.PlanResources(objective, cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->configs_explored, cluster.TotalGridSize());
  EXPECT_EQ(evaluator_threads.size(), 1u);
  EXPECT_EQ(*evaluator_threads.begin(), std::this_thread::get_id());
}

TEST(ParallelBruteForceTest, ForcedParallelPathMatchesSequentialOnSmallGrids) {
  // min_parallel_cells = 0 pushes even tiny grids through the pooled
  // fan-out (this is also what keeps the parallel path under TSan
  // coverage no matter the grid sizes other tests happen to draw).
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const resource::ClusterConditions cluster =
        *resource::ClusterConditions::Create(
            resource::ResourceConfig(1.0, 1.0),
            resource::ResourceConfig(rng.Uniform(2.0, 10.0),
                                     static_cast<double>(
                                         rng.UniformInt(2, 50))),
            resource::ResourceConfig(1.0, 1.0));
    const double a = rng.Uniform(1.0, 10.0);
    auto objective = [a](const resource::ResourceConfig& c) {
      return std::fabs(c.container_size_gb() - a) +
             0.01 * c.num_containers();
    };
    const auto sequential =
        core::BruteForceResourcePlanner().PlanResources(objective, cluster);
    core::ParallelBruteForceResourcePlanner parallel(4);
    parallel.set_min_parallel_cells(0);
    const auto result = parallel.PlanResources(objective, cluster);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(result->cost, sequential->cost);
    EXPECT_EQ(result->config, sequential->config);
    EXPECT_EQ(result->configs_explored, sequential->configs_explored);
  }
}

TEST(ParallelBruteForceTest, BorrowedPoolIsSharedAcrossPlanners) {
  // Many planners borrowing one pool must all produce the sequential
  // optimum — the pool-sharing shape the runner and the server use.
  ThreadPool pool(4);
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::WithMax(8.0, 400.0);
  auto objective = [](const resource::ResourceConfig& c) {
    return std::fabs(c.container_size_gb() - 5.0) * 2.0 +
           std::fabs(c.num_containers() - 123.0) * 0.5;
  };
  const auto sequential =
      core::BruteForceResourcePlanner().PlanResources(objective, cluster);
  ASSERT_TRUE(sequential.ok());
  for (int i = 0; i < 4; ++i) {
    core::ParallelBruteForceResourcePlanner planner(&pool);
    planner.set_min_parallel_cells(0);
    const auto result = planner.PlanResources(objective, cluster);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->cost, sequential->cost);
    EXPECT_EQ(result->config, sequential->config);
  }
  // A null borrowed pool degrades to the sequential scan.
  core::ParallelBruteForceResourcePlanner unpooled(nullptr);
  unpooled.set_min_parallel_cells(0);
  const auto result = unpooled.PlanResources(objective, cluster);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->config, sequential->config);
}

// ---------------------------------------------------------------------
// Concurrent workload runner (satellite property (a)): report equals
// the sequential runner's, merged in submission order.

std::vector<core::WorkloadQuery> RandomWorkload(const catalog::Catalog& cat,
                                                int num_queries,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<core::WorkloadQuery> workload;
  for (int i = 0; i < num_queries; ++i) {
    const int n = static_cast<int>(rng.UniformInt(2, 6));
    core::WorkloadQuery query;
    query.label = "q" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        cat, n, seed * 977 + static_cast<uint64_t>(i));
    workload.push_back(std::move(query));
  }
  return workload;
}

core::RaqoPlannerOptions ServiceOptions(bool cache) {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = cache;
  // Exact-match lookups keep concurrent cache hits bit-identical to
  // fresh planning, so the service stays deterministic (see the runner's
  // class comment); similarity modes trade that for more reuse.
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = !cache;
  return options;
}

TEST(ConcurrentWorkloadRunnerTest, MatchesSequentialRunnerWithoutCache) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 14;
  schema.seed = 3;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const std::vector<core::WorkloadQuery> workload =
      RandomWorkload(cat, 24, 5);

  core::RaqoPlanner planner(&cat, Models(),
                            resource::ClusterConditions::PaperDefault(),
                            resource::PricingModel(), ServiceOptions(false));
  core::WorkloadRunner sequential(&planner);
  const Result<core::WorkloadReport> seq = sequential.Run(workload);
  ASSERT_TRUE(seq.ok());

  for (int threads : {1, 2, 4, 8}) {
    core::ConcurrentRunnerOptions concurrency;
    concurrency.num_threads = threads;
    core::ConcurrentWorkloadRunner service(
        &cat, Models(), resource::ClusterConditions::PaperDefault(),
        resource::PricingModel(), ServiceOptions(false), concurrency);
    const Result<core::WorkloadReport> par = service.Run(workload);
    ASSERT_TRUE(par.ok()) << threads;
    ASSERT_EQ(par->queries.size(), seq->queries.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      EXPECT_EQ(par->queries[i].label, seq->queries[i].label);
      EXPECT_EQ(par->queries[i].cost.seconds, seq->queries[i].cost.seconds);
      EXPECT_EQ(par->queries[i].cost.dollars, seq->queries[i].cost.dollars);
      EXPECT_EQ(par->queries[i].plan, seq->queries[i].plan);
      ASSERT_EQ(par->queries[i].join_resources.size(),
                seq->queries[i].join_resources.size());
      for (size_t j = 0; j < par->queries[i].join_resources.size(); ++j) {
        EXPECT_EQ(par->queries[i].join_resources[j],
                  seq->queries[i].join_resources[j]);
      }
    }
  }
}

TEST(ConcurrentWorkloadRunnerTest, SharedExactCacheKeepsPlansIdentical) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 12;
  schema.seed = 11;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  // Heavy repetition so the shared cache actually gets hit across
  // workers.
  std::vector<core::WorkloadQuery> workload = RandomWorkload(cat, 8, 21);
  const size_t unique = workload.size();
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t i = 0; i < unique; ++i) {
      core::WorkloadQuery copy = workload[i];
      copy.label += "-rep" + std::to_string(rep);
      workload.push_back(std::move(copy));
    }
  }

  core::RaqoPlanner planner(&cat, Models(),
                            resource::ClusterConditions::PaperDefault(),
                            resource::PricingModel(), ServiceOptions(false));
  core::WorkloadRunner sequential(&planner);
  const Result<core::WorkloadReport> seq = sequential.Run(workload);
  ASSERT_TRUE(seq.ok());

  core::ConcurrentRunnerOptions concurrency;
  concurrency.num_threads = 4;
  concurrency.share_cache = true;
  concurrency.cache_shards = 8;
  core::ConcurrentWorkloadRunner service(
      &cat, Models(), resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), ServiceOptions(true), concurrency);
  ASSERT_TRUE(service.has_shared_cache());
  const Result<core::WorkloadReport> par = service.Run(workload);
  ASSERT_TRUE(par.ok());

  ASSERT_EQ(par->queries.size(), seq->queries.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(par->queries[i].cost.seconds, seq->queries[i].cost.seconds)
        << workload[i].label;
    EXPECT_EQ(par->queries[i].plan, seq->queries[i].plan);
    ASSERT_EQ(par->queries[i].join_resources.size(),
              seq->queries[i].join_resources.size());
    for (size_t j = 0; j < par->queries[i].join_resources.size(); ++j) {
      EXPECT_EQ(par->queries[i].join_resources[j],
                seq->queries[i].join_resources[j]);
    }
  }
  // The repeated queries produced real contention-time cache traffic.
  EXPECT_GT(par->shared_cache.hits, 0);
  EXPECT_GT(service.shared_cache_size(), 0u);
  // Fewer resource iterations than the cache-less sequential baseline:
  // across-query reuse worked.
  EXPECT_LT(par->total_resource_configs_explored,
            seq->total_resource_configs_explored);
}

TEST(ConcurrentWorkloadRunnerTest, TotalsEqualSumOfPerQueryReports) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<core::WorkloadQuery> workload = {
      {"Q3", *catalog::TpchQueryTables(cat, TpchQuery::kQ3)},
      {"Q2", *catalog::TpchQueryTables(cat, TpchQuery::kQ2)},
      {"Q3-again", *catalog::TpchQueryTables(cat, TpchQuery::kQ3)},
      {"Q12", *catalog::TpchQueryTables(cat, TpchQuery::kQ12)},
  };
  // Both runners, cache on and off, must satisfy the sum invariant.
  for (const bool cache : {false, true}) {
    core::RaqoPlanner planner(&cat, Models(),
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(),
                              ServiceOptions(cache));
    core::WorkloadRunner sequential(&planner);
    core::ConcurrentRunnerOptions concurrency;
    concurrency.num_threads = 3;
    core::ConcurrentWorkloadRunner service(
        &cat, Models(), resource::ClusterConditions::PaperDefault(),
        resource::PricingModel(), ServiceOptions(cache), concurrency);
    for (const Result<core::WorkloadReport>& report :
         {sequential.Run(workload), service.Run(workload)}) {
      ASSERT_TRUE(report.ok());
      double wall = 0.0;
      int64_t iters = 0;
      int64_t hits = 0;
      int64_t misses = 0;
      for (const core::QueryRunReport& q : report->queries) {
        wall += q.wall_ms;
        iters += q.resource_configs_explored;
        hits += q.cache_hits;
        misses += q.cache_misses;
      }
      EXPECT_DOUBLE_EQ(report->total_wall_ms, wall);
      EXPECT_EQ(report->total_resource_configs_explored, iters);
      EXPECT_EQ(report->total_cache_hits, hits);
      EXPECT_EQ(report->total_cache_misses, misses);
      EXPECT_GT(report->wall_clock_ms, 0.0);
    }
  }
}

TEST(ConcurrentWorkloadRunnerTest, ReportsLowestIndexErrorDeterministically) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  std::vector<core::WorkloadQuery> workload = {
      {"ok", *catalog::TpchQueryTables(cat, TpchQuery::kQ3)},
      {"bad-dup", {0, 0}},
      {"ok-2", *catalog::TpchQueryTables(cat, TpchQuery::kQ2)},
      {"bad-dup-2", {1, 1}},
  };
  core::ConcurrentRunnerOptions concurrency;
  concurrency.num_threads = 4;
  core::ConcurrentWorkloadRunner service(
      &cat, Models(), resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), ServiceOptions(false), concurrency);
  for (int attempt = 0; attempt < 5; ++attempt) {
    const Result<core::WorkloadReport> report = service.Run(workload);
    ASSERT_FALSE(report.ok());
    // Always the index-1 failure, regardless of scheduling.
    EXPECT_TRUE(report.status().IsInvalidArgument())
        << report.status().ToString();
  }
  EXPECT_FALSE(service.Run({}).ok());
}

// ---------------------------------------------------------------------
// Batched cache inserts: InsertBatch must be indistinguishable from the
// same Insert calls in order, for every layout and lookup mode.

class InsertBatchTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Shards, InsertBatchTest, ::testing::Values(0, 8));

TEST_P(InsertBatchTest, MatchesSequentialInsertsIncludingDuplicates) {
  const size_t shards = GetParam();
  for (const core::CacheLookupMode mode :
       {core::CacheLookupMode::kExact,
        core::CacheLookupMode::kNearestNeighbor}) {
    core::ResourcePlanCache one_by_one(mode, 0.5,
                                       core::CacheIndexKind::kSortedArray,
                                       shards);
    core::ResourcePlanCache batched(mode, 0.5,
                                    core::CacheIndexKind::kSortedArray,
                                    shards);
    Rng rng(42);
    std::vector<core::CacheEntryRecord> records;
    for (int i = 0; i < 200; ++i) {
      core::CacheEntryRecord record;
      record.model = rng.Bernoulli(0.5) ? "smj" : "bhj";
      // A narrow key range forces duplicate (model, key, larger) triples,
      // which must resolve to the last occurrence either way.
      record.plan.key_gb = std::floor(rng.Uniform(0.0, 20.0));
      record.plan.larger_gb = std::floor(rng.Uniform(0.0, 4.0)) * 10.0;
      record.plan.cost = static_cast<double>(i);
      record.plan.config = resource::ResourceConfig(
          rng.Uniform(1.0, 10.0), rng.Uniform(1.0, 100.0));
      records.push_back(record);
    }
    for (const core::CacheEntryRecord& record : records) {
      one_by_one.Insert(record.model, record.plan);
    }
    batched.InsertBatch(records);

    EXPECT_EQ(batched.size(), one_by_one.size());
    EXPECT_EQ(batched.entry_count(), one_by_one.entry_count());
    EXPECT_EQ(batched.approx_bytes(), one_by_one.approx_bytes());
    const std::vector<core::CacheEntryRecord> a = one_by_one.DumpEntries();
    const std::vector<core::CacheEntryRecord> b = batched.DumpEntries();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].model, b[i].model);
      EXPECT_EQ(a[i].plan.key_gb, b[i].plan.key_gb);
      EXPECT_EQ(a[i].plan.larger_gb, b[i].plan.larger_gb);
      EXPECT_EQ(a[i].plan.smaller_gb, b[i].plan.smaller_gb);
      EXPECT_EQ(a[i].plan.cost, b[i].plan.cost);
      EXPECT_EQ(a[i].plan.config, b[i].plan.config);
    }
  }
}

TEST_P(InsertBatchTest, FiresTheListenerPerEntryInBatchOrder) {
  class Recorder : public core::CacheEventListener {
   public:
    void OnInsert(const std::string& model,
                  const core::CachedResourcePlan& plan) override {
      events.emplace_back(model, plan.key_gb);
    }
    std::vector<std::pair<std::string, double>> events;
  };
  core::ResourcePlanCache cache(core::CacheLookupMode::kExact, 0.0,
                                core::CacheIndexKind::kSortedArray,
                                GetParam());
  Recorder recorder;
  cache.SetEventListener(&recorder);
  std::vector<core::CacheEntryRecord> records;
  for (int i = 0; i < 5; ++i) {
    core::CacheEntryRecord record;
    record.model = i % 2 == 0 ? "smj" : "bhj";
    record.plan.key_gb = static_cast<double>(i);
    records.push_back(record);
  }
  cache.InsertBatch(records);
  cache.SetEventListener(nullptr);
  ASSERT_EQ(recorder.events.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(recorder.events[i].first, records[i].model);
    // The listener sees the caller's original key, not the folded one.
    EXPECT_EQ(recorder.events[i].second, records[i].plan.key_gb);
  }
}

// ---------------------------------------------------------------------
// Write-behind shared-cache batching inside the evaluator: plans stay
// bit-identical to write-through, and every staged plan is flushed by
// the end of the query.

TEST(WriteBehindCacheTest, BatchedAndWriteThroughPlansAndCachesMatch) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ3);

  auto shared_cache = [] {
    return std::make_shared<core::ResourcePlanCache>(
        core::CacheLookupMode::kExact, 0.0,
        core::CacheIndexKind::kSortedArray, /*shards=*/8);
  };
  auto options_with_batch = [](size_t batch) {
    core::RaqoPlannerOptions options;
    options.evaluator.use_cache = true;
    options.evaluator.cache_mode = core::CacheLookupMode::kExact;
    options.evaluator.shared_insert_batch = batch;
    options.clear_cache_between_queries = false;
    return options;
  };

  // Write-through (batch 0) vs write-behind (tiny batch, forcing many
  // mid-query flushes) vs write-behind (large batch, flushed only at the
  // end of the query).
  std::vector<core::JointPlan> plans;
  std::vector<std::vector<core::CacheEntryRecord>> dumps;
  for (const size_t batch : {size_t{0}, size_t{3}, size_t{1024}}) {
    std::shared_ptr<core::ResourcePlanCache> cache = shared_cache();
    core::RaqoPlanner planner(&cat, Models(),
                              resource::ClusterConditions::PaperDefault(),
                              resource::PricingModel(),
                              options_with_batch(batch));
    planner.evaluator().ShareCache(cache);
    Result<core::JointPlan> plan = planner.Plan(tables);
    ASSERT_TRUE(plan.ok()) << "batch " << batch;
    // Everything staged was flushed by the end of Plan().
    EXPECT_GT(cache->size(), 0u) << "batch " << batch;
    plans.push_back(std::move(*plan));
    dumps.push_back(cache->DumpEntries());
  }
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].cost.seconds, plans[0].cost.seconds);
    EXPECT_EQ(plans[i].cost.dollars, plans[0].cost.dollars);
    EXPECT_TRUE(plans[i].plan->StructurallyEquals(*plans[0].plan));
    // The shared cache ends bit-identical no matter the batching.
    ASSERT_EQ(dumps[i].size(), dumps[0].size());
    for (size_t j = 0; j < dumps[i].size(); ++j) {
      EXPECT_EQ(dumps[i][j].model, dumps[0][j].model);
      EXPECT_EQ(dumps[i][j].plan.key_gb, dumps[0][j].plan.key_gb);
      EXPECT_EQ(dumps[i][j].plan.larger_gb, dumps[0][j].plan.larger_gb);
      EXPECT_EQ(dumps[i][j].plan.cost, dumps[0][j].plan.cost);
      EXPECT_EQ(dumps[i][j].plan.config, dumps[0][j].plan.config);
    }
  }
}

// ---------------------------------------------------------------------
// Thread accounting: the shared-pool architecture must not multiply
// planner workers by search threads (the N x M oversubscription this
// layer once had), and repeated Run calls must not spawn anything.

#ifdef __linux__
int CountProcessThreads() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(ThreadAccountingTest, RunnerSharesOneSearchPoolAcrossWorkers) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<core::WorkloadQuery> workload = {
      {"Q3", *catalog::TpchQueryTables(cat, TpchQuery::kQ3)},
      {"Q2", *catalog::TpchQueryTables(cat, TpchQuery::kQ2)},
      {"Q12", *catalog::TpchQueryTables(cat, TpchQuery::kQ12)},
      {"Q3-again", *catalog::TpchQueryTables(cat, TpchQuery::kQ3)},
  };
  core::RaqoPlannerOptions planner_options = ServiceOptions(true);
  planner_options.evaluator.search =
      core::ResourceSearch::kParallelBruteForce;
  planner_options.evaluator.parallel_search_threads = 4;
  core::ConcurrentRunnerOptions concurrency;
  concurrency.num_threads = 4;

  const int before = CountProcessThreads();
  core::ConcurrentWorkloadRunner service(
      &cat, Models(), resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), planner_options, concurrency);
  const int after_ctor = CountProcessThreads();
  // Exactly one worker pool (num_threads - 1: the caller is worker 0)
  // plus one shared search pool — NOT num_threads * search_threads.
  EXPECT_EQ(after_ctor - before, (4 - 1) + 4);

  const Result<core::WorkloadReport> first = service.Run(workload);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(CountProcessThreads(), after_ctor) << "Run spawned threads";

  // Reuse: a second Run on the same planners and pools returns the same
  // plans (the shared exact cache may serve more hits, which must not
  // change any plan).
  const Result<core::WorkloadReport> second = service.Run(workload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(CountProcessThreads(), after_ctor);
  ASSERT_EQ(second->queries.size(), first->queries.size());
  for (size_t i = 0; i < first->queries.size(); ++i) {
    EXPECT_EQ(second->queries[i].plan, first->queries[i].plan);
    EXPECT_EQ(second->queries[i].cost.seconds,
              first->queries[i].cost.seconds);
    EXPECT_EQ(second->queries[i].cost.dollars,
              first->queries[i].cost.dollars);
    ASSERT_EQ(second->queries[i].join_resources.size(),
              first->queries[i].join_resources.size());
    for (size_t j = 0; j < first->queries[i].join_resources.size(); ++j) {
      EXPECT_EQ(second->queries[i].join_resources[j],
                first->queries[i].join_resources[j]);
    }
  }
}

TEST(ThreadAccountingTest, SequentialPlannersStillOwnPrivatePools) {
  // Without an injected pool the evaluator falls back to an owned pool —
  // the single-planner ergonomics are unchanged.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  core::RaqoPlannerOptions options;
  options.evaluator.search = core::ResourceSearch::kParallelBruteForce;
  options.evaluator.parallel_search_threads = 3;
  const int before = CountProcessThreads();
  core::RaqoPlanner planner(&cat, Models(),
                            resource::ClusterConditions::PaperDefault(),
                            resource::PricingModel(), options);
  EXPECT_EQ(CountProcessThreads() - before, 3);
}
#endif  // __linux__

// ---------------------------------------------------------------------
// Saturation guards on the exploration counters.

TEST(CounterSaturationTest, AbsurdGridsClampInsteadOfOverflowing) {
  const resource::ClusterConditions huge =
      *resource::ClusterConditions::Create(
          resource::ResourceConfig(1e-300, 1.0),
          resource::ResourceConfig(1e+300, 9e18),
          resource::ResourceConfig(1e-300, 1e-9));
  EXPECT_GT(huge.GridPoints(resource::kContainerSizeGb), 0);
  EXPECT_GT(huge.GridPoints(resource::kNumContainers), 0);
  EXPECT_EQ(huge.TotalGridSize(), std::numeric_limits<int64_t>::max());
}

}  // namespace
}  // namespace raqo
