#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/sql_parser.h"

namespace raqo::query {
namespace {

using catalog::TableId;

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : cat_(catalog::BuildTpchCatalog(1.0)) {}
  catalog::Catalog cat_;
};

TEST_F(SqlParserTest, ParsesThePaperRunningExample) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from orders, lineitem where o_orderkey = l_orderkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->tables.size(), 2u);
  EXPECT_EQ(q->tables[0], *cat_.FindTable("orders"));
  EXPECT_EQ(q->tables[1], *cat_.FindTable("lineitem"));
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->predicates[0].ToString(), "o_orderkey = l_orderkey");
}

TEST_F(SqlParserTest, ParsesQualifiedPredicatesAndAnd) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "SELECT * FROM customer, orders, lineitem "
      "WHERE customer.c_custkey = orders.o_custkey "
      "AND lineitem.l_orderkey = orders.o_orderkey;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables.size(), 3u);
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_EQ(q->predicates[0].left_table, "customer");
  EXPECT_EQ(q->predicates[1].right_column, "o_orderkey");
}

TEST_F(SqlParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseJoinQuery(cat_, "SeLeCt * FrOm orders").ok());
}

TEST_F(SqlParserTest, NoWhereClauseIsFine) {
  Result<ParsedQuery> q = ParseJoinQuery(cat_, "select * from nation");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->tables.size(), 1u);
  EXPECT_TRUE(q->predicates.empty());
}

TEST_F(SqlParserTest, RejectsUnknownTable) {
  Result<ParsedQuery> q =
      ParseJoinQuery(cat_, "select * from warehouse");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(SqlParserTest, RejectsDuplicateTable) {
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders, orders").ok());
}

TEST_F(SqlParserTest, RejectsMalformedSyntax) {
  EXPECT_FALSE(ParseJoinQuery(cat_, "").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select o_orderkey from orders").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * orders").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders,").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders where").ok());
  EXPECT_FALSE(
      ParseJoinQuery(cat_, "select * from orders where o_orderkey <> 5")
          .ok());
  EXPECT_FALSE(
      ParseJoinQuery(cat_, "select * from orders where a = b and").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders extra").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders $").ok());
}

TEST_F(SqlParserTest, EveryTruncationFailsCleanly) {
  // Chopping a valid statement at any byte must produce a clean
  // InvalidArgument (or, for "select *", a valid shorter parse is
  // impossible here since the from-list would be missing) — never a
  // crash and never an empty diagnostic.
  const std::string valid =
      "select * from orders, lineitem where o_orderkey = l_orderkey";
  for (size_t n = 0; n < valid.size(); ++n) {
    Result<ParsedQuery> q = ParseJoinQuery(cat_, valid.substr(0, n));
    // Prefixes ending inside the final identifier can still parse (e.g.
    // "... where o_orderkey = l_order" names an unknown column, which
    // only filter derivation rejects); everything else must fail.
    if (q.ok()) continue;
    EXPECT_FALSE(q.status().message().empty()) << "prefix length " << n;
  }
  // The canonical truncations fail outright.
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders, line").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "select * from orders where o_").ok());
  EXPECT_FALSE(ParseJoinQuery(cat_, "sel").ok());
}

TEST_F(SqlParserTest, GarbageBytesFailCleanly) {
  for (const char* garbage :
       {"\x01\x02\x03", "select * from orders \xff\xfe",
        "select * from \"orders\"", "((((((((", "where where where",
        "select select select * from orders",
        "select * from orders where o_orderkey = = l_orderkey"}) {
    Result<ParsedQuery> q = ParseJoinQuery(cat_, garbage);
    ASSERT_FALSE(q.ok()) << garbage;
    EXPECT_TRUE(q.status().IsInvalidArgument() || q.status().IsNotFound())
        << q.status().ToString();
    EXPECT_FALSE(q.status().message().empty());
  }
}

TEST_F(SqlParserTest, OversizedQueriesFailWithoutCrashing) {
  // A from-list of thousands of (unknown) tables: the parser walks it
  // and reports the first unknown name instead of misbehaving on size.
  std::string many_tables = "select * from orders";
  for (int i = 0; i < 5000; ++i) {
    many_tables += ", t" + std::to_string(i);
  }
  Result<ParsedQuery> q = ParseJoinQuery(cat_, many_tables);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsNotFound()) << q.status().ToString();

  // One enormous identifier (1 MiB) is rejected as unknown, not copied
  // into a crash.
  const std::string huge_name(1 << 20, 'x');
  Result<ParsedQuery> huge =
      ParseJoinQuery(cat_, "select * from " + huge_name);
  ASSERT_FALSE(huge.ok());
  EXPECT_TRUE(huge.status().IsNotFound()) << huge.status().ToString();

  // A kilometer of trailing whitespace after a valid statement is fine.
  EXPECT_TRUE(
      ParseJoinQuery(cat_, "select * from orders" + std::string(100000, ' '))
          .ok());
}

TEST_F(SqlParserTest, RejectsPredicateOnMissingOrSelfTable) {
  EXPECT_FALSE(
      ParseJoinQuery(cat_,
                     "select * from orders, lineitem "
                     "where customer.c_custkey = orders.o_custkey")
          .ok());
  EXPECT_FALSE(
      ParseJoinQuery(cat_,
                     "select * from orders, lineitem "
                     "where orders.a = orders.b")
          .ok());
}

TEST_F(SqlParserTest, RejectsPredicateWithoutJoinEdge) {
  // customer-lineitem has no edge in the TPC-H join graph.
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from customer, lineitem "
      "where customer.c_custkey = lineitem.l_orderkey");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("no join edge"), std::string::npos);
}

TEST_F(SqlParserTest, ParsesFilterPredicates) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from orders, lineitem "
      "where o_orderkey = l_orderkey "
      "and lineitem.l_quantity < 25 "
      "and orders.o_totalprice >= 100000");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates.size(), 1u);
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].ToString(), "lineitem.l_quantity < 25");
  EXPECT_EQ(q->filters[1].op, FilterOp::kGe);
  EXPECT_DOUBLE_EQ(q->filters[1].value, 100000.0);
}

TEST_F(SqlParserTest, FilterSelectivitiesFromColumnStats) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from orders, lineitem "
      "where o_orderkey = l_orderkey "
      "and l_quantity < 25 "         // unqualified: unique column name
      "and l_shipdate >= 2020");     // combines on the same table
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sel = DeriveFilterSelectivities(cat_, *q);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ((*sel)[0].first, *cat_.FindTable("lineitem"));
  // quantity < 25 over [1, 50]: (25-1)/49; shipdate >= 2020 over
  // [0, 2525]: 1 - 2020/2525; independence multiplies them.
  const double expected = (24.0 / 49.0) * (1.0 - 2020.0 / 2525.0);
  EXPECT_NEAR((*sel)[0].second, expected, 1e-12);
}

TEST_F(SqlParserTest, EqualityFilterUsesDistinctCount) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_, "select * from lineitem where l_quantity = 7");
  ASSERT_TRUE(q.ok());
  auto sel = DeriveFilterSelectivities(cat_, *q);
  ASSERT_TRUE(sel.ok());
  EXPECT_DOUBLE_EQ((*sel)[0].second, 1.0 / 50.0);
}

TEST_F(SqlParserTest, FilterErrorsAreReported) {
  // Range filter on a column without range statistics.
  Result<ParsedQuery> keyed = ParseJoinQuery(
      cat_, "select * from orders where o_orderkey < 5");
  ASSERT_TRUE(keyed.ok());
  EXPECT_FALSE(DeriveFilterSelectivities(cat_, *keyed).ok());
  // Unknown column.
  Result<ParsedQuery> unknown = ParseJoinQuery(
      cat_, "select * from orders where o_nope < 5");
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(DeriveFilterSelectivities(cat_, *unknown)
                  .status()
                  .IsNotFound());
  // Filter on a table outside the FROM clause is a parse error.
  EXPECT_FALSE(ParseJoinQuery(
                   cat_, "select * from orders where lineitem.l_quantity < 5")
                   .ok());
  // Non-equality join predicates are rejected.
  EXPECT_FALSE(ParseJoinQuery(
                   cat_,
                   "select * from orders, lineitem "
                   "where o_orderkey < l_orderkey")
                   .ok());
}

TEST_F(SqlParserTest, ApplyFiltersScalesRowCounts) {
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from orders, lineitem "
      "where o_orderkey = l_orderkey and l_quantity <= 25");
  ASSERT_TRUE(q.ok());
  Result<catalog::Catalog> filtered = ApplyFilters(cat_, *q);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  const catalog::TableId lineitem = *cat_.FindTable("lineitem");
  const catalog::TableId orders = *cat_.FindTable("orders");
  EXPECT_LT(filtered->table(lineitem).row_count,
            cat_.table(lineitem).row_count);
  EXPECT_DOUBLE_EQ(filtered->table(orders).row_count,
                   cat_.table(orders).row_count);
  // Join edges carry over unchanged.
  EXPECT_EQ(filtered->join_graph().edges().size(),
            cat_.join_graph().edges().size());
  EXPECT_DOUBLE_EQ(
      filtered->join_graph().EdgeSelectivity(lineitem, orders),
      cat_.join_graph().EdgeSelectivity(lineitem, orders));
}

TEST_F(SqlParserTest, ParsedTablesDriveThePlanner) {
  // End-to-end smoke: the parse result feeds directly into planning.
  Result<ParsedQuery> q = ParseJoinQuery(
      cat_,
      "select * from customer, orders, lineitem "
      "where customer.c_custkey = orders.o_custkey "
      "and orders.o_orderkey = lineitem.l_orderkey");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(cat_.join_graph().IsConnected(q->tables));
}

}  // namespace
}  // namespace raqo::query
