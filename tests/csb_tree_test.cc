#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/csb_tree.h"

namespace raqo::core {
namespace {

TEST(CsbTreeTest, EmptyTree) {
  CsbTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Find(1.0).has_value());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  int visited = 0;
  tree.Scan(-1e18, 1e18, [&](double, int64_t) { ++visited; });
  EXPECT_EQ(visited, 0);
}

TEST(CsbTreeTest, SingleInsertAndFind) {
  CsbTree tree;
  EXPECT_TRUE(tree.Insert(3.5, 42));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  ASSERT_TRUE(tree.Find(3.5).has_value());
  EXPECT_EQ(*tree.Find(3.5), 42);
  EXPECT_FALSE(tree.Find(3.4).has_value());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CsbTreeTest, OverwriteExistingKey) {
  CsbTree tree;
  EXPECT_TRUE(tree.Insert(1.0, 10));
  EXPECT_FALSE(tree.Insert(1.0, 20));  // overwrite, not a new key
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(1.0), 20);
}

TEST(CsbTreeTest, SequentialInsertsSplitLeaves) {
  CsbTree tree;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(tree.Insert(static_cast<double>(i), i * 10));
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_GT(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Find(i).has_value()) << i;
    EXPECT_EQ(*tree.Find(i), i * 10);
  }
}

TEST(CsbTreeTest, ReverseSequentialInserts) {
  CsbTree tree;
  for (int i = 500; i >= 0; --i) {
    tree.Insert(static_cast<double>(i), i);
  }
  EXPECT_EQ(tree.size(), 501u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(*tree.Find(250), 250);
}

TEST(CsbTreeTest, ScanRange) {
  CsbTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  std::vector<double> keys;
  tree.Scan(10.0, 20.0, [&](double k, int64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<int64_t>(k));
  });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10.0);
  EXPECT_EQ(keys.back(), 20.0);
  // Empty and inverted ranges.
  int count = 0;
  tree.Scan(200, 300, [&](double, int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  tree.Scan(20, 10, [&](double, int64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(CsbTreeTest, NegativeAndFractionalKeys) {
  CsbTree tree;
  for (int i = -50; i <= 50; ++i) {
    tree.Insert(i * 0.1, i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(*tree.Find(-5.0), -50);
  EXPECT_EQ(*tree.Find(0.0), 0);
  std::vector<int64_t> seen;
  tree.Scan(-0.15, 0.15, [&](double, int64_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int64_t>{-1, 0, 1}));
}

// Property test: random workloads behave exactly like std::map.
class CsbTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsbTreeRandomTest, MatchesReferenceMap) {
  Rng rng(GetParam());
  CsbTree tree;
  std::map<double, int64_t> reference;
  for (int op = 0; op < 3000; ++op) {
    // Draw keys from a small discrete universe to exercise overwrites.
    const double key =
        static_cast<double>(rng.UniformInt(0, 700)) * 0.25;
    const int64_t value = rng.UniformInt(0, 1'000'000);
    const bool was_new = reference.find(key) == reference.end();
    EXPECT_EQ(tree.Insert(key, value), was_new);
    reference[key] = value;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), reference.size());
  // Point lookups.
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(tree.Find(key).has_value()) << key;
    EXPECT_EQ(*tree.Find(key), value);
  }
  // Range scans agree on random windows.
  for (int probe = 0; probe < 20; ++probe) {
    const double lo = rng.Uniform(-10, 180);
    const double hi = lo + rng.Uniform(0, 40);
    std::vector<std::pair<double, int64_t>> from_tree;
    tree.Scan(lo, hi, [&](double k, int64_t v) {
      from_tree.emplace_back(k, v);
    });
    std::vector<std::pair<double, int64_t>> from_map;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      from_map.emplace_back(it->first, it->second);
    }
    EXPECT_EQ(from_tree, from_map);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsbTreeRandomTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(CsbTreeTest, LargeUniformInsertHeightLogarithmic) {
  Rng rng(99);
  CsbTree tree;
  for (int i = 0; i < 20'000; ++i) {
    tree.Insert(rng.NextDouble() * 1e6, i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // 14 keys/node: height should stay small.
  EXPECT_LE(tree.height(), 6);
}

}  // namespace
}  // namespace raqo::core
