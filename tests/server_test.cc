// The planning server end to end: wire protocol round trips, framing,
// admission control, deadlines, connection limits, and the SIGTERM
// drain — all over real loopback sockets against real planner workers.
// Run under -DRAQO_SANITIZE=thread and =address; every test here must
// be clean under both (see docs/SERVER.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch.h"
#include "common/json.h"
#include "common/net.h"
#include "core/plan_cache.h"
#include "core/raqo_planner.h"
#include "persist/cache_persist.h"
#include "obs/trace.h"
#include "plan/plan_node.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using server::ErrorResponse;
using server::PlanRequest;
using server::PlanResponse;
using server::PlanningClient;
using server::PlanningServer;
using server::PlanningService;
using server::ServerOptions;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

const catalog::Catalog& TestCatalog() {
  static const catalog::Catalog* catalog =
      new catalog::Catalog(catalog::BuildTpchCatalog(100.0));
  return *catalog;
}

core::RaqoPlannerOptions TestPlannerOptions() {
  core::RaqoPlannerOptions options;
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = false;
  return options;
}

PlanningService MakeService() {
  server::PlanningServiceOptions options;
  options.planner = TestPlannerOptions();
  return PlanningService(&TestCatalog(), Models(),
                         resource::ClusterConditions::PaperDefault(),
                         resource::PricingModel(), options);
}

/// Polls `pred` for up to ~5 s.
bool WaitUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------
// Wire protocol

TEST(ProtocolTest, RequestRoundTripsThroughJson) {
  PlanRequest request;
  request.id = "q-42 \"quoted\"";
  request.sql = "select * from orders, lineitem where o_orderkey > 17";
  request.has_max_dollars = true;
  request.max_dollars = 0.625;
  request.algorithm = "selinger";
  request.search = "hillclimb";
  request.has_use_cache = true;
  request.use_cache = false;
  request.has_time_weight = true;
  request.time_weight = 0.25;
  request.deadline_ms = 1500;
  request.debug_sleep_ms = 3;

  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, request.id);
  EXPECT_EQ(parsed->sql, request.sql);
  EXPECT_TRUE(parsed->tables.empty());
  EXPECT_FALSE(parsed->has_resources);
  ASSERT_TRUE(parsed->has_max_dollars);
  EXPECT_EQ(parsed->max_dollars, request.max_dollars);
  EXPECT_EQ(parsed->algorithm, "selinger");
  EXPECT_EQ(parsed->search, "hillclimb");
  ASSERT_TRUE(parsed->has_use_cache);
  EXPECT_FALSE(parsed->use_cache);
  ASSERT_TRUE(parsed->has_time_weight);
  EXPECT_EQ(parsed->time_weight, 0.25);
  EXPECT_EQ(parsed->deadline_ms, 1500);
  EXPECT_EQ(parsed->debug_sleep_ms, 3);
}

TEST(ProtocolTest, TableListAndResourcesRoundTrip) {
  PlanRequest request;
  request.tables = {"orders", "lineitem", "customer"};
  request.has_resources = true;
  request.resources = resource::ResourceConfig(7.5, 12);

  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tables, request.tables);
  ASSERT_TRUE(parsed->has_resources);
  EXPECT_EQ(parsed->resources.num_containers(), 12);
  EXPECT_EQ(parsed->resources.container_size_gb(), 7.5);
}

TEST(ProtocolTest, ResponseRoundTripsBitIdentically) {
  PlanResponse response;
  response.id = "r1";
  response.plan = "(orders ⨝ lineitem)";
  response.cost.seconds = 123.45600000000013;  // needs all 17 digits
  response.cost.dollars = 0.1 + 0.2;           // 0.30000000000000004
  const resource::ResourceConfig r(3.25, 9);
  response.join_resources = {r, r};
  response.stats.wall_ms = 1.5;
  response.stats.plans_considered = 77;
  response.stats.resource_configs_explored = 1234;
  response.stats.cache_hits = 5;
  response.stats.cache_misses = 6;
  response.queue_wait_us = 42.5;

  Result<PlanResponse> parsed =
      server::ParsePlanResponse(server::SerializePlanResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->plan, response.plan);
  EXPECT_EQ(parsed->cost.seconds, response.cost.seconds);
  EXPECT_EQ(parsed->cost.dollars, response.cost.dollars);
  ASSERT_EQ(parsed->join_resources.size(), 2u);
  EXPECT_EQ(parsed->join_resources[0].num_containers(), 9);
  EXPECT_EQ(parsed->join_resources[0].container_size_gb(), 3.25);
  EXPECT_EQ(parsed->stats.plans_considered, 77);
  EXPECT_EQ(parsed->queue_wait_us, 42.5);
}

TEST(ProtocolTest, ErrorResponseCarriesStatusAndMessage) {
  PlanResponse error = ErrorResponse(server::kWireResourceExhausted,
                                     "queue full", "q7");
  Result<PlanResponse> parsed =
      server::ParsePlanResponse(server::SerializePlanResponse(error));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->status, "RESOURCE_EXHAUSTED");
  EXPECT_EQ(parsed->error, "queue full");
  EXPECT_EQ(parsed->id, "q7");
}

TEST(ProtocolTest, ParseRejectsGarbage) {
  EXPECT_FALSE(server::ParsePlanRequest("not json").ok());
  EXPECT_FALSE(server::ParsePlanRequest("[1,2,3]").ok());
  EXPECT_FALSE(server::ParsePlanRequest("{\"sql\": 7}").ok());
  EXPECT_FALSE(server::ParsePlanResponse("{").ok());
}

TEST(ProtocolTest, FrameEncodesBigEndianLength) {
  const std::string frame = server::EncodeFrame("abc");
  ASSERT_EQ(frame.size(), server::kFrameHeaderBytes + 3);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(ProtocolTest, TryDecodeFrameHandlesPartialAndOversized) {
  const std::string frame = server::EncodeFrame("hello");
  std::string_view payload;
  size_t frame_size = 0;

  // Every strict prefix needs more bytes.
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(server::TryDecodeFrame(std::string_view(frame).substr(0, n),
                                     1024, &payload, &frame_size),
              server::FrameDecode::kNeedMore);
  }
  ASSERT_EQ(server::TryDecodeFrame(frame, 1024, &payload, &frame_size),
            server::FrameDecode::kComplete);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(frame_size, frame.size());

  // A header advertising more than the cap is rejected before any
  // payload accumulates.
  EXPECT_EQ(server::TryDecodeFrame(frame, 4, &payload, &frame_size),
            server::FrameDecode::kTooLarge);
}

TEST(ProtocolTest, TenantRoundTripsAndStaysOffTheWireWhenEmpty) {
  PlanRequest request;
  request.id = "q1";
  request.tenant = "acme \"prod\"";
  request.tables = {"orders", "lineitem"};
  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, request.tenant);

  // No tenant -> no field: the serialized bytes of quota-free traffic
  // are unchanged from before tenants existed.
  request.tenant.clear();
  EXPECT_EQ(server::SerializePlanRequest(request).find("tenant"),
            std::string::npos);
}

TEST(ProtocolTest, PeekTopLevelStringFindsOnlyTopLevelKeys) {
  using server::PeekTopLevelString;
  EXPECT_EQ(PeekTopLevelString(R"({"id": "q7", "tenant": "acme"})", "id"),
            "q7");
  EXPECT_EQ(PeekTopLevelString(R"({"id": "q7", "tenant": "acme"})",
                               "tenant"),
            "acme");
  // Whitespace and field order don't matter.
  EXPECT_EQ(PeekTopLevelString("  {  \"tenant\"  :  \"t\"  }", "tenant"),
            "t");
  // A key mentioned inside another string value is not a key.
  EXPECT_EQ(PeekTopLevelString(
                R"({"sql": "select \"id\" from t", "id": "real"})", "id"),
            "real");
  EXPECT_EQ(PeekTopLevelString(R"({"sql": "where tenant = 'x'"})", "tenant"),
            "");
  // Nested objects and arrays are opaque at the top level.
  EXPECT_EQ(PeekTopLevelString(
                R"({"nested": {"id": "inner"}, "id": "outer"})", "id"),
            "outer");
  EXPECT_EQ(PeekTopLevelString(R"({"a": [{"id": "x"}], "id": "y"})", "id"),
            "y");
  // Escapes in the value decode exactly as a full parse would.
  EXPECT_EQ(PeekTopLevelString(R"({"id": "a\"b\\cA"})", "id"),
            "a\"b\\cA");
  // Absent, non-string, or malformed -> empty.
  EXPECT_EQ(PeekTopLevelString(R"({"id": "q"})", "tenant"), "");
  EXPECT_EQ(PeekTopLevelString(R"({"id": 7})", "id"), "");
  EXPECT_EQ(PeekTopLevelString(R"({"id": null})", "id"), "");
  EXPECT_EQ(PeekTopLevelString("not json", "id"), "");
  EXPECT_EQ(PeekTopLevelString(R"([{"id": "q"}])", "id"), "");
  EXPECT_EQ(PeekTopLevelString(R"({"id": "unterminated)", "id"), "");
}

// ---------------------------------------------------------------------
// PlanningService (request handling without sockets)

TEST(PlanningServiceTest, RejectsAmbiguousQuerySpec) {
  PlanningService service = MakeService();
  PlanRequest both;
  both.sql = "select * from orders, lineitem";
  both.tables = {"orders"};
  EXPECT_EQ(service.Handle(both).status, "INVALID_ARGUMENT");

  PlanRequest neither;
  EXPECT_EQ(service.Handle(neither).status, "INVALID_ARGUMENT");

  PlanRequest conflicting;
  conflicting.tables = {"orders", "lineitem"};
  conflicting.has_resources = true;
  conflicting.has_max_dollars = true;
  EXPECT_EQ(service.Handle(conflicting).status, "INVALID_ARGUMENT");
}

TEST(PlanningServiceTest, ReportsUnknownTablesAndKnobs) {
  PlanningService service = MakeService();
  PlanRequest unknown;
  unknown.tables = {"orders", "no_such_table"};
  EXPECT_EQ(service.Handle(unknown).status, "NOT_FOUND");

  PlanRequest bad_knob;
  bad_knob.tables = {"orders", "lineitem"};
  bad_knob.algorithm = "quantum";
  EXPECT_EQ(service.Handle(bad_knob).status, "INVALID_ARGUMENT");

  PlanRequest bad_weight;
  bad_weight.tables = {"orders", "lineitem"};
  bad_weight.has_time_weight = true;
  bad_weight.time_weight = 1.5;
  EXPECT_EQ(service.Handle(bad_weight).status, "INVALID_ARGUMENT");
}

TEST(PlanningServiceTest, OversizedSqlIsRejectedCleanly) {
  PlanningService service = MakeService();
  PlanRequest big;
  big.sql = "select * from " + std::string(server::kMaxSqlBytes, 'x');
  PlanResponse response = service.Handle(big);
  EXPECT_EQ(response.status, "INVALID_ARGUMENT");
  EXPECT_NE(response.error.find("exceeds"), std::string::npos);
}

#ifdef __linux__
TEST(PlanningServiceTest, ParallelSearchRequestsShareOneServicePool) {
  // The resource-search pool is built lazily by the first "parallel"
  // request and shared by every later one: the thread count grows once
  // by parallel_search_threads, then stays flat no matter how many
  // parallel requests are handled — never a pool per request.
  PlanningService service = MakeService();
  auto count_threads = [] {
    int count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator("/proc/self/task")) {
      (void)entry;
      ++count;
    }
    return count;
  };
  PlanRequest request;
  request.tables = {"orders", "lineitem", "customer"};
  request.search = "parallel";

  const int before = count_threads();
  PlanResponse first = service.Handle(request);
  ASSERT_TRUE(first.ok()) << first.status << ": " << first.error;
  const int after_first = count_threads();
  EXPECT_EQ(after_first - before,
            service.options().planner.evaluator.parallel_search_threads);

  for (int i = 0; i < 4; ++i) {
    PlanResponse next = service.Handle(request);
    ASSERT_TRUE(next.ok()) << next.status << ": " << next.error;
  }
  EXPECT_EQ(count_threads(), after_first);

  // And the answers match the default sequential grid search exactly.
  PlanRequest grid = request;
  grid.search = "grid";
  PlanResponse sequential = service.Handle(grid);
  PlanResponse parallel = service.Handle(request);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sequential.plan, parallel.plan);
  EXPECT_EQ(sequential.cost.seconds, parallel.cost.seconds);
  EXPECT_EQ(sequential.cost.dollars, parallel.cost.dollars);
}
#endif  // __linux__

// ---------------------------------------------------------------------
// End-to-end over loopback

struct TestServer {
  explicit TestServer(ServerOptions options = ServerOptions())
      : service(MakeService()) {
    options.port = 0;  // ephemeral
    server = std::make_unique<PlanningServer>(&service, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  PlanningClient Connect() {
    Result<PlanningClient> client =
        PlanningClient::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  PlanningService service;
  std::unique_ptr<PlanningServer> server;
};

/// Fixture for behaviors that must hold at every reactor count: the
/// drain, fairness, deadline, and pipelining guarantees are properties
/// of the admission plane, which the reactor sharding must not disturb.
class ReactorServerTest : public ::testing::TestWithParam<int> {
 protected:
  ServerOptions OptionsWithReactors() const {
    ServerOptions options;
    options.num_reactors = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(Reactors, ReactorServerTest,
                         ::testing::Values(1, 2, 4),
                         ::testing::PrintToStringParamName());

/// Fault injector scripted by a lambda. The callbacks run on whatever
/// thread performs the I/O (reactor threads AND the test's own client
/// calls, which share the process-wide hook), so scripts filter by fd —
/// usually "pass through my client fd, fault everything else", which in
/// a one-connection test isolates exactly the server side of the socket.
class ScriptedFaultInjector : public net::FaultInjector {
 public:
  using Script = std::function<net::FaultAction(int fd, size_t len)>;
  ScriptedFaultInjector(Script on_send, Script on_recv)
      : on_send_(std::move(on_send)), on_recv_(std::move(on_recv)) {}

  net::FaultAction OnSend(int fd, size_t len) override {
    return on_send_ ? on_send_(fd, len) : net::FaultAction::PassThrough();
  }
  net::FaultAction OnRecv(int fd, size_t len) override {
    return on_recv_ ? on_recv_(fd, len) : net::FaultAction::PassThrough();
  }

 private:
  Script on_send_;
  Script on_recv_;
};

TEST(PlanningServerTest, RoundTripMatchesDirectPlannerCall) {
  TestServer ts;
  PlanningClient client = ts.Connect();

  PlanRequest request;
  request.id = "rt";
  request.sql = "select * from orders, lineitem, customer";
  Result<PlanResponse> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status << ": " << response->error;

  // The same planning, one function call instead of one socket away.
  const catalog::Catalog& catalog = TestCatalog();
  core::RaqoPlanner direct(&catalog, Models(),
                           resource::ClusterConditions::PaperDefault(),
                           resource::PricingModel(), TestPlannerOptions());
  std::vector<catalog::TableId> tables;
  for (const char* name : {"orders", "lineitem", "customer"}) {
    tables.push_back(*catalog.FindTable(name));
  }
  Result<core::JointPlan> expected = direct.Plan(tables);
  ASSERT_TRUE(expected.ok());

  // Bit-identical: the wire format prints doubles with %.17g, which
  // round-trips IEEE doubles exactly.
  EXPECT_EQ(response->id, "rt");
  EXPECT_EQ(response->plan, expected->plan->ToString(&catalog));
  EXPECT_EQ(response->cost.seconds, expected->cost.seconds);
  EXPECT_EQ(response->cost.dollars, expected->cost.dollars);

  std::vector<resource::ResourceConfig> expected_resources;
  expected->plan->VisitJoins([&](const plan::PlanNode& join) {
    expected_resources.push_back(
        join.resources().value_or(resource::ResourceConfig()));
  });
  ASSERT_EQ(response->join_resources.size(), expected_resources.size());
  for (size_t i = 0; i < expected_resources.size(); ++i) {
    EXPECT_EQ(response->join_resources[i], expected_resources[i]);
  }
}

TEST(PlanningServerTest, ServesResourceAndBudgetModes) {
  TestServer ts;
  PlanningClient client = ts.Connect();

  PlanRequest fixed;
  fixed.id = "fixed";
  fixed.tables = {"orders", "lineitem"};
  fixed.has_resources = true;
  fixed.resources = resource::ResourceConfig(4.0, 8);
  Result<PlanResponse> fixed_response = client.Call(fixed);
  ASSERT_TRUE(fixed_response.ok());
  ASSERT_TRUE(fixed_response->ok())
      << fixed_response->status << ": " << fixed_response->error;
  for (const resource::ResourceConfig& r : fixed_response->join_resources) {
    EXPECT_EQ(r, fixed.resources);
  }

  const catalog::Catalog& catalog = TestCatalog();
  core::RaqoPlanner direct(&catalog, Models(),
                           resource::ClusterConditions::PaperDefault(),
                           resource::PricingModel(), TestPlannerOptions());
  std::vector<catalog::TableId> tables = {*catalog.FindTable("orders"),
                                          *catalog.FindTable("lineitem")};
  Result<core::JointPlan> expected =
      direct.PlanForResources(tables, fixed.resources);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(fixed_response->plan, expected->plan->ToString(&catalog));
  EXPECT_EQ(fixed_response->cost.seconds, expected->cost.seconds);

  PlanRequest budget;
  budget.id = "budget";
  budget.tables = {"orders", "lineitem"};
  budget.has_max_dollars = true;
  budget.max_dollars = 1000.0;  // generous: must be satisfiable
  Result<PlanResponse> budget_response = client.Call(budget);
  ASSERT_TRUE(budget_response.ok());
  ASSERT_TRUE(budget_response->ok())
      << budget_response->status << ": " << budget_response->error;
  EXPECT_LE(budget_response->cost.dollars, 1000.0);
}

TEST(PlanningServerTest, ConcurrentClientsAllGetTheSequentialAnswer) {
  ServerOptions options;
  options.num_workers = 4;
  TestServer ts(options);

  const catalog::Catalog& catalog = TestCatalog();
  core::RaqoPlanner direct(&catalog, Models(),
                           resource::ClusterConditions::PaperDefault(),
                           resource::PricingModel(), TestPlannerOptions());
  std::vector<catalog::TableId> tables = {*catalog.FindTable("orders"),
                                          *catalog.FindTable("lineitem"),
                                          *catalog.FindTable("customer")};
  Result<core::JointPlan> expected = direct.Plan(tables);
  ASSERT_TRUE(expected.ok());
  const std::string expected_plan = expected->plan->ToString(&catalog);

  constexpr int kClients = 8;
  constexpr int kCallsEach = 3;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Result<PlanningClient> client =
          PlanningClient::Connect("127.0.0.1", ts.server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int call = 0; call < kCallsEach; ++call) {
        PlanRequest request;
        request.id = "c" + std::to_string(t) + "." + std::to_string(call);
        request.sql = "select * from orders, lineitem, customer";
        Result<PlanResponse> response = client->Call(request);
        if (!response.ok() || !response->ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (response->id != request.id || response->plan != expected_plan ||
            response->cost.seconds != expected->cost.seconds) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const server::ServerStats stats = ts.server->stats();
  EXPECT_GE(stats.connections_accepted, kClients);
  EXPECT_GE(stats.requests_admitted, kClients * kCallsEach);
}

TEST(PlanningServerTest, QueueOverflowAnswersResourceExhausted) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.enable_test_hooks = true;
  TestServer ts(options);

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  // #1 occupies the single worker, #2 the single queue slot, #3 must be
  // rejected immediately instead of growing the queue.
  PlanRequest slow;
  slow.id = "slow";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 400;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  PlanRequest queued = slow;
  queued.id = "queued";
  queued.debug_sleep_ms = 0;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(queued)).ok());
  ASSERT_TRUE(WaitUntil([&] { return ts.server->stats().queue_depth == 1; }));

  PlanRequest overflow = queued;
  overflow.id = "overflow";
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(overflow)).ok());

  // Three responses; the rejection races ahead of the planned ones, so
  // collect all and match by id — the rejection echoes the id of the
  // exact request that was refused (peeked before any parse).
  int ok_count = 0;
  int exhausted_count = 0;
  for (int i = 0; i < 3; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    if (response->ok()) {
      ++ok_count;
      EXPECT_TRUE(response->id == "slow" || response->id == "queued");
    } else {
      ++exhausted_count;
      EXPECT_EQ(response->status, "RESOURCE_EXHAUSTED");
      EXPECT_EQ(response->id, "overflow");
      EXPECT_NE(response->error.find("queue full"), std::string::npos);
    }
  }
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(exhausted_count, 1);
  EXPECT_EQ(ts.server->stats().rejected_queue_full, 1);
}

TEST_P(ReactorServerTest, ExpiredQueuedRequestIsCancelled) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 1;
  options.enable_test_hooks = true;
  TestServer ts(options);

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  PlanRequest slow;
  slow.id = "slow";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 300;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  // Queued behind 300 ms of work with a 1 ms deadline: by the time the
  // worker picks it up the deadline is long gone, so it is cancelled
  // without ever running the planner.
  PlanRequest late = slow;
  late.id = "late";
  late.debug_sleep_ms = 0;
  late.deadline_ms = 1;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(late)).ok());

  for (int i = 0; i < 2; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    if (response->id == "slow") {
      EXPECT_TRUE(response->ok());
    } else {
      EXPECT_EQ(response->id, "late");
      EXPECT_EQ(response->status, "DEADLINE_EXCEEDED");
      EXPECT_TRUE(response->plan.empty());
    }
  }
  EXPECT_EQ(ts.server->stats().rejected_deadline, 1);
}

TEST(PlanningServerTest, MalformedRequestKeepsConnectionUsable) {
  TestServer ts;
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(server::WriteFrame(fd->get(), "this is not json").ok());
  Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok());
  Result<PlanResponse> error = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->status, "INVALID_ARGUMENT");

  // A bad request poisons nothing: the next one plans normally.
  PlanRequest request;
  request.id = "after";
  request.tables = {"orders", "lineitem"};
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(request)).ok());
  payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok());
  Result<PlanResponse> response = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok()) << response->status << ": " << response->error;
  EXPECT_EQ(response->id, "after");
}

TEST(PlanningServerTest, OversizedFrameIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  TestServer ts(options);

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  // Header advertises 2 MiB; the server answers from the header alone,
  // never buffering the (unsent) payload.
  const unsigned char header[4] = {0x00, 0x20, 0x00, 0x00};
  ASSERT_TRUE(net::SendAll(fd->get(), header, sizeof(header)).ok());
  Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok());
  Result<PlanResponse> response = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, "INVALID_ARGUMENT");
  EXPECT_NE(response->error.find("frame exceeds"), std::string::npos);

  // ... and the connection is closed afterwards.
  Result<std::string> eof = server::ReadFrame(fd->get(), 64u << 20);
  EXPECT_FALSE(eof.ok());
}

TEST(PlanningServerTest, ConnectionLimitTurnsAwayExtraClients) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer ts(options);

  PlanningClient first = ts.Connect();
  PlanRequest request;
  request.id = "first";
  request.tables = {"orders", "lineitem"};
  Result<PlanResponse> response = first.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok());

  Result<net::UniqueFd> second =
      net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(second.ok());  // the TCP handshake still completes
  Result<std::string> payload = server::ReadFrame(second->get(), 64u << 20);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<PlanResponse> turned_away = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(turned_away.ok());
  EXPECT_EQ(turned_away->status, "UNAVAILABLE");
  EXPECT_EQ(ts.server->stats().connections_rejected, 1);
}

TEST_P(ReactorServerTest, SigtermDrainFinishesInFlightWork) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 2;
  options.enable_test_hooks = true;
  TestServer ts(options);
  server::InstallShutdownSignalHandlers(ts.server.get());

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  PlanRequest slow;
  slow.id = "in-flight";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 200;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  // SIGTERM mid-request: the handler only flips the drain flag, the
  // in-flight plan still completes and flushes before the server stops.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(WaitUntil([&] { return ts.server->draining(); }));

  Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<PlanResponse> response = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok()) << response->status << ": " << response->error;
  EXPECT_EQ(response->id, "in-flight");

  ts.server->Wait();
  server::InstallShutdownSignalHandlers(nullptr);

  // Once drained, the port no longer accepts connections.
  EXPECT_FALSE(net::ConnectTcp("127.0.0.1", ts.server->port()).ok());
  EXPECT_EQ(ts.server->stats().open_connections, 0);
}

TEST_P(ReactorServerTest, DrainRejectsNewRequestsOnLiveConnections) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 1;
  options.enable_test_hooks = true;
  TestServer ts(options);

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  PlanRequest slow;
  slow.id = "survivor";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 300;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  ts.server->Shutdown();
  ASSERT_TRUE(WaitUntil([&] { return ts.server->draining(); }));

  // The connection outlives the drain while its request is in flight,
  // but no new work is admitted on it.
  PlanRequest refused = slow;
  refused.id = "refused";
  refused.debug_sleep_ms = 0;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(refused)).ok());

  bool saw_unavailable = false;
  bool saw_survivor = false;
  for (int i = 0; i < 2; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    if (response->status == "UNAVAILABLE") {
      saw_unavailable = true;
    } else if (response->id == "survivor") {
      EXPECT_TRUE(response->ok());
      saw_survivor = true;
    }
  }
  EXPECT_TRUE(saw_unavailable);
  EXPECT_TRUE(saw_survivor);
  ts.server->Wait();
}

TEST(PlanningServerTest, DrainFlushesTelemetryToDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "raqo_server_telemetry")
          .string();
  std::filesystem::create_directories(dir);

  obs::DefaultTracer().set_enabled(true);
  {
    ServerOptions options;
    options.telemetry_dir = dir;
    TestServer ts(options);
    PlanningClient client = ts.Connect();
    PlanRequest request;
    request.id = "telemetry";
    request.tables = {"orders", "lineitem"};
    Result<PlanResponse> response = client.Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok());
    client.Close();
    ts.server->Shutdown();
    ts.server->Wait();
  }
  obs::DefaultTracer().set_enabled(false);

  // Both exports exist and are valid JSON carrying the server series.
  for (const char* name : {"/metrics.json", "/trace.json"}) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<JsonValue> parsed = ParseJson(buffer.str());
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
  }
  std::ifstream in(dir + std::string("/metrics.json"));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("server.request_us"), std::string::npos);
  EXPECT_NE(buffer.str().find("server.accept"), std::string::npos);
}

// ---------------------------------------------------------------------
// Framing edge cases

TEST(PlanningServerTest, ManyFramesInOneTcpSegmentAllGetAnswered) {
  ServerOptions options;
  options.num_workers = 2;
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  // One send(2) carrying 10 complete frames: the read loop must extract
  // every frame from the single segment, not just the first.
  constexpr int kFrames = 10;
  std::string batch;
  for (int i = 0; i < kFrames; ++i) {
    PlanRequest request;
    request.id = "batch-" + std::to_string(i);
    request.tables = {"orders", "lineitem"};
    batch += server::EncodeFrame(server::SerializePlanRequest(request));
  }
  ASSERT_TRUE(net::SendAll(fd->get(), batch.data(), batch.size()).ok());

  std::vector<bool> seen(kFrames, false);
  for (int i = 0; i < kFrames; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok()) << response->status << ": "
                                << response->error;
    ASSERT_EQ(response->id.rfind("batch-", 0), 0u);
    const int index = std::stoi(response->id.substr(6));
    ASSERT_GE(index, 0);
    ASSERT_LT(index, kFrames);
    EXPECT_FALSE(seen[index]) << "duplicate response " << response->id;
    seen[index] = true;
  }
}

TEST(PlanningServerTest, FrameArrivingByteAtATimeIsReassembled) {
  TestServer ts;
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  net::SetTcpNoDelay(fd->get());

  PlanRequest request;
  request.id = "dribble";
  request.tables = {"orders", "lineitem"};
  const std::string frame =
      server::EncodeFrame(server::SerializePlanRequest(request));
  // Each byte is its own send; the server sees a long run of partial
  // frames (kNeedMore) before the last byte completes it.
  for (char byte : frame) {
    ASSERT_TRUE(net::SendAll(fd->get(), &byte, 1).ok());
  }

  Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<PlanResponse> response = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok()) << response->status << ": " << response->error;
  EXPECT_EQ(response->id, "dribble");
}

TEST_P(ReactorServerTest, PipelinedRequestsComeBackInOrderWithTheirIds) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 1;  // one worker => strictly serial execution
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  constexpr int kPipelined = 6;
  for (int i = 0; i < kPipelined; ++i) {
    PlanRequest request;
    request.id = "pipe-" + std::to_string(i);
    request.tables = {"orders", "lineitem"};
    ASSERT_TRUE(
        server::WriteFrame(fd->get(), SerializePlanRequest(request)).ok());
  }
  // Same connection + one worker: responses arrive in request order,
  // each correlated by its echoed id.
  for (int i = 0; i < kPipelined; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok());
    EXPECT_EQ(response->id, "pipe-" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------
// Multi-tenant quotas and fairness

TEST(PlanningServerTest, TenantInflightCapRejectsWithIdAndSelfHeals) {
  ServerOptions options;
  options.num_workers = 1;
  options.enable_test_hooks = true;
  options.tenant_quotas["capped"].max_inflight = 1;
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());

  PlanRequest slow;
  slow.id = "holder";
  slow.tenant = "capped";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 300;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  // A second request while one is in flight breaches the cap.
  PlanRequest extra = slow;
  extra.id = "over-cap";
  extra.debug_sleep_ms = 0;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(extra)).ok());

  Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<PlanResponse> rejected = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, "RESOURCE_EXHAUSTED");
  EXPECT_EQ(rejected->id, "over-cap");
  EXPECT_NE(rejected->error.find("in-flight cap"), std::string::npos);

  payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok());
  Result<PlanResponse> held = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(held->ok());
  EXPECT_EQ(held->id, "holder");

  // The cap frees up once the holder settles.
  PlanRequest after = extra;
  after.id = "after";
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(after)).ok());
  payload = server::ReadFrame(fd->get(), 64u << 20);
  ASSERT_TRUE(payload.ok());
  Result<PlanResponse> ok = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok()) << ok->status << ": " << ok->error;
  EXPECT_EQ(ok->id, "after");

  const auto tenants = ts.server->tenant_stats();
  ASSERT_EQ(tenants.count("capped"), 1u);
  EXPECT_EQ(tenants.at("capped").admitted, 2);
  EXPECT_EQ(tenants.at("capped").rejected_inflight, 1);
  EXPECT_EQ(tenants.at("capped").responses_ok, 2);
  EXPECT_EQ(tenants.at("capped").inflight, 0);
  EXPECT_EQ(ts.server->stats().rejected_tenant_inflight, 1);
}

TEST(PlanningServerTest, TenantBudgetExhaustionRejectsFurtherRequests) {
  ServerOptions options;
  options.tenant_quotas["paid"].max_dollars = 1e-9;  // one plan blows it
  TestServer ts(options);
  PlanningClient client = ts.Connect();

  PlanRequest request;
  request.id = "first";
  request.tenant = "paid";
  request.tables = {"orders", "lineitem"};
  Result<PlanResponse> first = client.Call(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok()) << first->status << ": " << first->error;
  ASSERT_GT(first->cost.dollars, 1e-9);

  // The first success was charged against the budget, so the tenant is
  // now broke; an identical request is refused at admission.
  request.id = "second";
  Result<PlanResponse> second = client.Call(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, "RESOURCE_EXHAUSTED");
  EXPECT_EQ(second->id, "second");
  EXPECT_NE(second->error.find("budget"), std::string::npos);

  // An unrelated tenant is unaffected.
  request.id = "other";
  request.tenant = "free";
  Result<PlanResponse> other = client.Call(request);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->ok());

  const auto tenants = ts.server->tenant_stats();
  ASSERT_EQ(tenants.count("paid"), 1u);
  EXPECT_EQ(tenants.at("paid").rejected_budget, 1);
  EXPECT_EQ(tenants.at("paid").dollars_spent, first->cost.dollars);
  EXPECT_EQ(ts.server->stats().rejected_tenant_budget, 1);
}

TEST(PlanningServerTest, TenantTableFullRejectsNewTenantNames) {
  ServerOptions options;
  options.max_tenants = 1;  // tenants are tracked lazily, on first use
  TestServer ts(options);
  PlanningClient client = ts.Connect();

  PlanRequest request;
  request.id = "known";
  request.tenant = "first-tenant";
  request.tables = {"orders", "lineitem"};
  Result<PlanResponse> first = client.Call(request);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->ok());

  request.id = "flooder";
  request.tenant = "second-tenant";
  Result<PlanResponse> second = client.Call(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, "RESOURCE_EXHAUSTED");
  EXPECT_EQ(second->id, "flooder");
  EXPECT_NE(second->error.find("tenant table full"), std::string::npos);

  // Known tenants keep working even with the table full.
  request.id = "still-known";
  request.tenant = "first-tenant";
  Result<PlanResponse> again = client.Call(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok());
  EXPECT_EQ(ts.server->stats().rejected_tenant_table_full, 1);
}

TEST(PlanningServerTest, RoundRobinDequeueInterleavesTenantBacklogs) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 16;
  options.enable_test_hooks = true;
  TestServer ts(options);

  Result<net::UniqueFd> flood = net::ConnectTcp("127.0.0.1",
                                                ts.server->port());
  ASSERT_TRUE(flood.ok());
  Result<net::UniqueFd> light = net::ConnectTcp("127.0.0.1",
                                                ts.server->port());
  ASSERT_TRUE(light.ok());

  // Six 30 ms requests pile up behind the single worker...
  constexpr int kFlood = 6;
  constexpr int kSleepMs = 30;
  for (int i = 0; i < kFlood; ++i) {
    PlanRequest request;
    request.id = "flood-" + std::to_string(i);
    request.tenant = "flood";
    request.tables = {"orders", "lineitem"};
    request.debug_sleep_ms = kSleepMs;
    ASSERT_TRUE(
        server::WriteFrame(flood->get(), SerializePlanRequest(request))
            .ok());
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().queue_depth >= kFlood - 1; }));

  // ... then a light tenant's single request arrives. Round-robin puts
  // its sub-queue next in the ring, so it runs after at most one more
  // flood request — not behind the whole backlog (FIFO would charge it
  // the full ~150 ms of queued flood work).
  PlanRequest quick;
  quick.id = "light";
  quick.tenant = "light";
  quick.tables = {"orders", "lineitem"};
  ASSERT_TRUE(
      server::WriteFrame(light->get(), SerializePlanRequest(quick)).ok());

  Result<std::string> payload = server::ReadFrame(light->get(), 64u << 20);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<PlanResponse> response = server::ParsePlanResponse(*payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok()) << response->status << ": " << response->error;
  EXPECT_EQ(response->id, "light");
  // At most the in-flight flood request plus one dequeued ahead of it,
  // with slack for scheduling: far below the 5 * 30 ms FIFO wait.
  EXPECT_LT(response->queue_wait_us, 3.0 * kSleepMs * 1000.0);

  for (int i = 0; i < kFlood; ++i) {
    Result<std::string> drained = server::ReadFrame(flood->get(), 64u << 20);
    ASSERT_TRUE(drained.ok());
  }
}

TEST_P(ReactorServerTest, FloodingTenantDoesNotDegradeLightTenant) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 2;
  options.max_queue = 4;
  options.enable_test_hooks = true;
  // The flood tenant may hold one worker at most; the other worker
  // stays available, so the light tenant's queue wait is bounded.
  options.tenant_quotas["flood"].max_inflight = 1;
  TestServer ts(options);

  const auto light_call = [&](PlanningClient& client, int i) -> double {
    PlanRequest request;
    request.id = "light-" + std::to_string(i);
    request.tenant = "light";
    request.tables = {"orders", "lineitem"};
    request.debug_sleep_ms = 1;
    Result<PlanResponse> response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return 0.0;
    EXPECT_TRUE(response->ok()) << response->status << ": "
                                << response->error;
    return response->queue_wait_us;
  };

  // Uncontended baseline.
  PlanningClient light = ts.Connect();
  constexpr int kLightCalls = 15;
  double baseline_us = 0.0;
  for (int i = 0; i < kLightCalls; ++i) {
    baseline_us += light_call(light, i);
  }
  baseline_us /= kLightCalls;

  // Flood: bursts of pipelined 10 ms requests, 10x the light tenant's
  // one-at-a-time load. The in-flight cap turns the excess into
  // immediate rejections instead of queued work.
  std::atomic<bool> stop{false};
  std::atomic<int> flood_ok{0};
  std::atomic<int> flood_rejected{0};
  std::thread flooder([&] {
    Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1",
                                               ts.server->port());
    ASSERT_TRUE(fd.ok());
    int sequence = 0;
    while (!stop.load(std::memory_order_acquire)) {
      constexpr int kBurst = 10;
      for (int i = 0; i < kBurst; ++i) {
        PlanRequest request;
        request.id = "flood-" + std::to_string(sequence++);
        request.tenant = "flood";
        request.tables = {"orders", "lineitem"};
        request.debug_sleep_ms = 10;
        ASSERT_TRUE(
            server::WriteFrame(fd->get(), SerializePlanRequest(request))
                .ok());
      }
      for (int i = 0; i < kBurst; ++i) {
        Result<std::string> payload = server::ReadFrame(fd->get(),
                                                        64u << 20);
        ASSERT_TRUE(payload.ok()) << payload.status().ToString();
        Result<PlanResponse> response =
            server::ParsePlanResponse(*payload);
        ASSERT_TRUE(response.ok());
        (response->ok() ? flood_ok : flood_rejected).fetch_add(1);
      }
    }
  });

  // Light tenant under flood.
  ASSERT_TRUE(WaitUntil([&] { return flood_rejected.load() > 0; }));
  double contended_us = 0.0;
  for (int i = 0; i < kLightCalls; ++i) {
    contended_us += light_call(light, kLightCalls + i);
  }
  contended_us /= kLightCalls;

  stop.store(true, std::memory_order_release);
  flooder.join();

  // The acceptance bar: never queue-full-rejected, and the mean queue
  // wait stays within 2x of uncontended (a small absolute floor absorbs
  // scheduler noise on sub-millisecond baselines).
  const auto tenants = ts.server->tenant_stats();
  ASSERT_EQ(tenants.count("light"), 1u);
  EXPECT_EQ(tenants.at("light").rejected_queue_full, 0);
  EXPECT_EQ(tenants.at("light").rejected_inflight, 0);
  EXPECT_EQ(tenants.at("light").responses_ok, 2 * kLightCalls);
  EXPECT_LE(contended_us, std::max(2.0 * baseline_us, 2000.0))
      << "baseline " << baseline_us << " us, contended " << contended_us
      << " us";

  // The flood really was a flood: its excess was rejected by quota, not
  // absorbed into shared queues.
  EXPECT_GT(flood_ok.load(), 0);
  EXPECT_GT(flood_rejected.load(), 0);
  ASSERT_EQ(tenants.count("flood"), 1u);
  EXPECT_GT(tenants.at("flood").rejected_inflight, 0);
}

TEST(PlanningServerTest, DrainFlushesPerTenantMetrics) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "raqo_tenant_telemetry")
          .string();
  std::filesystem::create_directories(dir);
  {
    ServerOptions options;
    options.telemetry_dir = dir;
    options.tenant_quotas["acme"].max_dollars = 1e-9;
    TestServer ts(options);
    PlanningClient client = ts.Connect();
    PlanRequest request;
    request.id = "t1";
    request.tenant = "acme";
    request.tables = {"orders", "lineitem"};
    Result<PlanResponse> ok = client.Call(request);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok->ok());
    request.id = "t2";
    Result<PlanResponse> broke = client.Call(request);
    ASSERT_TRUE(broke.ok());
    EXPECT_EQ(broke->status, "RESOURCE_EXHAUSTED");
    client.Close();
    ts.server->Shutdown();
    ts.server->Wait();
  }

  std::ifstream in(dir + std::string("/metrics.json"));
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const char* name :
       {"server.tenant.acme.admitted", "server.tenant.acme.rejected",
        "server.tenant.acme.dollars_spent",
        "server.rejected.tenant_budget"}) {
    EXPECT_NE(buffer.str().find(name), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------
// Client options and response-drop accounting

TEST(PlanningServerTest, ClientRecvTimeoutSurfacesDeadlineExceeded) {
  ServerOptions options;
  options.num_workers = 1;
  options.enable_test_hooks = true;
  TestServer ts(options);

  server::ClientOptions client_options;
  client_options.recv_timeout_ms = 100;
  Result<PlanningClient> client = PlanningClient::Connect(
      "127.0.0.1", ts.server->port(), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  PlanRequest request;
  request.id = "stuck";
  request.tables = {"orders", "lineitem"};
  request.debug_sleep_ms = 2000;  // far past the client's patience
  Result<PlanResponse> response = client->Call(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  // The timed-out connection is closed so a late frame can never be
  // read as the answer to a later call.
  EXPECT_FALSE(client->connected());
}

TEST(PlanningServerTest, ClientStampsItsTenantOnEveryRequest) {
  TestServer ts;
  server::ClientOptions client_options;
  client_options.tenant = "stamped";
  Result<PlanningClient> client = PlanningClient::Connect(
      "127.0.0.1", ts.server->port(), client_options);
  ASSERT_TRUE(client.ok());

  PlanRequest request;
  request.id = "q";
  request.tables = {"orders", "lineitem"};
  Result<PlanResponse> response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok());
  EXPECT_EQ(ts.server->tenant_stats().count("stamped"), 1u);
}

TEST(PlanningServerTest, UndeliverableResponsesCountAsDroppedNotSent) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_write_buffer_bytes = 1;  // no response can ever be buffered
  TestServer ts(options);

  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  for (const char* id : {"drop-1", "drop-2"}) {
    PlanRequest request;
    request.id = id;
    request.tables = {"orders", "lineitem"};
    ASSERT_TRUE(
        server::WriteFrame(fd->get(), SerializePlanRequest(request)).ok());
  }

  // The first completion exceeds the 1-byte cap: dropped, connection
  // closed. The second completes against a vanished connection: also
  // dropped. Neither may inflate responses_sent.
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().responses_dropped == 2; }));
  const server::ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.responses_sent, 0);
  EXPECT_EQ(stats.responses_dropped, 2);
  EXPECT_EQ(stats.requests_admitted, 2);
}

// ---------------------------------------------------------------------
// Multi-reactor sharding

TEST_P(ReactorServerTest, LoopbackStaysBitIdenticalToDirectPlannerCalls) {
  ServerOptions options = OptionsWithReactors();
  options.num_workers = 2;
  TestServer ts(options);
  EXPECT_EQ(ts.server->num_reactors(), GetParam());

  // The ground truth, one function call instead of one socket away.
  const catalog::Catalog& catalog = TestCatalog();
  core::RaqoPlanner direct(&catalog, Models(),
                           resource::ClusterConditions::PaperDefault(),
                           resource::PricingModel(), TestPlannerOptions());
  std::vector<catalog::TableId> tables;
  for (const char* name : {"orders", "lineitem", "customer"}) {
    tables.push_back(*catalog.FindTable(name));
  }
  Result<core::JointPlan> expected = direct.Plan(tables);
  ASSERT_TRUE(expected.ok());
  const std::string expected_plan = expected->plan->ToString(&catalog);

  // Several connections, so with more than one reactor the kernel (or
  // the fd-handoff dealer) spreads them across shards — whichever
  // reactor serves the request, the wire response must match the direct
  // call bit for bit (%.17g doubles round-trip IEEE exactly, and the
  // planner itself is deterministic; see docs/CONCURRENCY.md).
  constexpr int kConnections = 6;
  for (int c = 0; c < kConnections; ++c) {
    PlanningClient client = ts.Connect();
    PlanRequest request;
    request.id = "det-" + std::to_string(c);
    request.sql = "select * from orders, lineitem, customer";
    Result<PlanResponse> response = client.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok())
        << response->status << ": " << response->error;
    EXPECT_EQ(response->id, request.id);
    EXPECT_EQ(response->plan, expected_plan);
    EXPECT_EQ(response->cost.seconds, expected->cost.seconds);
    EXPECT_EQ(response->cost.dollars, expected->cost.dollars);
  }

  // Per-reactor accounting adds up to the global view.
  const std::vector<server::ReactorStats> reactors =
      ts.server->reactor_stats();
  ASSERT_EQ(reactors.size(), static_cast<size_t>(GetParam()));
  int64_t accepted = 0;
  for (const server::ReactorStats& r : reactors) {
    accepted += r.connections_accepted;
  }
  EXPECT_EQ(accepted, ts.server->stats().connections_accepted);
}

TEST(PlanningServerTest, SingleReactorNeverUsesReuseportSharding) {
  ServerOptions options;
  options.num_reactors = 1;
  TestServer ts(options);
  // One reactor is the pre-sharding server: one plain listener, no
  // SO_REUSEPORT, one I/O thread.
  EXPECT_EQ(ts.server->num_reactors(), 1);
  EXPECT_FALSE(ts.server->reuseport_sharding());
  ASSERT_EQ(ts.server->reactor_stats().size(), 1u);
}

// ---------------------------------------------------------------------
// Fault injection (net::Send / net::Recv hooks)

TEST(FaultInjectionTest, ShortAndInterruptedWritesStillDeliverWholeFrames) {
  ServerOptions options;
  options.num_workers = 1;
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  const int client_fd = fd->get();

  // Server-side sends rotate EAGAIN -> EINTR -> 7-byte short write, so a
  // several-hundred-byte response frame needs dozens of syscalls, an
  // EPOLLOUT re-arm on every EAGAIN, and a retry on every EINTR — the
  // partial-write machinery that normally only fires under load.
  std::atomic<int> faulted_sends{0};
  ScriptedFaultInjector injector(
      [&](int target, size_t) {
        if (target == client_fd) return net::FaultAction::PassThrough();
        switch (faulted_sends.fetch_add(1) % 3) {
          case 0:
            return net::FaultAction::Fail(EAGAIN);
          case 1:
            return net::FaultAction::Fail(EINTR);
          default:
            return net::FaultAction::Short(7);
        }
      },
      nullptr);
  net::ScopedFaultInjector scoped(&injector);

  constexpr int kPipelined = 3;
  for (int i = 0; i < kPipelined; ++i) {
    PlanRequest request;
    request.id = "frag-" + std::to_string(i);
    request.tables = {"orders", "lineitem"};
    ASSERT_TRUE(
        server::WriteFrame(fd->get(), SerializePlanRequest(request)).ok());
  }
  for (int i = 0; i < kPipelined; ++i) {
    Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Result<PlanResponse> response = server::ParsePlanResponse(*payload);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok())
        << response->status << ": " << response->error;
    EXPECT_EQ(response->id, "frag-" + std::to_string(i));
  }
  // The frames really were shredded: far more sends than frames.
  EXPECT_GT(faulted_sends.load(), 3 * kPipelined);
  EXPECT_EQ(ts.server->stats().responses_dropped, 0);
}

TEST(FaultInjectionTest, MidFrameResetDropsInFlightResponseAndCleansUp) {
  ServerOptions options;
  options.num_workers = 1;
  options.enable_test_hooks = true;
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  const int client_fd = fd->get();

  // Occupy the worker, then reset the connection out from under it.
  PlanRequest slow;
  slow.id = "doomed";
  slow.tables = {"orders", "lineitem"};
  slow.debug_sleep_ms = 300;
  ASSERT_TRUE(
      server::WriteFrame(fd->get(), SerializePlanRequest(slow)).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().requests_executing == 1; }));

  std::atomic<bool> armed{true};
  ScriptedFaultInjector injector(
      nullptr, [&](int target, size_t) {
        if (target == client_fd ||
            !armed.load(std::memory_order_acquire)) {
          return net::FaultAction::PassThrough();
        }
        return net::FaultAction::Fail(ECONNRESET);
      });
  net::ScopedFaultInjector scoped(&injector);

  // A mid-frame byte triggers the server's recv, which now reports the
  // peer reset: the connection must be torn down immediately, and the
  // in-flight completion must land in responses_dropped — never lost,
  // never delivered to a stale fd.
  const char half_a_header = '\0';
  ASSERT_TRUE(net::SendAll(fd->get(), &half_a_header, 1).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().open_connections == 0; }));
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().responses_dropped == 1; }));
  armed.store(false, std::memory_order_release);

  const server::ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.responses_sent, 0);
  EXPECT_EQ(stats.requests_admitted, 1);
  // Admission state settled: the tenant is not stuck "in flight".
  const auto tenants = ts.server->tenant_stats();
  ASSERT_EQ(tenants.count(""), 1u);
  EXPECT_EQ(tenants.at("").inflight, 0);
}

TEST(FaultInjectionTest, PersistentBackpressureTripsWriteBufferCap) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_write_buffer_bytes = 1024;
  TestServer ts(options);
  Result<net::UniqueFd> fd = net::ConnectTcp("127.0.0.1", ts.server->port());
  ASSERT_TRUE(fd.ok());
  const int client_fd = fd->get();

  // Every server-side send returns EAGAIN, as if the client never read a
  // byte: responses accumulate in the write buffer until the cap trips
  // and the connection is dropped — bounded memory, not an OOM.
  ScriptedFaultInjector injector(
      [&](int target, size_t) {
        return target == client_fd ? net::FaultAction::PassThrough()
                                   : net::FaultAction::Fail(EAGAIN);
      },
      nullptr);
  net::ScopedFaultInjector scoped(&injector);

  for (int i = 0; i < 4; ++i) {
    PlanRequest request;
    request.id = "pressure-" + std::to_string(i);
    request.tables = {"orders", "lineitem"};
    ASSERT_TRUE(
        server::WriteFrame(fd->get(), SerializePlanRequest(request)).ok());
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().responses_dropped >= 1; }));
  ASSERT_TRUE(WaitUntil(
      [&] { return ts.server->stats().open_connections == 0; }));
}

// ---------------------------------------------------------------------
// Protocol fuzzing (seeded, so every failure reproduces)

TEST(ProtocolFuzzTest, PeekTopLevelStringSurvivesRandomBytes) {
  std::mt19937 rng(20260808);
  // Biased toward JSON structure so the scanner's interesting branches
  // (quotes, escapes, nesting) are hit constantly, not once in a blue
  // moon of uniform noise.
  const std::string alphabet = "{}[]\":\\,idtenan 0127.eE+-\n\tq\xff\x00";
  std::string buf;
  for (int iter = 0; iter < 20000; ++iter) {
    const size_t len = rng() % 48;
    buf.clear();
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(rng() % 4 == 0
                        ? static_cast<char>(rng() % 256)
                        : alphabet[rng() % alphabet.size()]);
    }
    // Must never crash, scan out of bounds (ASan), or return something
    // longer than its input.
    EXPECT_LE(server::PeekTopLevelString(buf, "id").size(), buf.size());
    EXPECT_LE(server::PeekTopLevelString(buf, "tenant").size(), buf.size());
  }

  // Mutations of a real request payload: structurally almost-valid JSON.
  const std::string seed = SerializePlanRequest([] {
    PlanRequest request;
    request.id = "fuzz";
    request.tenant = "acme";
    request.tables = {"orders", "lineitem"};
    return request;
  }());
  for (int iter = 0; iter < 20000; ++iter) {
    std::string mutated = seed;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < flips; ++i) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    EXPECT_LE(server::PeekTopLevelString(mutated, "id").size(),
              mutated.size());
    EXPECT_LE(server::PeekTopLevelString(mutated, "tenant").size(),
              mutated.size());
  }
}

TEST(ProtocolFuzzTest, MutatedTruncatedAndSplicedFramesNeverWedgeTheServer) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_frame_bytes = 1 << 16;
  TestServer ts(options);

  PlanRequest seed_request;
  seed_request.id = "seed";
  seed_request.tables = {"orders", "lineitem"};
  const std::string frame =
      server::EncodeFrame(SerializePlanRequest(seed_request));

  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 60; ++iter) {
    Result<net::UniqueFd> fd =
        net::ConnectTcp("127.0.0.1", ts.server->port());
    ASSERT_TRUE(fd.ok()) << "iteration " << iter << ": "
                         << fd.status().ToString();
    std::string bytes = frame;
    switch (iter % 3) {
      case 0: {  // byte flips, header included: garbage length prefixes
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int i = 0; i < flips; ++i) {
          bytes[rng() % bytes.size()] = static_cast<char>(rng() % 256);
        }
        break;
      }
      case 1:  // truncation: the server is left holding a partial frame
        bytes.resize(rng() % bytes.size());
        break;
      default:  // splice: a frame restarts mid-frame
        bytes = bytes.substr(0, 1 + rng() % (bytes.size() - 1)) + frame;
        break;
    }
    // Fire and abandon: the abrupt close on a half-parsed stream is part
    // of the attack. Send errors (server already closed a poisoned
    // connection) are expected, not failures.
    (void)net::SendAll(fd->get(), bytes.data(), bytes.size());

    if (iter % 10 == 9) {
      // The server must still answer clean traffic correctly mid-storm.
      PlanningClient client = ts.Connect();
      PlanRequest request;
      request.id = "clean-" + std::to_string(iter);
      request.tables = {"orders", "lineitem"};
      Result<PlanResponse> response = client.Call(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_TRUE(response->ok())
          << response->status << ": " << response->error;
      EXPECT_EQ(response->id, request.id);
    }
  }
  // Still alive, and the drain still completes cleanly after the storm.
  ts.server->Shutdown();
  ts.server->Wait();
  EXPECT_EQ(ts.server->stats().open_connections, 0);
}

TEST(ProtocolFuzzTest, CorruptPayloadNeverMisFramesTheNextRequest) {
  ServerOptions options;
  options.num_workers = 1;  // serial execution => ordered responses
  TestServer ts(options);

  PlanRequest seed_request;
  seed_request.id = "mutant";
  seed_request.tables = {"orders", "lineitem"};
  const std::string seed = SerializePlanRequest(seed_request);

  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 40; ++iter) {
    Result<net::UniqueFd> fd =
        net::ConnectTcp("127.0.0.1", ts.server->port());
    ASSERT_TRUE(fd.ok());

    // A correctly framed but byte-corrupted payload, then a valid
    // request on the same connection. However the server disposes of
    // the mutant (plans it, rejects it, fails the parse), it must
    // consume exactly one frame: the tail request always comes back
    // intact, with its own id.
    std::string mutated = seed;
    const int flips = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < flips; ++i) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    PlanRequest tail;
    tail.id = "tail-" + std::to_string(iter);
    tail.tables = {"orders", "lineitem"};
    const std::string both = server::EncodeFrame(mutated) +
                             server::EncodeFrame(SerializePlanRequest(tail));
    ASSERT_TRUE(net::SendAll(fd->get(), both.data(), both.size()).ok());

    bool saw_tail = false;
    for (int i = 0; i < 2; ++i) {
      Result<std::string> payload = server::ReadFrame(fd->get(), 64u << 20);
      ASSERT_TRUE(payload.ok())
          << "iteration " << iter << ": " << payload.status().ToString();
      Result<PlanResponse> response = server::ParsePlanResponse(*payload);
      ASSERT_TRUE(response.ok());
      if (response->id == tail.id) {
        EXPECT_TRUE(response->ok())
            << response->status << ": " << response->error;
        saw_tail = true;
      }
    }
    EXPECT_TRUE(saw_tail) << "iteration " << iter;
  }
}

// ---------------------------------------------------------------------
// Cache dump/load frames and durable restart

core::CachedResourcePlan TestCachePlan(double key, double larger,
                                       double cost) {
  core::CachedResourcePlan plan;
  plan.key_gb = key;
  plan.larger_gb = larger;
  plan.cost = cost;
  plan.config = resource::ResourceConfig(4.0, 8.0);
  return plan;
}

/// Canonical byte form of a cache's whole content — equality of two of
/// these is the "replica is bit-identical" acceptance bar.
std::string CanonicalCacheDump(const core::ResourcePlanCache& cache) {
  std::string out;
  for (const core::CacheEntryRecord& entry : cache.DumpEntries()) {
    out += persist::SerializeCacheEntry(entry.model, entry.plan);
    out += '\n';
  }
  return out;
}

TEST(ProtocolTest, CacheDumpRequestRoundTrips) {
  PlanRequest request;
  request.id = "dump-7";
  request.type = "cache_dump";
  request.cache_offset = 1024;
  request.cache_limit = 128;

  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, "cache_dump");
  EXPECT_EQ(parsed->cache_version, server::kCacheWireVersion);
  EXPECT_EQ(parsed->cache_offset, 1024);
  EXPECT_EQ(parsed->cache_limit, 128);
}

TEST(ProtocolTest, CacheLoadRequestRoundTripsEntriesByteForByte) {
  PlanRequest request;
  request.type = "cache_load";
  request.cache_entries.push_back(
      {"smj \"q\"", TestCachePlan(0.1 + 0.2, 123.45600000000013, 1e-300)});
  request.cache_entries.push_back({"bhj", TestCachePlan(42.0, 99.5, 7.25)});

  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->cache_entries.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    // The wire uses the same entry codec as the journal, so equality is
    // checkable at the byte level, doubles included.
    EXPECT_EQ(persist::SerializeCacheEntry(parsed->cache_entries[i].model,
                                           parsed->cache_entries[i].plan),
              persist::SerializeCacheEntry(request.cache_entries[i].model,
                                           request.cache_entries[i].plan));
  }
}

TEST(ProtocolTest, CacheResponseRoundTrips) {
  PlanResponse response;
  response.id = "dump-7";
  response.has_cache = true;
  response.cache_version = server::kCacheWireVersion;
  response.cache_total = 42;
  response.cache_offset = 17;
  response.cache_entries.push_back({"smj", TestCachePlan(1.5, 8.0, 3.0)});

  Result<PlanResponse> parsed =
      server::ParsePlanResponse(server::SerializePlanResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok());
  EXPECT_TRUE(parsed->has_cache);
  EXPECT_EQ(parsed->cache_version, server::kCacheWireVersion);
  EXPECT_EQ(parsed->cache_total, 42);
  EXPECT_EQ(parsed->cache_offset, 17);
  ASSERT_EQ(parsed->cache_entries.size(), 1u);
  EXPECT_EQ(parsed->cache_entries[0].model, "smj");
  EXPECT_EQ(parsed->cache_entries[0].plan.key_gb, 1.5);
}

TEST(ProtocolTest, OversizedCacheChunkIsRejectedAtParse) {
  PlanRequest request;
  request.type = "cache_load";
  for (size_t i = 0; i <= server::kMaxCacheChunkEntries; ++i) {
    request.cache_entries.push_back(
        {"smj", TestCachePlan(static_cast<double>(i), 8.0, 1.0)});
  }
  // One entry over the cap: the parse itself must refuse, before any
  // server-side allocation proportional to the claimed chunk.
  Result<PlanRequest> parsed =
      server::ParsePlanRequest(server::SerializePlanRequest(request));
  EXPECT_FALSE(parsed.ok());
}

TEST(PlanningServerTest, CacheVersionMismatchIsRejected) {
  TestServer ts;
  PlanningClient client = ts.Connect();

  PlanRequest request;
  request.id = "vmm";
  request.type = "cache_dump";
  request.cache_version = server::kCacheWireVersion + 7;
  Result<PlanResponse> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->status, server::kWireFailedPrecondition);
  EXPECT_EQ(response->id, "vmm");
}

TEST(PlanningServerTest, UnknownRequestTypeIsRejected) {
  TestServer ts;
  PlanningClient client = ts.Connect();

  PlanRequest request;
  request.id = "bogus";
  request.type = "cache_explode";
  Result<PlanResponse> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->status, server::kWireInvalidArgument);
}

TEST(PlanningServerTest, ColdReplicaWarmsFromPeerOverTheWire) {
  TestServer warm;
  TestServer cold;
  PlanningClient warm_client = warm.Connect();
  PlanningClient cold_client = cold.Connect();

  // Populate the warm node's shared cache with real planning work.
  PlanRequest plan_request;
  plan_request.id = "warmup";
  plan_request.tables = {"orders", "lineitem", "customer"};
  Result<PlanResponse> planned = warm_client.Call(plan_request);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_TRUE(planned->ok()) << planned->status << ": " << planned->error;
  ASSERT_GT(warm.service.shared_cache()->entry_count(), 0);

  // Chunk size 1 forces the pagination loop through every entry.
  Result<int64_t> copied =
      server::WarmCacheFromPeer(warm_client, cold_client, 1);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(*copied, warm.service.shared_cache()->entry_count());

  // The replica's cache is byte-identical to the peer's...
  EXPECT_EQ(CanonicalCacheDump(*cold.service.shared_cache()),
            CanonicalCacheDump(*warm.service.shared_cache()));

  // ...and immediately useful: the same query on the cold node hits it.
  Result<PlanResponse> replayed = cold_client.Call(plan_request);
  ASSERT_TRUE(replayed.ok());
  ASSERT_TRUE(replayed->ok()) << replayed->status << ": "
                              << replayed->error;
  EXPECT_GT(cold.service.shared_cache_stats().hits, 0);
  EXPECT_EQ(replayed->plan, planned->plan);
}

TEST(PlanningServerTest, PersistDirSurvivesServerRestart) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "raqo_server_persist")
          .string();
  std::filesystem::remove_all(dir);
  ServerOptions options;
  options.persist_dir = dir;
  options.persist_fsync = persist::FsyncPolicy::kEachRecord;

  PlanRequest plan_request;
  plan_request.id = "before-restart";
  plan_request.tables = {"orders", "lineitem", "customer"};

  std::string before;
  int64_t entries_before = 0;
  {
    TestServer ts(options);
    PlanningClient client = ts.Connect();
    Result<PlanResponse> planned = client.Call(plan_request);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    ASSERT_TRUE(planned->ok()) << planned->status << ": "
                               << planned->error;
    entries_before = ts.service.shared_cache()->entry_count();
    ASSERT_GT(entries_before, 0);
    before = CanonicalCacheDump(*ts.service.shared_cache());
    ts.server->Shutdown();
    ts.server->Wait();
  }

  // A "restarted node": fresh service, fresh cache, same data dir.
  TestServer ts(options);
  ASSERT_NE(ts.server->persistence(), nullptr);
  const persist::RecoveryStats recovered =
      ts.server->persistence()->recovery_stats();
  EXPECT_EQ(recovered.snapshot_entries + recovered.journal_records,
            entries_before);
  EXPECT_FALSE(recovered.torn_tail);
  EXPECT_EQ(CanonicalCacheDump(*ts.service.shared_cache()), before);

  // Pre-restart hit rate is available immediately: the first query after
  // recovery hits the cache instead of re-deriving its plans.
  PlanningClient client = ts.Connect();
  PlanRequest again = plan_request;
  again.id = "after-restart";
  Result<PlanResponse> replayed = client.Call(again);
  ASSERT_TRUE(replayed.ok());
  ASSERT_TRUE(replayed->ok()) << replayed->status << ": "
                              << replayed->error;
  EXPECT_GT(ts.service.shared_cache_stats().hits, 0);

  ts.server->Shutdown();
  ts.server->Wait();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace raqo
