#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "common/rng.h"
#include "plan/cardinality.h"
#include "plan/plan_builder.h"
#include "plan/plan_node.h"
#include "plan/table_set.h"

namespace raqo::plan {
namespace {

using catalog::TableId;

TEST(TableSetTest, BasicOperations) {
  TableSet s;
  EXPECT_TRUE(s.Empty());
  s.Add(3);
  s.Add(70);  // second word
  EXPECT_EQ(s.Count(), 2);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a = TableSet::FromVector({1, 2, 3});
  TableSet b = TableSet::FromVector({3, 4});
  EXPECT_EQ(a.Union(b).Count(), 4);
  EXPECT_EQ(a.Intersect(b).ToVector(), (std::vector<TableId>{3}));
  EXPECT_EQ(a.Minus(b).ToVector(), (std::vector<TableId>{1, 2}));
  EXPECT_TRUE(TableSet::FromVector({1, 2}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(TableSet::Of(9).Intersects(a));
}

TEST(TableSetTest, CrossWordBoundary) {
  TableSet s = TableSet::FromVector({63, 64, 127});
  EXPECT_EQ(s.Count(), 3);
  EXPECT_EQ(s.ToVector(), (std::vector<TableId>{63, 64, 127}));
  TableSet t = TableSet::Of(64);
  EXPECT_TRUE(t.IsSubsetOf(s));
  EXPECT_EQ(s.Minus(t).Count(), 2);
}

TEST(TableSetTest, HashDistinguishesSets) {
  EXPECT_NE(TableSet::Of(1).Hash(), TableSet::Of(2).Hash());
  EXPECT_EQ(TableSet::FromVector({1, 2}).Hash(),
            TableSet::FromVector({2, 1}).Hash());
}

TEST(TableSetTest, ToStringFormat) {
  EXPECT_EQ(TableSet::FromVector({0, 3, 7}).ToString(), "{0, 3, 7}");
  EXPECT_EQ(TableSet().ToString(), "{}");
}

TEST(PlanNodeTest, ScanLeaf) {
  auto scan = PlanNode::MakeScan(5);
  EXPECT_TRUE(scan->is_scan());
  EXPECT_EQ(scan->table(), 5);
  EXPECT_EQ(scan->NumJoins(), 0);
  EXPECT_EQ(scan->tables().ToVector(), (std::vector<TableId>{5}));
}

TEST(PlanNodeTest, JoinTreeStructure) {
  auto join = PlanNode::MakeJoin(
      JoinImpl::kBroadcastHashJoin,
      PlanNode::MakeJoin(JoinImpl::kSortMergeJoin, PlanNode::MakeScan(0),
                         PlanNode::MakeScan(1)),
      PlanNode::MakeScan(2));
  EXPECT_EQ(join->NumJoins(), 2);
  EXPECT_EQ(join->tables().Count(), 3);
  EXPECT_EQ(join->impl(), JoinImpl::kBroadcastHashJoin);
  EXPECT_EQ(join->left()->impl(), JoinImpl::kSortMergeJoin);
  EXPECT_EQ(join->LeafOrder(), (std::vector<TableId>{0, 1, 2}));
}

TEST(PlanNodeTest, CloneIsDeepAndEqual) {
  auto join = PlanNode::MakeJoin(JoinImpl::kSortMergeJoin,
                                 PlanNode::MakeScan(0), PlanNode::MakeScan(1));
  join->set_resources(resource::ResourceConfig(4, 10));
  auto copy = join->Clone();
  EXPECT_TRUE(join->StructurallyEquals(*copy));
  ASSERT_TRUE(copy->resources().has_value());
  EXPECT_EQ(*copy->resources(), resource::ResourceConfig(4, 10));
  // Mutating the copy leaves the original untouched.
  copy->set_impl(JoinImpl::kBroadcastHashJoin);
  EXPECT_EQ(join->impl(), JoinImpl::kSortMergeJoin);
  EXPECT_FALSE(join->StructurallyEquals(*copy));
}

TEST(PlanNodeTest, VisitJoinsIsPostOrder) {
  auto plan = PlanNode::MakeJoin(
      JoinImpl::kSortMergeJoin,
      PlanNode::MakeJoin(JoinImpl::kBroadcastHashJoin, PlanNode::MakeScan(0),
                         PlanNode::MakeScan(1)),
      PlanNode::MakeScan(2));
  std::vector<int> sizes;
  plan->VisitJoins(
      [&](const PlanNode& j) { sizes.push_back(j.tables().Count()); });
  EXPECT_EQ(sizes, (std::vector<int>{2, 3}));
}

TEST(PlanNodeTest, ToStringWithCatalog) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  TableId orders = *cat.FindTable("orders");
  TableId lineitem = *cat.FindTable("lineitem");
  auto plan =
      PlanNode::MakeJoin(JoinImpl::kSortMergeJoin,
                         PlanNode::MakeScan(orders),
                         PlanNode::MakeScan(lineitem));
  EXPECT_EQ(plan->ToString(&cat), "SMJ(orders, lineitem)");
  EXPECT_EQ(plan->ToString(nullptr),
            "SMJ(t" + std::to_string(orders) + ", t" +
                std::to_string(lineitem) + ")");
}

TEST(PlanNodeTest, ReplaceAndTakeChildren) {
  auto join = PlanNode::MakeJoin(JoinImpl::kSortMergeJoin,
                                 PlanNode::MakeScan(0), PlanNode::MakeScan(1));
  auto left = join->TakeLeft();
  auto right = join->TakeRight();
  join->ReplaceLeft(std::move(right));
  join->ReplaceRight(std::move(left));
  EXPECT_EQ(join->LeafOrder(), (std::vector<TableId>{1, 0}));
  EXPECT_EQ(join->tables().Count(), 2);
}

TEST(CardinalityTest, SingleTable) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  CardinalityEstimator est(&cat);
  TableId orders = *cat.FindTable("orders");
  RelationStats stats = est.Estimate(TableSet::Of(orders));
  EXPECT_DOUBLE_EQ(stats.rows, 1'500'000.0);
  EXPECT_DOUBLE_EQ(stats.row_bytes, 110.0);
}

TEST(CardinalityTest, ForeignKeyJoinKeepsFactCardinality) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  CardinalityEstimator est(&cat);
  TableSet both = TableSet::FromVector(
      {*cat.FindTable("orders"), *cat.FindTable("lineitem")});
  RelationStats stats = est.Estimate(both);
  // |lineitem join orders| = |lineitem| under FK selectivity.
  EXPECT_NEAR(stats.rows, 6'000'000.0, 1.0);
  EXPECT_DOUBLE_EQ(stats.row_bytes, 240.0);  // widths add up
}

TEST(CardinalityTest, MemoizationWorks) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  CardinalityEstimator est(&cat);
  TableSet s = TableSet::FromVector(
      {*cat.FindTable("orders"), *cat.FindTable("customer")});
  est.Estimate(s);
  const size_t after_first = est.cache_size();
  est.Estimate(s);
  EXPECT_EQ(est.cache_size(), after_first);
}

TEST(CardinalityTest, JoinStatsIdentifiesSmallerSide) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  CardinalityEstimator est(&cat);
  auto plan = PlanNode::MakeJoin(
      JoinImpl::kSortMergeJoin, PlanNode::MakeScan(*cat.FindTable("orders")),
      PlanNode::MakeScan(*cat.FindTable("lineitem")));
  JoinInputStats stats = est.JoinStats(*plan);
  EXPECT_LT(stats.smaller_bytes(), stats.larger_bytes());
  EXPECT_DOUBLE_EQ(stats.smaller_bytes(), stats.left.bytes());
  EXPECT_GT(stats.output.rows, 0.0);
}

TEST(PlanBuilderTest, LeftDeepShape) {
  Result<std::unique_ptr<PlanNode>> plan =
      BuildLeftDeep({0, 1, 2, 3}, JoinImpl::kSortMergeJoin);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->NumJoins(), 3);
  EXPECT_EQ((*plan)->LeafOrder(), (std::vector<TableId>{0, 1, 2, 3}));
  // Left-deep: right child of every join is a scan.
  (*plan)->VisitJoins([](const PlanNode& j) {
    EXPECT_TRUE(j.right()->is_scan());
  });
}

TEST(PlanBuilderTest, PerJoinImpls) {
  Result<std::unique_ptr<PlanNode>> plan = BuildLeftDeep(
      {0, 1, 2},
      {JoinImpl::kBroadcastHashJoin, JoinImpl::kSortMergeJoin});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->impl(), JoinImpl::kSortMergeJoin);
  EXPECT_EQ((*plan)->left()->impl(), JoinImpl::kBroadcastHashJoin);
}

TEST(PlanBuilderTest, RejectsBadInput) {
  EXPECT_FALSE(BuildLeftDeep({0}, JoinImpl::kSortMergeJoin).ok());
  EXPECT_FALSE(BuildLeftDeep({0, 0}, JoinImpl::kSortMergeJoin).ok());
  EXPECT_FALSE(BuildLeftDeep({0, 1}, std::vector<JoinImpl>{}).ok());
}

TEST(PlanBuilderTest, RandomPlanCoversQueryAndAvoidsCrossProducts) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, catalog::TpchQuery::kAll);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Result<std::unique_ptr<PlanNode>> plan =
        BuildRandomPlan(cat, tables, rng);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(ValidatePlan(cat, **plan, tables).ok());
    // TPC-H is connected, so no random plan should need a cross product.
    EXPECT_TRUE(ValidatePlan(cat, **plan, tables, true).ok());
  }
}

TEST(PlanBuilderTest, ValidateCatchesMismatch) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  auto plan = PlanNode::MakeScan(0);
  EXPECT_FALSE(ValidatePlan(cat, *plan, {0, 1}).ok());
  EXPECT_TRUE(ValidatePlan(cat, *plan, {0}).ok());
}

TEST(PlanBuilderTest, ValidateDetectsCrossProduct) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  TableId customer = *cat.FindTable("customer");
  TableId lineitem = *cat.FindTable("lineitem");
  // customer-lineitem has no direct join edge in TPC-H.
  auto plan = PlanNode::MakeJoin(JoinImpl::kSortMergeJoin,
                                 PlanNode::MakeScan(customer),
                                 PlanNode::MakeScan(lineitem));
  EXPECT_TRUE(ValidatePlan(cat, *plan, {customer, lineitem}, false).ok());
  EXPECT_FALSE(ValidatePlan(cat, *plan, {customer, lineitem}, true).ok());
}

}  // namespace
}  // namespace raqo::plan
