#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/random_schema.h"
#include "catalog/table.h"
#include "catalog/tpch.h"

namespace raqo::catalog {
namespace {

TEST(TableDefTest, SizeHelpers) {
  TableDef t{"t", 1000.0, 1024.0};
  EXPECT_DOUBLE_EQ(t.total_bytes(), 1024.0 * 1000.0);
  EXPECT_NEAR(t.total_gb(), 1000.0 / 1024.0 / 1024.0, 1e-12);
  EXPECT_DOUBLE_EQ(GbToBytes(1.0), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(BytesToGb(GbToBytes(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(MbToBytes(1.0), 1024.0 * 1024.0);
}

TEST(CatalogTest, AddAndFindTables) {
  Catalog cat;
  Result<TableId> a = cat.AddTable({"alpha", 100, 50});
  Result<TableId> b = cat.AddTable({"beta", 200, 60});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cat.num_tables(), 2u);
  EXPECT_EQ(cat.table(*a).name, "alpha");
  EXPECT_EQ(*cat.FindTable("beta"), *b);
  EXPECT_FALSE(cat.FindTable("gamma").ok());
}

TEST(CatalogTest, RejectsBadTables) {
  Catalog cat;
  EXPECT_FALSE(cat.AddTable({"", 10, 10}).ok());
  EXPECT_FALSE(cat.AddTable({"x", 0, 10}).ok());
  EXPECT_FALSE(cat.AddTable({"x", 10, -1}).ok());
  ASSERT_TRUE(cat.AddTable({"x", 10, 10}).ok());
  EXPECT_FALSE(cat.AddTable({"x", 10, 10}).ok());  // duplicate name
}

TEST(CatalogTest, AddJoinValidates) {
  Catalog cat;
  TableId a = *cat.AddTable({"a", 10, 10});
  TableId b = *cat.AddTable({"b", 10, 10});
  EXPECT_TRUE(cat.AddJoin(a, b, 0.1).ok());
  EXPECT_FALSE(cat.AddJoin(a, 99, 0.1).ok());
  EXPECT_FALSE(cat.AddJoin(a, a, 0.1).ok());
  EXPECT_FALSE(cat.AddJoin(a, b, 0.0).ok());
  EXPECT_FALSE(cat.AddJoin(a, b, 1.5).ok());
}

TEST(JoinGraphTest, EdgesAndNeighbors) {
  JoinGraph g;
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.25).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // undirected
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_DOUBLE_EQ(g.EdgeSelectivity(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(g.EdgeSelectivity(0, 2), 1.0);  // cross product
  EXPECT_EQ(g.Neighbors(1), (std::vector<TableId>{0, 2}));
}

TEST(JoinGraphTest, Connectivity) {
  JoinGraph g;
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  EXPECT_TRUE(g.IsConnected({0, 1}));
  EXPECT_TRUE(g.IsConnected({2, 3}));
  EXPECT_FALSE(g.IsConnected({0, 1, 2, 3}));
  EXPECT_TRUE(g.IsConnected({0}));
  EXPECT_TRUE(g.IsConnected({}));
}

TEST(TpchTest, SchemaShape) {
  Catalog cat = BuildTpchCatalog(100.0);
  EXPECT_EQ(cat.num_tables(), 8u);
  // lineitem at SF100 is roughly the 77 GB the paper reports.
  TableId lineitem = *cat.FindTable("lineitem");
  EXPECT_NEAR(cat.table(lineitem).total_gb(), 72.6, 5.0);
  // orders is ~15 GB at SF100.
  TableId orders = *cat.FindTable("orders");
  EXPECT_GT(cat.table(orders).total_gb(), 10.0);
  EXPECT_LT(cat.table(orders).total_gb(), 20.0);
  // nation/region do not scale.
  EXPECT_EQ(cat.table(*cat.FindTable("nation")).row_count, 25.0);
  EXPECT_EQ(cat.table(*cat.FindTable("region")).row_count, 5.0);
}

TEST(TpchTest, ForeignKeySelectivities) {
  Catalog cat = BuildTpchCatalog(1.0);
  TableId lineitem = *cat.FindTable("lineitem");
  TableId orders = *cat.FindTable("orders");
  // FK selectivity = 1/|orders| so |lineitem x orders| = |lineitem|.
  EXPECT_DOUBLE_EQ(cat.join_graph().EdgeSelectivity(lineitem, orders),
                   1.0 / 1'500'000.0);
}

TEST(TpchTest, QueriesAreConnected) {
  Catalog cat = BuildTpchCatalog(100.0);
  for (TpchQuery q : {TpchQuery::kQ12, TpchQuery::kQ3, TpchQuery::kQ2,
                      TpchQuery::kAll}) {
    Result<std::vector<TableId>> tables = TpchQueryTables(cat, q);
    ASSERT_TRUE(tables.ok()) << TpchQueryName(q);
    EXPECT_TRUE(cat.join_graph().IsConnected(*tables)) << TpchQueryName(q);
  }
}

TEST(TpchTest, QuerySizesMatchPaper) {
  Catalog cat = BuildTpchCatalog(100.0);
  EXPECT_EQ(TpchQueryTables(cat, TpchQuery::kQ12)->size(), 2u);  // 1 join
  EXPECT_EQ(TpchQueryTables(cat, TpchQuery::kQ3)->size(), 3u);   // 2 joins
  EXPECT_EQ(TpchQueryTables(cat, TpchQuery::kQ2)->size(), 4u);   // 3 joins
  EXPECT_EQ(TpchQueryTables(cat, TpchQuery::kAll)->size(), 8u);
}

TEST(RandomSchemaTest, GeneratesWithinBounds) {
  RandomSchemaOptions options;
  options.num_tables = 50;
  options.seed = 99;
  Result<Catalog> cat = BuildRandomCatalog(options);
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_tables(), 50u);
  for (TableId id : cat->AllTableIds()) {
    const TableDef& t = cat->table(id);
    EXPECT_GE(t.row_bytes, 100.0);
    EXPECT_LE(t.row_bytes, 200.0);
    EXPECT_GE(t.row_count, 100'000.0);
    EXPECT_LE(t.row_count, 2'000'000.0);
  }
}

TEST(RandomSchemaTest, WholeSchemaIsConnected) {
  RandomSchemaOptions options;
  options.num_tables = 100;
  Result<Catalog> cat = BuildRandomCatalog(options);
  ASSERT_TRUE(cat.ok());
  EXPECT_TRUE(cat->join_graph().IsConnected(cat->AllTableIds()));
}

TEST(RandomSchemaTest, Deterministic) {
  RandomSchemaOptions options;
  options.num_tables = 10;
  options.seed = 4;
  Catalog a = *BuildRandomCatalog(options);
  Catalog b = *BuildRandomCatalog(options);
  for (TableId id : a.AllTableIds()) {
    EXPECT_DOUBLE_EQ(a.table(id).row_count, b.table(id).row_count);
    EXPECT_DOUBLE_EQ(a.table(id).row_bytes, b.table(id).row_bytes);
  }
  EXPECT_EQ(a.join_graph().edges().size(), b.join_graph().edges().size());
}

TEST(RandomSchemaTest, RejectsBadOptions) {
  RandomSchemaOptions options;
  options.num_tables = 0;
  EXPECT_FALSE(BuildRandomCatalog(options).ok());
  options.num_tables = 5;
  options.min_rows = 10;
  options.max_rows = 5;
  EXPECT_FALSE(BuildRandomCatalog(options).ok());
}

TEST(RandomQueryTest, GrowsConnectedQueries) {
  RandomSchemaOptions options;
  options.num_tables = 100;
  Catalog cat = *BuildRandomCatalog(options);
  for (int n : {2, 8, 30, 100}) {
    Result<std::vector<TableId>> q = RandomQueryTables(cat, n, 11);
    ASSERT_TRUE(q.ok()) << n;
    EXPECT_EQ(q->size(), static_cast<size_t>(n));
    EXPECT_TRUE(cat.join_graph().IsConnected(*q)) << n;
  }
  EXPECT_FALSE(RandomQueryTables(cat, 0, 1).ok());
  EXPECT_FALSE(RandomQueryTables(cat, 101, 1).ok());
}

}  // namespace
}  // namespace raqo::catalog
