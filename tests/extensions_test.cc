#include <gtest/gtest.h>

#include <cmath>

#include "catalog/tpch.h"
#include "core/raqo_planner.h"
#include "core/resource_planner.h"
#include "core/robust.h"
#include "core/search_space.h"
#include "cost/model_eval.h"
#include "plan/plan_builder.h"
#include "plan/plan_dot.h"
#include "rules/rule_based.h"
#include "sim/profile_runner.h"
#include "sim/scheduler.h"

namespace raqo {
namespace {

using catalog::TableId;
using catalog::TpchQuery;
using resource::ClusterConditions;
using resource::ResourceConfig;

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

// ---------------------------------------------------------------------
// Accelerated hill climbing

double FarBowl(const ResourceConfig& c) {
  // Optimum far from the start (the cluster minimum).
  const double dcs = c.container_size_gb() - 90.0;
  const double dnc = c.num_containers() - 80'000.0;
  return dcs * dcs + 1e-6 * dnc * dnc + 3.0;
}

TEST(AcceleratedHillClimbTest, FindsConvexOptimum) {
  core::AcceleratedHillClimbResourcePlanner planner;
  ClusterConditions cluster = ClusterConditions::PaperDefault();
  auto bowl = [](const ResourceConfig& c) {
    const double dcs = c.container_size_gb() - 6.0;
    const double dnc = c.num_containers() - 40.0;
    return dcs * dcs + 0.01 * dnc * dnc + 5.0;
  };
  Result<core::ResourcePlanResult> r = planner.PlanResources(bowl, cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->config, ResourceConfig(6, 40));
  EXPECT_DOUBLE_EQ(r->cost, 5.0);
}

TEST(AcceleratedHillClimbTest, LogarithmicOnHugeGrids) {
  // 100 GB x 100K containers, optimum ~(90, 80000): the plain climber
  // needs ~80K iterations; the accelerated one only O(log) per leg.
  ClusterConditions cluster = ClusterConditions::WithMax(100, 100'000);
  core::AcceleratedHillClimbResourcePlanner fast;
  core::HillClimbResourcePlanner slow;
  Result<core::ResourcePlanResult> f = fast.PlanResources(FarBowl, cluster);
  Result<core::ResourcePlanResult> s = slow.PlanResources(FarBowl, cluster);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_LT(f->configs_explored, 2'000);
  EXPECT_GT(s->configs_explored, 50'000);
  // Both land near the optimum.
  EXPECT_NEAR(f->config.container_size_gb(), 90.0, 1.0);
  EXPECT_NEAR(f->config.num_containers(), 80'000.0, 2'000.0);
  EXPECT_LE(f->cost, s->cost * 1.05);
}

TEST(AcceleratedHillClimbTest, StaysOnGrid) {
  ClusterConditions cluster = *ClusterConditions::Create(
      ResourceConfig(1, 5), ResourceConfig(10, 500), ResourceConfig(1, 5));
  core::AcceleratedHillClimbResourcePlanner planner;
  auto objective = [](const ResourceConfig& c) {
    return std::fabs(c.num_containers() - 333.0) + c.container_size_gb();
  };
  Result<core::ResourcePlanResult> r =
      planner.PlanResources(objective, cluster);
  ASSERT_TRUE(r.ok());
  // nc must be 5-aligned: the nearest grid points to 333 are 330/335.
  const double rem = std::fmod(r->config.num_containers() - 5.0, 5.0);
  EXPECT_NEAR(rem, 0.0, 1e-9);
  EXPECT_NEAR(r->config.num_containers(), 335.0, 5.0);
}

TEST(AcceleratedHillClimbTest, InfeasibleEverywhereFails) {
  core::AcceleratedHillClimbResourcePlanner planner;
  auto infeasible = [](const ResourceConfig&) {
    return std::numeric_limits<double>::infinity();
  };
  EXPECT_TRUE(
      planner.PlanResources(infeasible, ClusterConditions::WithMax(2, 2))
          .status()
          .IsFailedPrecondition());
}

TEST(AcceleratedHillClimbTest, AvailableThroughEvaluatorOptions) {
  core::RaqoEvaluatorOptions options;
  options.search = core::ResourceSearch::kAcceleratedHillClimb;
  core::RaqoCostEvaluator eval(Models(),
                               ClusterConditions::WithMax(100, 100'000),
                               resource::PricingModel(), options);
  optimizer::JoinContext ctx;
  ctx.impl = plan::JoinImpl::kSortMergeJoin;
  ctx.left_bytes = catalog::GbToBytes(3);
  ctx.right_bytes = catalog::GbToBytes(77);
  Result<optimizer::OperatorCost> cost = eval.CostJoin(ctx);
  ASSERT_TRUE(cost.ok());
  EXPECT_LT(eval.resource_configs_explored(), 5'000);
}

// ---------------------------------------------------------------------
// Robustness analysis

TEST(RobustnessTest, SmjPlanSurvivesDegradation) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> q12 = *catalog::TpchQueryTables(cat, TpchQuery::kQ12);
  auto smj = *plan::BuildLeftDeep(q12, plan::JoinImpl::kSortMergeJoin);
  Result<core::RobustnessReport> report = core::EvaluatePlanRobustness(
      cat, Models(), ClusterConditions::PaperDefault(),
      resource::PricingModel(), *smj);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->AlwaysFeasible());
  EXPECT_EQ(report->per_perturbation_cost.size(), 5u);
  // Costs can only get worse as the cluster shrinks.
  EXPECT_GE(report->worst_cost, report->per_perturbation_cost[0]);
}

TEST(RobustnessTest, BhjPlanBreaksWhenContainersShrink) {
  // A 5.1 GB broadcast needs ~4.5+ GB containers; halving the 10 GB
  // maximum kills it.
  catalog::Catalog cat;
  TableId orders = *cat.AddTable({"orders_sample", 49'000'000, 110});
  TableId lineitem = *cat.AddTable({"lineitem", 600'000'000, 130});
  ASSERT_TRUE(cat.AddJoin(lineitem, orders, 1e-8).ok());
  auto bhj =
      *plan::BuildLeftDeep({lineitem, orders},
                           plan::JoinImpl::kBroadcastHashJoin);
  core::RobustnessOptions options;
  options.perturbations = {{1.0, 1.0}, {0.4, 1.0}};
  Result<core::RobustnessReport> report = core::EvaluatePlanRobustness(
      cat, Models(), ClusterConditions::PaperDefault(),
      resource::PricingModel(), *bhj, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->infeasible_count, 1);
  EXPECT_FALSE(report->AlwaysFeasible());
  EXPECT_TRUE(std::isinf(report->worst_cost));
}

TEST(RobustnessTest, PickPrefersAlwaysFeasiblePlan) {
  catalog::Catalog cat;
  TableId orders = *cat.AddTable({"orders_sample", 49'000'000, 110});
  TableId lineitem = *cat.AddTable({"lineitem", 600'000'000, 130});
  ASSERT_TRUE(cat.AddJoin(lineitem, orders, 1e-8).ok());
  auto bhj = *plan::BuildLeftDeep({lineitem, orders},
                                  plan::JoinImpl::kBroadcastHashJoin);
  auto smj = *plan::BuildLeftDeep({lineitem, orders},
                                  plan::JoinImpl::kSortMergeJoin);
  core::RobustnessOptions options;
  options.perturbations = {{1.0, 1.0}, {0.4, 1.0}};
  // BHJ is faster when everything is fine, but the robust pick must be
  // SMJ because BHJ dies on the degraded cluster.
  Result<size_t> pick = core::PickRobustPlanIndex(
      cat, Models(), ClusterConditions::PaperDefault(),
      resource::PricingModel(), {bhj.get(), smj.get()}, options);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1u);
}

TEST(RobustnessTest, ValidatesInput) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  auto plan = *plan::BuildLeftDeep(
      *catalog::TpchQueryTables(cat, TpchQuery::kQ12),
      plan::JoinImpl::kSortMergeJoin);
  core::RobustnessOptions bad;
  bad.perturbations = {};
  EXPECT_FALSE(core::EvaluatePlanRobustness(
                   cat, Models(), ClusterConditions::PaperDefault(),
                   resource::PricingModel(), *plan, bad)
                   .ok());
  bad.perturbations = {{-1.0, 1.0}};
  EXPECT_FALSE(core::EvaluatePlanRobustness(
                   cat, Models(), ClusterConditions::PaperDefault(),
                   resource::PricingModel(), *plan, bad)
                   .ok());
  EXPECT_FALSE(core::PickRobustPlanIndex(cat, Models(),
                                         ClusterConditions::PaperDefault(),
                                         resource::PricingModel(), {})
                   .ok());
}

// ---------------------------------------------------------------------
// Resource-aware scheduler

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : cat_(catalog::BuildTpchCatalog(100.0)) {
    q12_ = *catalog::TpchQueryTables(cat_, TpchQuery::kQ12);
    // Primary: SMJ across 40 fat containers. Alternative: SMJ on 8.
    primary_ = *plan::BuildLeftDeep(q12_, plan::JoinImpl::kSortMergeJoin);
    primary_->set_resources(ResourceConfig(8, 40));
    alternative_ = *plan::BuildLeftDeep(q12_, plan::JoinImpl::kSortMergeJoin);
    alternative_->set_resources(ResourceConfig(8, 8));
  }

  catalog::Catalog cat_;
  std::vector<TableId> q12_;
  std::unique_ptr<plan::PlanNode> primary_;
  std::unique_ptr<plan::PlanNode> alternative_;
};

TEST_F(SchedulerTest, RunsPrimaryWhenResourcesFree) {
  sim::ResourceAwareScheduler scheduler(sim::EngineProfile::Hive(), &cat_);
  sim::ClusterAvailability available;
  available.free_containers = 100;
  Result<sim::ScheduleDecision> d =
      scheduler.Decide({primary_.get(), alternative_.get()}, available);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->action, sim::ScheduleAction::kRunPrimary);
  EXPECT_EQ(d->plan_index, 0u);
  EXPECT_DOUBLE_EQ(d->wait_s, 0.0);
}

TEST_F(SchedulerTest, SwitchesToAlternativeWhenQueueIsSlow) {
  sim::ResourceAwareScheduler scheduler(sim::EngineProfile::Hive(), &cat_);
  sim::ClusterAvailability available;
  available.free_containers = 10;   // primary needs 40
  available.drain_rate_containers_per_s = 0.001;  // would wait ~8 hours
  Result<sim::ScheduleDecision> d =
      scheduler.Decide({primary_.get(), alternative_.get()}, available);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->action, sim::ScheduleAction::kRunAlternative);
  EXPECT_EQ(d->plan_index, 1u);
}

TEST_F(SchedulerTest, WaitsWhenDrainIsFast) {
  sim::ResourceAwareScheduler scheduler(sim::EngineProfile::Hive(), &cat_);
  sim::ClusterAvailability available;
  available.free_containers = 38;  // primary needs 40: tiny deficit
  available.drain_rate_containers_per_s = 100.0;  // frees in 0.02 s
  Result<sim::ScheduleDecision> d =
      scheduler.Decide({primary_.get(), alternative_.get()}, available);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->action, sim::ScheduleAction::kWait);
  EXPECT_EQ(d->plan_index, 0u);
  EXPECT_GT(d->wait_s, 0.0);
  EXPECT_LT(d->wait_s, 1.0);
}

TEST_F(SchedulerTest, RejectsOversizedAndInvalidInput) {
  sim::ResourceAwareScheduler scheduler(sim::EngineProfile::Hive(), &cat_);
  sim::ClusterAvailability available;
  available.max_container_gb = 4.0;  // plans demand 8 GB containers
  Result<sim::ScheduleDecision> d =
      scheduler.Decide({primary_.get()}, available);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsResourceExhausted());

  EXPECT_FALSE(scheduler.Decide({}, sim::ClusterAvailability{}).ok());
  sim::ClusterAvailability bad;
  bad.drain_rate_containers_per_s = 0.0;
  EXPECT_FALSE(scheduler.Decide({primary_.get()}, bad).ok());

  // Plans without resource requests are rejected.
  auto bare = *plan::BuildLeftDeep(q12_, plan::JoinImpl::kSortMergeJoin);
  Result<sim::ScheduleDecision> no_res =
      scheduler.Decide({bare.get()}, sim::ClusterAvailability{});
  ASSERT_FALSE(no_res.ok());
  EXPECT_TRUE(no_res.status().IsFailedPrecondition());
}

TEST_F(SchedulerTest, DecisionToStringMentionsAction) {
  sim::ScheduleDecision d;
  d.action = sim::ScheduleAction::kWait;
  d.wait_s = 3;
  EXPECT_NE(d.ToString().find("wait"), std::string::npos);
  EXPECT_STREQ(sim::ScheduleActionName(sim::ScheduleAction::kRunPrimary),
               "run-primary");
}

// ---------------------------------------------------------------------
// DOT exports

TEST(DotExportTest, PlanToDotIsWellFormed) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  auto plan = *plan::BuildLeftDeep(
      *catalog::TpchQueryTables(cat, TpchQuery::kQ3),
      plan::JoinImpl::kSortMergeJoin);
  plan->set_resources(ResourceConfig(4, 10));
  const std::string dot = plan::PlanToDot(*plan, &cat);
  EXPECT_EQ(dot.rfind("digraph plan {", 0), 0u);
  EXPECT_EQ(dot.find('{'), dot.rfind('{'));
  EXPECT_NE(dot.find("lineitem"), std::string::npos);
  EXPECT_NE(dot.find("SMJ"), std::string::npos);
  EXPECT_NE(dot.find("4 GB x 10"), std::string::npos);
  // 5 nodes (3 scans + 2 joins), 4 edges.
  size_t edges = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(DotExportTest, TreeToDotIsWellFormed) {
  Result<rules::DecisionTree> tree =
      rules::BuildDefaultRuleTree(sim::EngineProfile::Hive());
  ASSERT_TRUE(tree.ok());
  const std::string dot = tree->ToDot();
  EXPECT_EQ(dot.rfind("digraph tree {", 0), 0u);
  EXPECT_NE(dot.find("gini = 0.5"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"True\"]"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"False\"]"), std::string::npos);
  EXPECT_NE(dot.find("Data Size (GB) <= "), std::string::npos);
}

// ---------------------------------------------------------------------
// Cost-model fit reporting

TEST(ModelEvalTest, PerfectModelScoresPerfectly) {
  // Enough observations to determine the extended feature set's
  // 10 weights + intercept.
  std::vector<cost::ProfileSample> samples;
  for (double ss : {1.0, 2.0, 3.0, 4.0}) {
    for (double nc : {5.0, 10.0, 20.0}) {
      for (double cs : {2.0, 4.0}) {
        cost::ProfileSample s;
        s.features.smaller_gb = ss;
        s.features.larger_gb = 10.0;
        s.features.container_size_gb = cs;
        s.features.num_containers = nc;
        s.seconds = 7.0 * ss + 100.0 + nc + 2.0 * cs;
        samples.push_back(s);
      }
    }
  }
  Result<cost::OperatorCostModel> model =
      cost::OperatorCostModel::Train("exact", samples);
  ASSERT_TRUE(model.ok());
  Result<cost::ModelFitReport> report =
      cost::EvaluateFit(*model, samples);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->r_squared, 0.999);
  EXPECT_LT(report->mean_abs_pct_error, 0.5);
  EXPECT_EQ(report->samples, samples.size());
  EXPECT_NE(report->ToString().find("R^2"), std::string::npos);
}

TEST(ModelEvalTest, ExtendedModelFitsSimulatorBetterThanPaperForm) {
  // The ablation the paper defers to future work: richer cost-model
  // features fit the execution profiles substantially better.
  const sim::EngineProfile hive = sim::EngineProfile::Hive();
  const auto samples = sim::CollectProfileSamples(
      hive, plan::JoinImpl::kSortMergeJoin, sim::ProfileGrid());
  Result<cost::OperatorCostModel> extended = cost::OperatorCostModel::Train(
      "smj-ext", samples, cost::FeatureSet::kExtended);
  Result<cost::OperatorCostModel> paper = cost::OperatorCostModel::Train(
      "smj-paper", samples, cost::FeatureSet::kPaper);
  ASSERT_TRUE(extended.ok());
  ASSERT_TRUE(paper.ok());
  const auto ext_fit = *cost::EvaluateFit(*extended, samples);
  const auto paper_fit = *cost::EvaluateFit(*paper, samples);
  EXPECT_GT(ext_fit.r_squared, paper_fit.r_squared);
  EXPECT_GT(ext_fit.r_squared, 0.9);
  EXPECT_LT(ext_fit.rmse_seconds, paper_fit.rmse_seconds);
}

TEST(ModelEvalTest, RejectsEmptySamples) {
  EXPECT_FALSE(cost::EvaluateFit(cost::PaperHiveSmjModel(), {}).ok());
}

// ---------------------------------------------------------------------
// Search-space accounting (Section VI-B)

TEST(SearchSpaceTest, MatchesClosedFormOnSmallInputs) {
  // n=3, a=2, rp=4, rc=5: joint = 3! * (2*4*5)^3 = 6 * 64000 = 384000;
  // independent = 3! * 2 * 3 * 4 * 5 = 720.
  const core::SearchSpaceSize space = core::ComputeSearchSpace(3, 2, 4, 5);
  EXPECT_NEAR(std::pow(10.0, space.log10_joint), 384'000.0, 1.0);
  EXPECT_NEAR(std::pow(10.0, space.log10_independent), 720.0, 0.01);
  EXPECT_NE(space.ToString().find("joint 10^"), std::string::npos);
}

TEST(SearchSpaceTest, IndependenceAssumptionCollapsesTheExponent) {
  // The paper's point: per-operator independence turns the resource
  // factor from exponential in n to linear in n.
  const core::SearchSpaceSize small = core::ComputeSearchSpace(8, 2, 100, 10);
  const core::SearchSpaceSize big = core::ComputeSearchSpace(100, 2, 100, 10);
  EXPECT_GT(small.log10_joint - small.log10_independent, 20.0);
  EXPECT_GT(big.log10_joint - big.log10_independent, 300.0);
  // The independent space of TPC-H All (8 joins) stays enumerable-ish.
  EXPECT_LT(small.log10_independent, 10.0);
}

}  // namespace
}  // namespace raqo
