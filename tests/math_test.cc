#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"
#include "common/regression.h"
#include "common/rng.h"
#include "common/stats.h"

namespace raqo {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m.At(i, j), 0.0);
  }
}

TEST(MatrixTest, FromRowsAndTranspose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(0, 1), 4.0);
  EXPECT_EQ(t.At(2, 0), 3.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  Matrix p = m.Multiply(i);
  EXPECT_EQ(p.At(0, 0), 1.0);
  EXPECT_EQ(p.At(0, 1), 2.0);
  EXPECT_EQ(p.At(1, 0), 3.0);
  EXPECT_EQ(p.At(1, 1), 4.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix p = a.Multiply(b);
  EXPECT_EQ(p.At(0, 0), 19.0);
  EXPECT_EQ(p.At(0, 1), 22.0);
  EXPECT_EQ(p.At(1, 0), 43.0);
  EXPECT_EQ(p.At(1, 1), 50.0);
}

TEST(MatrixTest, SolveWellConditioned) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  Result<std::vector<double>> x = a.Solve({5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(MatrixTest, SolveRequiresPivoting) {
  // Zero on the initial pivot position forces a row swap.
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  Result<std::vector<double>> x = a.Solve({2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(MatrixTest, SolveSingularFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  Result<std::vector<double>> x = a.Solve({1, 2});
  ASSERT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsFailedPrecondition());
}

TEST(MatrixTest, SolveShapeMismatchFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FALSE(a.Solve({1, 2, 3}).ok());
  Matrix rect = Matrix::FromRows({{1, 2, 3}});
  EXPECT_FALSE(rect.Solve({1}).ok());
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> v = a.MultiplyVector({1, 1});
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 7.0);
}

TEST(RegressionTest, RecoversExactLinearModel) {
  // y = 2 x0 - 3 x1 + 0.5 x2, no noise.
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row = {rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                               rng.Uniform(-5, 5)};
    y.push_back(2 * row[0] - 3 * row[1] + 0.5 * row[2]);
    x.push_back(row);
  }
  Result<LinearModel> model = FitOls(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 2.0, 1e-6);
  EXPECT_NEAR(model->weights[1], -3.0, 1e-6);
  EXPECT_NEAR(model->weights[2], 0.5, 1e-6);
  EXPECT_NEAR(RSquared(*model, x, y), 1.0, 1e-9);
  EXPECT_NEAR(Rmse(*model, x, y), 0.0, 1e-6);
}

TEST(RegressionTest, InterceptRecovered) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row = {rng.Uniform(0, 10)};
    y.push_back(4.0 * row[0] + 7.0);
    x.push_back(row);
  }
  OlsOptions options;
  options.fit_intercept = true;
  Result<LinearModel> model = FitOls(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 4.0, 1e-6);
  EXPECT_NEAR(model->weights[1], 7.0, 1e-5);  // intercept is last
}

TEST(RegressionTest, NoisyFitHasHighRSquared) {
  Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    y.push_back(3 * row[0] - row[1] + rng.Normal(0, 0.1));
    x.push_back(row);
  }
  Result<LinearModel> model = FitOls(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(RSquared(*model, x, y), 0.99);
}

TEST(RegressionTest, ErrorsOnBadInput) {
  EXPECT_FALSE(FitOls({}, {}).ok());
  EXPECT_FALSE(FitOls({{1.0}}, {1.0, 2.0}).ok());
  // Fewer observations than unknowns.
  EXPECT_FALSE(FitOls({{1.0, 2.0}}, {1.0}).ok());
  // Ragged rows.
  EXPECT_FALSE(FitOls({{1.0, 2.0}, {1.0}}, {1.0, 2.0}).ok());
}

TEST(RegressionTest, RidgeHandlesCollinearity) {
  // Perfectly collinear features would make plain OLS singular.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back({static_cast<double>(i), 2.0 * i});
    y.push_back(3.0 * i);
  }
  OlsOptions options;
  options.ridge_lambda = 1e-4;
  Result<LinearModel> model = FitOls(x, y, options);
  ASSERT_TRUE(model.ok());
  // Predictions still correct even if individual weights are not unique.
  EXPECT_NEAR(model->Predict({10.0, 20.0}), 30.0, 0.1);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 10), 1.4);
}

TEST(StatsTest, PercentileSingleton) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 75), 42.0);
}

TEST(EmpiricalCdfTest, Fractions) {
  EmpiricalCdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrAbove(6), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrAbove(1), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrAbove(11), 0.0);
}

TEST(EmpiricalCdfTest, QuantilesAndPoints) {
  EmpiricalCdf cdf({0, 10});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 10.0);
  auto points = cdf.Points(3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[1].first, 0.5);
  EXPECT_DOUBLE_EQ(points[1].second, 5.0);
}

}  // namespace
}  // namespace raqo
