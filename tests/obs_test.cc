// The observability layer: metrics registry exactness under
// concurrency, histogram bucket boundaries, span nesting and ring-buffer
// bounds, JSON export validity, and — most importantly — the invariant
// that instrumentation observes planning without changing it: the same
// workload planned with the layer fully on and fully off must produce
// bit-identical plans. Run under -DRAQO_SANITIZE=thread to let TSan
// check the lock-free hot paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/random_schema.h"
#include "common/stopwatch.h"
#include "core/concurrent_workload_runner.h"
#include "core/plan_cache.h"
#include "core/workload_runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to assert the
// exporters emit syntactically valid JSON without a third-party parser.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseString() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonValidatorTest, AcceptsAndRejectsWhatItShould) {
  EXPECT_TRUE(JsonValidator(R"({"a": [1, -2.5e3, "x\n", null, true]})")
                  .Valid());
  EXPECT_FALSE(JsonValidator(R"({"a": })").Valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1,})").Valid());
  EXPECT_FALSE(JsonValidator(R"("unterminated)").Valid());
  EXPECT_FALSE(JsonValidator("{} trailing").Valid());
}

// ---------------------------------------------------------------------
// Metrics

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // At a bound -> that bucket (inclusive); just above -> next bucket.
  h.Record(0.5);   // bucket 0 (<= 1)
  h.Record(1.0);   // bucket 0, boundary inclusive
  h.Record(1.001); // bucket 1
  h.Record(2.0);   // bucket 1, boundary inclusive
  h.Record(5.0);   // bucket 2, boundary inclusive
  h.Record(5.001); // overflow
  h.Record(1e9);   // overflow
  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.Count(), 7);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 1e9);
}

TEST(MetricsTest, CountersAndHistogramsAreExactUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.hits");
  obs::Histogram* histogram = registry.GetHistogram("test.lat", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Record(i % 2 == 0 ? 1.0 : 100.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Relaxed atomics may reorder, but no increment may ever be lost.
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->Count(), int64_t{kThreads} * kPerThread);
  const std::vector<int64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], int64_t{kThreads} * kPerThread / 2);
  EXPECT_EQ(counts[1], int64_t{kThreads} * kPerThread / 2);
}

TEST(MetricsTest, RegistryReturnsStablePointersAndSortedSnapshots) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("zeta");
  EXPECT_EQ(registry.GetCounter("zeta"), a);  // find-or-create is stable
  registry.GetCounter("alpha")->Add(3);
  a->Add(7);
  registry.GetGauge("g")->Set(2.5);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");  // sorted by name
  EXPECT_EQ(snapshot.counters[0].second, 3);
  EXPECT_EQ(snapshot.counters[1].first, "zeta");
  EXPECT_EQ(snapshot.counters[1].second, 7);
  registry.ResetAll();
  EXPECT_EQ(a->Value(), 0);  // same object, zeroed
  a->Add(1);
  EXPECT_EQ(registry.Snapshot().counters[1].second, 1);
}

TEST(MetricsTest, StopwatchElapsedMicrosAgreesWithMillis) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double us = watch.ElapsedMicros();
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(us, 2000.0);
  // Micros read first, so it can only be the smaller of the two scales.
  EXPECT_LE(us, ms * 1000.0 + 1.0);
}

// ---------------------------------------------------------------------
// Tracing

TEST(TraceTest, SpansNestByThreadAndFinishInLifoOrder) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span outer = tracer.StartSpan("outer");
    outer.SetAttr("k", "v");
    {
      obs::Span inner = tracer.StartSpan("inner");
      obs::Span leaf = tracer.StartSpan("leaf");
      leaf.End();
      // inner and leaf both nest under what was open when they started.
      EXPECT_NE(inner.id(), 0u);
      EXPECT_NE(leaf.id(), inner.id());
    }
    obs::Span sibling = tracer.StartSpan("sibling");
  }
  std::vector<obs::FinishedSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Finish order (= ring order): leaf, inner, sibling, outer.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");
  const obs::FinishedSpan& outer = spans[3];
  EXPECT_EQ(outer.parent_id, 0u);  // root
  EXPECT_EQ(spans[1].parent_id, outer.id);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // leaf under inner
  EXPECT_EQ(spans[2].parent_id, outer.id);     // sibling under outer again
  ASSERT_EQ(outer.attrs.size(), 1u);
  EXPECT_EQ(outer.attrs[0].key, "k");
  // Children start no earlier and end no later than the parent.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(spans[i].start_us, outer.start_us);
    EXPECT_LE(spans[i].start_us + spans[i].dur_us,
              outer.start_us + outer.dur_us + 1e-3);
  }
}

TEST(TraceTest, DisabledTracerIsInertAndRecordsNothing) {
  obs::Tracer tracer;
  obs::Span span = tracer.StartSpan("ignored");
  EXPECT_FALSE(span.recording());
  span.SetAttr("k", 1.0);  // must be a safe no-op
  span.End();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_finished(), 0);
}

TEST(TraceTest, RingBufferBoundsMemoryAndKeepsNewestSpans) {
  obs::TracerOptions options;
  options.ring_capacity = 4;
  obs::Tracer tracer(options);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    obs::Span span = tracer.StartSpan("s");
    span.SetAttr("i", static_cast<int64_t>(i));
  }
  std::vector<obs::FinishedSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.total_finished(), 10);
  EXPECT_EQ(tracer.dropped(), 6);
  // Oldest-first snapshot of the newest four spans: i = 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(spans[static_cast<size_t>(i)].attrs.size(), 1u);
    EXPECT_EQ(spans[static_cast<size_t>(i)].attrs[0].value,
              std::to_string(i + 6));
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TraceTest, ConcurrentSpansKeepDistinctIdsAndPerThreadParents) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Span outer = tracer.StartSpan("outer");
        obs::Span inner = tracer.StartSpan("inner");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<obs::FinishedSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), size_t{kThreads} * kPerThread * 2);
  std::set<uint64_t> ids;
  std::map<uint64_t, const obs::FinishedSpan*> by_id;
  for (const obs::FinishedSpan& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id";
    by_id[s.id] = &s;
  }
  for (const obs::FinishedSpan& s : spans) {
    if (s.name != "inner") continue;
    // Every inner span's parent is an outer span on the same thread —
    // nesting never leaks across threads.
    auto parent = by_id.find(s.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second->name, "outer");
    EXPECT_EQ(parent->second->tid, s.tid);
  }
}

// ---------------------------------------------------------------------
// JSON export

TEST(JsonExportTest, MetricsSnapshotRendersValidJson) {
  obs::MetricsRegistry registry;
  registry.GetCounter("with \"quotes\" and \\slashes\\")->Add(1);
  registry.GetGauge("newline\nname")->Set(-0.125);
  obs::Histogram* h = registry.GetHistogram("lat", {1.0, 10.0});
  h->Record(0.5);
  h->Record(99.0);
  const std::string json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(JsonExportTest, SpansRenderValidChromeTraceJson) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span outer = tracer.StartSpan("planner.query");
    outer.SetAttr("query", "q\"1\"");  // must be escaped
    outer.SetAttr("cost", 1.5);
    outer.SetAttr("count", static_cast<int64_t>(42));
    obs::Span inner = tracer.StartSpan("cache.lookup");
  }
  const std::string json =
      obs::SpansToChromeTraceJson(tracer.Snapshot());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // Chrome trace_event essentials: an event array of complete events
  // with microsecond timestamps and thread metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.query\""), std::string::npos);
  EXPECT_NE(json.find("\"q\\\"1\\\"\""), std::string::npos);
}

TEST(JsonExportTest, JsonNumberHandlesNonFiniteValues) {
  EXPECT_EQ(obs::JsonNumber(1.0), "1");
  EXPECT_EQ(obs::JsonNumber(-2.5), "-2.5");
  EXPECT_EQ(obs::JsonNumber(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "null");
}

// ---------------------------------------------------------------------
// Cache statistics satellites

TEST(CacheStatsTest, DerivedRatesAndExchangeBasedReset) {
  core::ResourcePlanCache cache(core::CacheLookupMode::kExact, 0.0);
  core::CachedResourcePlan plan;
  plan.key_gb = 1.0;
  plan.config = resource::ResourceConfig(4.0, 8);
  cache.Insert("smj", plan);
  EXPECT_TRUE(cache.Lookup("smj", 1.0).has_value());
  EXPECT_FALSE(cache.Lookup("smj", 2.0).has_value());
  EXPECT_FALSE(cache.Lookup("smj", 3.0).has_value());
  core::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.lookups(), 3);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(core::CacheStats{}.hit_rate(), 0.0);  // no div-by-zero

  // ResetStats drains and returns in one step.
  const core::CacheStats drained = cache.ResetStats();
  EXPECT_EQ(drained.hits, 1);
  EXPECT_EQ(drained.misses, 2);
  EXPECT_EQ(cache.stats().lookups(), 0);
}

TEST(CacheStatsTest, ConcurrentResetNeverLosesALookup) {
  // The old read-then-store reset had a window where a concurrent
  // increment vanished; the exchange-based reset must account for every
  // single lookup either in a drained snapshot or in the final stats.
  core::ResourcePlanCache cache(core::CacheLookupMode::kExact, 0.0,
                                core::CacheIndexKind::kSortedArray,
                                /*shards=*/4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        cache.Lookup("smj", 123.0);  // always a miss
      }
    });
  }
  int64_t drained = 0;
  go.store(true);
  for (int i = 0; i < 1000; ++i) drained += cache.ResetStats().lookups();
  for (std::thread& t : threads) t.join();
  drained += cache.ResetStats().lookups();
  EXPECT_EQ(drained, int64_t{kThreads} * kPerThread);
}

TEST(CacheStatsTest, ShardStatsAccountForEveryLookupAndInsert) {
  core::ShardedResourcePlanIndex index(core::CacheIndexKind::kSortedArray,
                                       /*num_shards=*/4);
  constexpr int kEntries = 64;
  for (int i = 0; i < kEntries; ++i) {
    core::CachedResourcePlan plan;
    plan.key_gb = static_cast<double>(i);
    index.Insert(plan);
  }
  for (int i = 0; i < kEntries; ++i) {
    EXPECT_TRUE(index.FindExact(static_cast<double>(i)).has_value());
  }
  const std::vector<core::ShardStats> stats = index.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  size_t entries = 0;
  int64_t lookups = 0;
  int64_t inserts = 0;
  for (const core::ShardStats& s : stats) {
    entries += s.entries;
    lookups += s.lookups;
    inserts += s.inserts;
    EXPECT_GE(s.lock_wait_ns, 0);
  }
  EXPECT_EQ(entries, static_cast<size_t>(kEntries));
  EXPECT_EQ(lookups, kEntries);
  EXPECT_EQ(inserts, kEntries);
}

// ---------------------------------------------------------------------
// End-to-end: the instrumented pipeline

const cost::JoinCostModels& Models() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

std::vector<core::WorkloadQuery> SmallWorkload(const catalog::Catalog& cat) {
  std::vector<core::WorkloadQuery> workload;
  for (int i = 0; i < 12; ++i) {
    core::WorkloadQuery query;
    query.label = "q" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        cat, 2 + i % 4, 900 + static_cast<uint64_t>(i));
    workload.push_back(std::move(query));
  }
  return workload;
}

core::RaqoPlannerOptions CachedExactOptions() {
  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = false;
  return options;
}

/// Flips the whole observability layer, returning the previous state so
/// tests restore the process-wide defaults they mutate.
std::pair<bool, bool> SetObservability(bool metrics, bool tracing) {
  const std::pair<bool, bool> before{obs::DefaultMetrics().enabled(),
                                     obs::DefaultTracer().enabled()};
  obs::DefaultMetrics().set_enabled(metrics);
  obs::DefaultTracer().set_enabled(tracing);
  return before;
}

TEST(InstrumentedPipelineTest, ObservabilityDoesNotChangeChosenPlans) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 10;
  schema.seed = 17;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const std::vector<core::WorkloadQuery> workload = SmallWorkload(cat);

  auto run = [&] {
    core::ConcurrentRunnerOptions concurrency;
    concurrency.num_threads = 4;
    core::ConcurrentWorkloadRunner service(
        &cat, Models(), resource::ClusterConditions::PaperDefault(),
        resource::PricingModel(), CachedExactOptions(), concurrency);
    return service.Run(workload);
  };

  const auto before = SetObservability(false, false);
  const Result<core::WorkloadReport> dark = run();
  SetObservability(true, true);
  obs::DefaultTracer().Clear();
  const Result<core::WorkloadReport> lit = run();
  SetObservability(before.first, before.second);
  obs::DefaultTracer().Clear();

  ASSERT_TRUE(dark.ok());
  ASSERT_TRUE(lit.ok());
  ASSERT_EQ(lit->queries.size(), dark->queries.size());
  for (size_t i = 0; i < dark->queries.size(); ++i) {
    EXPECT_EQ(lit->queries[i].cost.seconds, dark->queries[i].cost.seconds);
    EXPECT_EQ(lit->queries[i].cost.dollars, dark->queries[i].cost.dollars);
    EXPECT_EQ(lit->queries[i].plan, dark->queries[i].plan);
    ASSERT_EQ(lit->queries[i].join_resources.size(),
              dark->queries[i].join_resources.size());
    for (size_t j = 0; j < dark->queries[i].join_resources.size(); ++j) {
      EXPECT_EQ(lit->queries[i].join_resources[j],
                dark->queries[i].join_resources[j]);
    }
  }
}

TEST(InstrumentedPipelineTest, ConcurrentInstrumentedRunProducesCoherentTelemetry) {
  // The TSan target: every observability hot path (counters, histograms,
  // span ring, per-shard stats) exercised from four planner threads at
  // once. Correctness assertions are on the telemetry itself.
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 8;
  schema.seed = 23;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const std::vector<core::WorkloadQuery> workload = SmallWorkload(cat);

  const auto before = SetObservability(true, true);
  obs::DefaultMetrics().ResetAll();
  obs::DefaultTracer().Clear();

  core::ConcurrentRunnerOptions concurrency;
  concurrency.num_threads = 4;
  concurrency.share_cache = true;
  concurrency.cache_shards = 4;
  core::ConcurrentWorkloadRunner service(
      &cat, Models(), resource::ClusterConditions::PaperDefault(),
      resource::PricingModel(), CachedExactOptions(), concurrency);
  const Result<core::WorkloadReport> report = service.Run(workload);

  const std::vector<obs::FinishedSpan> spans = obs::DefaultTracer().Snapshot();
  const obs::MetricsSnapshot metrics = obs::DefaultMetrics().Snapshot();
  SetObservability(before.first, before.second);
  obs::DefaultTracer().Clear();

  ASSERT_TRUE(report.ok());

  // One runner.query and one planner.query span per workload entry.
  int64_t runner_spans = 0;
  int64_t planner_spans = 0;
  for (const obs::FinishedSpan& s : spans) {
    if (s.name == "runner.query") ++runner_spans;
    if (s.name == "planner.query") ++planner_spans;
  }
  EXPECT_EQ(runner_spans, static_cast<int64_t>(workload.size()));
  EXPECT_EQ(planner_spans, static_cast<int64_t>(workload.size()));

  // The exporters handle the real telemetry, not just synthetic spans.
  EXPECT_TRUE(JsonValidator(obs::MetricsToJson(metrics)).Valid());
  EXPECT_TRUE(JsonValidator(obs::SpansToChromeTraceJson(spans)).Valid());

  // Counter cross-check: the runner counted every query.
  int64_t runner_queries = 0;
  for (const auto& [name, value] : metrics.counters) {
    if (name == "runner.queries") runner_queries = value;
  }
  EXPECT_EQ(runner_queries, static_cast<int64_t>(workload.size()));

  // Shared-cache shard stats account for the service's lookups.
  const core::CacheStats cache = service.shared_cache_stats();
  const std::vector<core::ShardStats> shards =
      service.shared_cache_shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  int64_t shard_lookups = 0;
  for (const core::ShardStats& s : shards) shard_lookups += s.lookups;
  // Exact-mode lookups with a guard go through FindExact once per
  // Lookup; misses on a missing model index never reach a shard.
  EXPECT_GE(cache.lookups(), shard_lookups);
  EXPECT_GT(shard_lookups, 0);
}

}  // namespace
}  // namespace raqo
