#include <gtest/gtest.h>

#include "catalog/random_schema.h"
#include "catalog/tpch.h"
#include "cost/cost_model.h"
#include "optimizer/bushy_dp.h"
#include "optimizer/fast_randomized.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/selinger.h"
#include "plan/plan_builder.h"
#include "sim/profile_runner.h"

namespace raqo::optimizer {
namespace {

using catalog::TableId;
using catalog::TpchQuery;

FixedResourceEvaluator MakeEvaluator() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return FixedResourceEvaluator(*models, resource::ResourceConfig(6, 20));
}

TEST(BushyDpTest, SingleTableAndValidation) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  FixedResourceEvaluator eval = MakeEvaluator();
  BushyDpPlanner planner;
  Result<PlannedQuery> single =
      planner.Plan(cat, {*cat.FindTable("orders")}, eval);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single->plan->is_scan());
  EXPECT_FALSE(planner.Plan(cat, {}, eval).ok());
  EXPECT_FALSE(planner.Plan(cat, {0, 0}, eval).ok());
}

TEST(BushyDpTest, RespectsTableLimit) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  BushyDpOptions options;
  options.max_tables = 2;
  BushyDpPlanner planner(options);
  FixedResourceEvaluator eval = MakeEvaluator();
  Result<PlannedQuery> r = planner.Plan(
      cat, *catalog::TpchQueryTables(cat, TpchQuery::kQ3), eval);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnsupported());
}

TEST(BushyDpTest, PlansAllTpchQueriesValidly) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  BushyDpPlanner planner;
  for (TpchQuery q : {TpchQuery::kQ12, TpchQuery::kQ3, TpchQuery::kQ2,
                      TpchQuery::kAll}) {
    FixedResourceEvaluator eval = MakeEvaluator();
    std::vector<TableId> tables = *catalog::TpchQueryTables(cat, q);
    Result<PlannedQuery> r = planner.Plan(cat, tables, eval);
    ASSERT_TRUE(r.ok()) << catalog::TpchQueryName(q);
    EXPECT_TRUE(plan::ValidatePlan(cat, *r->plan, tables).ok());
    // Connected queries get cross-product-free plans.
    EXPECT_TRUE(plan::ValidatePlan(cat, *r->plan, tables, true).ok());
  }
}

TEST(BushyDpTest, NeverWorseThanLeftDeepSelinger) {
  // The bushy space strictly contains the left-deep space, so for the
  // same evaluator the bushy optimum can only be at least as good.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  for (TpchQuery q :
       {TpchQuery::kQ3, TpchQuery::kQ2, TpchQuery::kAll}) {
    std::vector<TableId> tables = *catalog::TpchQueryTables(cat, q);
    FixedResourceEvaluator e1 = MakeEvaluator();
    FixedResourceEvaluator e2 = MakeEvaluator();
    Result<PlannedQuery> bushy = BushyDpPlanner().Plan(cat, tables, e1);
    Result<PlannedQuery> left = SelingerPlanner().Plan(cat, tables, e2);
    ASSERT_TRUE(bushy.ok());
    ASSERT_TRUE(left.ok());
    EXPECT_LE(bushy->cost.seconds, left->cost.seconds * (1 + 1e-9))
        << catalog::TpchQueryName(q);
  }
}

TEST(BushyDpTest, MatchesSelingerOnTwoTables) {
  // With two tables the bushy and left-deep spaces coincide.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ12);
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> bushy = BushyDpPlanner().Plan(cat, tables, e1);
  Result<PlannedQuery> left = SelingerPlanner().Plan(cat, tables, e2);
  ASSERT_TRUE(bushy.ok());
  ASSERT_TRUE(left.ok());
  EXPECT_DOUBLE_EQ(bushy->cost.seconds, left->cost.seconds);
}

TEST(BushyDpTest, IsLowerBoundForRandomizedPlanner) {
  // The randomized planner roams the same (bushy) space, so the DP
  // optimum is a true lower bound on anything it finds.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kAll);
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> bushy = BushyDpPlanner().Plan(cat, tables, e1);
  FastRandomizedOptions options;
  options.iterations = 15;
  Result<PlannedQuery> rnd =
      FastRandomizedPlanner(options).PlanBest(cat, tables, e2);
  ASSERT_TRUE(bushy.ok());
  ASSERT_TRUE(rnd.ok());
  EXPECT_LE(bushy->cost.seconds, rnd->cost.seconds * (1 + 1e-9));
  // ...and the randomized planner should get reasonably close.
  EXPECT_LE(rnd->cost.seconds, bushy->cost.seconds * 1.5);
}

TEST(BushyDpTest, HandlesDisconnectedQueries) {
  catalog::Catalog cat;
  TableId a = *cat.AddTable({"a", 1000, 100});
  TableId b = *cat.AddTable({"b", 1000, 100});
  TableId c = *cat.AddTable({"c", 1000, 100});
  ASSERT_TRUE(cat.AddJoin(a, b, 0.001).ok());
  // c is disconnected: a cross product is unavoidable.
  FixedResourceEvaluator eval = MakeEvaluator();
  Result<PlannedQuery> r = BushyDpPlanner().Plan(cat, {a, b, c}, eval);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan->NumJoins(), 2);
  EXPECT_TRUE(plan::ValidatePlan(cat, *r->plan, {a, b, c}).ok());
}

TEST(BushyDpTest, FindsGenuinelyBushyPlanWhenBetter) {
  // A chain a-b-c-d whose outer edges are highly selective but whose
  // bridge edge (b-c) is not: every left-deep order must cross the
  // bridge with one side still huge, materializing an enormous
  // intermediate that a later join consumes. The bushy plan
  // (a JOIN b) JOIN (c JOIN d) reduces both sides first and crosses the
  // bridge with two tiny inputs.
  catalog::Catalog cat;
  TableId a = *cat.AddTable({"a", 1'000'000, 120});
  TableId b = *cat.AddTable({"b", 1'000'000, 120});
  TableId c = *cat.AddTable({"c", 1'000'000, 120});
  TableId d = *cat.AddTable({"d", 1'000'000, 120});
  ASSERT_TRUE(cat.AddJoin(a, b, 1e-9).ok());  // reduces to ~1e3 rows
  ASSERT_TRUE(cat.AddJoin(c, d, 1e-9).ok());  // reduces to ~1e3 rows
  ASSERT_TRUE(cat.AddJoin(b, c, 1.0).ok());   // non-selective bridge
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> bushy =
      BushyDpPlanner().Plan(cat, {a, b, c, d}, e1);
  Result<PlannedQuery> left = SelingerPlanner().Plan(cat, {a, b, c, d}, e2);
  ASSERT_TRUE(bushy.ok());
  ASSERT_TRUE(left.ok());
  EXPECT_LT(bushy->cost.seconds, left->cost.seconds * 0.8);
  // The winning plan is not left-deep: some join's right child is a join.
  bool has_bushy_join = false;
  bushy->plan->VisitJoins([&](const plan::PlanNode& j) {
    if (j.right()->is_join() && j.left()->is_join()) has_bushy_join = true;
  });
  EXPECT_TRUE(has_bushy_join);
}

TEST(BushyDpTest, WorksWithRandomSchemas) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 30;
  schema.seed = 5;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  for (int n : {3, 6, 10}) {
    std::vector<TableId> tables = *catalog::RandomQueryTables(cat, n, 7);
    FixedResourceEvaluator e1 = MakeEvaluator();
    FixedResourceEvaluator e2 = MakeEvaluator();
    Result<PlannedQuery> bushy = BushyDpPlanner().Plan(cat, tables, e1);
    Result<PlannedQuery> left = SelingerPlanner().Plan(cat, tables, e2);
    ASSERT_TRUE(bushy.ok()) << n;
    ASSERT_TRUE(left.ok()) << n;
    EXPECT_LE(bushy->cost.seconds, left->cost.seconds * (1 + 1e-9)) << n;
  }
}

}  // namespace
}  // namespace raqo::optimizer
