// The durable plan-cache layer: CRC-checked journal records, torn-tail
// recovery, snapshot + compaction equivalence, fsync policies, and the
// file-I/O fault-injection seam. Everything here runs on real files in
// a per-test temp directory — no sockets (the wire side of persistence
// lives in server_test.cc). Run under -DRAQO_SANITIZE=thread and
// =address; every test must be clean under both.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/net.h"
#include "core/plan_cache.h"
#include "persist/cache_persist.h"
#include "persist/journal.h"

namespace raqo {
namespace {

using core::CachedResourcePlan;
using core::CacheEntryRecord;
using core::CacheIndexKind;
using core::CacheLookupMode;
using core::ResourcePlanCache;
using persist::CachePersistence;
using persist::FsyncPolicy;
using persist::JournalWriter;
using persist::PersistOptions;
using persist::ReplayResult;

/// Fresh, unique directory under the system temp root; removed on
/// destruction so test runs do not accrete state.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("raqo_persist_" + tag + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path, ignored);
  }
  std::string path;
};

std::string ReadAll(const std::string& path) {
  Result<std::string> content = io::ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << content.status().ToString();
  return content.ok() ? *content : std::string();
}

CachedResourcePlan MakePlan(double key, double larger, double cost,
                            double cs, double nc) {
  CachedResourcePlan plan;
  plan.key_gb = key;
  plan.larger_gb = larger;
  plan.cost = cost;
  plan.config = resource::ResourceConfig(cs, nc);
  return plan;
}

/// The canonical serialized form of a cache's whole logical content —
/// byte-level equality of two of these is the "bit-identical replay"
/// acceptance criterion.
std::string CanonicalDump(const ResourcePlanCache& cache) {
  std::string out;
  for (const CacheEntryRecord& entry : cache.DumpEntries()) {
    out += persist::SerializeCacheEntry(entry.model, entry.plan);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------
// CRC-32 and record framing

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard CRC-32/ISO-HDLC check values.
  EXPECT_EQ(io::Crc32(""), 0u);
  EXPECT_EQ(io::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("a"), 0xE8B7BE43u);
}

TEST(JournalRecordTest, RoundTripsByteForByte) {
  const std::vector<std::string> payloads = {
      "{\"k\":1}", "", "second record", std::string(1000, 'x')};
  std::string file(persist::kJournalMagic, persist::kMagicBytes);
  for (const std::string& p : payloads) file += persist::EncodeRecord(p);

  Result<ReplayResult> replay = persist::ReplayRecords(
      file, std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->valid_bytes, static_cast<int64_t>(file.size()));
  ASSERT_EQ(replay->payloads.size(), payloads.size());
  // Re-encoding the replayed payloads reproduces the exact file bytes.
  std::string rebuilt(persist::kJournalMagic, persist::kMagicBytes);
  for (const std::string& p : replay->payloads) {
    EXPECT_EQ(p, payloads[&p - replay->payloads.data()]);
    rebuilt += persist::EncodeRecord(p);
  }
  EXPECT_EQ(rebuilt, file);
}

TEST(JournalRecordTest, WrongMagicIsAnError) {
  std::string file = "NOTRAQO!";
  file += persist::EncodeRecord("x");
  Result<ReplayResult> replay = persist::ReplayRecords(
      file, std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  EXPECT_FALSE(replay.ok());
}

TEST(JournalRecordTest, TornMagicIsAnEmptyTornStream) {
  Result<ReplayResult> replay = persist::ReplayRecords(
      std::string_view(persist::kJournalMagic, 3),
      std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_EQ(replay->valid_bytes, 0);
  EXPECT_TRUE(replay->payloads.empty());
}

TEST(JournalRecordTest, TornTailAtEveryTruncationPoint) {
  const std::vector<std::string> payloads = {"first", "second", "third"};
  std::string file(persist::kJournalMagic, persist::kMagicBytes);
  std::vector<size_t> boundaries = {file.size()};
  for (const std::string& p : payloads) {
    file += persist::EncodeRecord(p);
    boundaries.push_back(file.size());
  }
  for (size_t cut = persist::kMagicBytes; cut < file.size(); ++cut) {
    Result<ReplayResult> replay = persist::ReplayRecords(
        std::string_view(file.data(), cut),
        std::string_view(persist::kJournalMagic, persist::kMagicBytes));
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    // Whole records before the cut replay; the torn one never does.
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(replay->payloads.size(), whole) << "cut at " << cut;
    EXPECT_EQ(replay->valid_bytes,
              static_cast<int64_t>(boundaries[whole]))
        << "cut at " << cut;
    EXPECT_EQ(replay->torn_tail, cut != boundaries[whole])
        << "cut at " << cut;
  }
}

TEST(JournalRecordTest, CorruptPayloadStopsAtTheChecksum) {
  std::string file(persist::kJournalMagic, persist::kMagicBytes);
  file += persist::EncodeRecord("good record");
  const size_t corrupt_at = file.size() + persist::kRecordHeaderBytes + 2;
  file += persist::EncodeRecord("bad record");
  file += persist::EncodeRecord("unreachable");
  file[corrupt_at] ^= 0x40;  // flip a payload bit of the middle record

  Result<ReplayResult> replay = persist::ReplayRecords(
      file, std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->payloads.size(), 1u);
  EXPECT_EQ(replay->payloads[0], "good record");
  EXPECT_NE(replay->tail_error.find("checksum"), std::string::npos);
}

TEST(JournalRecordTest, CorruptLengthPrefixCannotDriveAllocation) {
  std::string file(persist::kJournalMagic, persist::kMagicBytes);
  file += persist::EncodeRecord("ok");
  // A length prefix claiming ~4 GiB: replay must stop, not allocate.
  file += std::string("\xFF\xFF\xFF\xF0\x00\x00\x00\x00", 8);
  Result<ReplayResult> replay = persist::ReplayRecords(
      file, std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_EQ(replay->payloads.size(), 1u);
  EXPECT_NE(replay->tail_error.find("length"), std::string::npos);
}

// ---------------------------------------------------------------------
// JournalWriter and fsync policies

TEST(JournalWriterTest, EachRecordPolicySyncsEveryAppend) {
  TempDir dir("each_record");
  const std::string path = dir.path + "/wal";
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
      path, 0, FsyncPolicy::kEachRecord, 1 << 20);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("r1").ok());
  EXPECT_EQ((*writer)->synced_bytes(), (*writer)->size_bytes());
  ASSERT_TRUE((*writer)->Append("r2").ok());
  EXPECT_EQ((*writer)->synced_bytes(), (*writer)->size_bytes());
  EXPECT_EQ((*writer)->records_appended(), 2);
}

TEST(JournalWriterTest, GroupCommitSyncsOncePerGroup) {
  TempDir dir("group_commit");
  const std::string path = dir.path + "/wal";
  // Group of 64 bytes; each record is 8 + 10 = 18 bytes.
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
      path, 0, FsyncPolicy::kGroupCommit, 64);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::string payload(10, 'p');
  ASSERT_TRUE((*writer)->Append(payload).ok());
  ASSERT_TRUE((*writer)->Append(payload).ok());
  ASSERT_TRUE((*writer)->Append(payload).ok());
  // 54 unsynced bytes: below the group, nothing synced since the magic.
  EXPECT_EQ((*writer)->synced_bytes(),
            static_cast<int64_t>(persist::kMagicBytes));
  ASSERT_TRUE((*writer)->Append(payload).ok());
  // 72 >= 64: the group fsync fired and covers everything.
  EXPECT_EQ((*writer)->synced_bytes(), (*writer)->size_bytes());
}

TEST(JournalWriterTest, NonePolicySyncsOnlyExplicitly) {
  TempDir dir("none_policy");
  const std::string path = dir.path + "/wal";
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Open(path, 0, FsyncPolicy::kNone, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("payload").ok());
  EXPECT_EQ((*writer)->synced_bytes(),
            static_cast<int64_t>(persist::kMagicBytes));
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->synced_bytes(), (*writer)->size_bytes());
}

TEST(JournalWriterTest, ReopenTruncatesTheTornTail) {
  TempDir dir("reopen");
  const std::string path = dir.path + "/wal";
  {
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
        path, 0, FsyncPolicy::kEachRecord, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("kept").ok());
  }
  // Simulate a crash mid-append: raw half-record bytes at the tail
  // (length prefix advertising 16 bytes, far fewer present).
  {
    const std::string torn("\x00\x00\x00\x10garbage", 11);
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
  }
  const std::string content = ReadAll(path);
  Result<ReplayResult> replay = persist::ReplayRecords(
      content,
      std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->payloads.size(), 1u);

  // Reopen at the verified prefix and append: the tear is gone.
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
      path, replay->valid_bytes, FsyncPolicy::kEachRecord, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("after recovery").ok());
  Result<ReplayResult> again = persist::ReplayRecords(
      ReadAll(path),
      std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->payloads.size(), 2u);
  EXPECT_EQ(again->payloads[0], "kept");
  EXPECT_EQ(again->payloads[1], "after recovery");
}

TEST(JournalWriterTest, OversizedRecordIsRejected) {
  TempDir dir("oversized");
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
      dir.path + "/wal", 0, FsyncPolicy::kNone, 1);
  ASSERT_TRUE(writer.ok());
  const std::string huge(persist::kMaxRecordBytes + 1, 'z');
  EXPECT_FALSE((*writer)->Append(huge).ok());
  EXPECT_EQ((*writer)->records_appended(), 0);
}

// ---------------------------------------------------------------------
// File-I/O fault injection (the seam itself)

/// Scripted injector: fails or shortens the Nth write / fails the Nth
/// fsync, pass-through otherwise.
class ScriptedFileFaults : public io::FileFaultInjector {
 public:
  net::FaultAction OnWrite(int fd, size_t len) override {
    (void)fd;
    (void)len;
    const int n = writes_.fetch_add(1, std::memory_order_relaxed);
    if (n == fail_write_at_.load(std::memory_order_relaxed)) {
      return net::FaultAction::Fail(ENOSPC);
    }
    if (short_writes_.load(std::memory_order_relaxed)) {
      return net::FaultAction::Short(3);
    }
    return net::FaultAction::PassThrough();
  }
  net::FaultAction OnFsync(int fd) override {
    (void)fd;
    const int n = fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (n == fail_fsync_at_.load(std::memory_order_relaxed)) {
      return net::FaultAction::Fail(EIO);
    }
    return net::FaultAction::PassThrough();
  }

  std::atomic<int> writes_{0};
  std::atomic<int> fsyncs_{0};
  std::atomic<int> fail_write_at_{-1};
  std::atomic<int> fail_fsync_at_{-1};
  std::atomic<bool> short_writes_{false};
};

TEST(FileFaultTest, ShortWritesAreInvisibleThroughWriteAll) {
  TempDir dir("short_writes");
  ScriptedFileFaults faults;
  faults.short_writes_.store(true);
  {
    io::ScopedFileFaultInjector installed(&faults);
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
        dir.path + "/wal", 0, FsyncPolicy::kEachRecord, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("a record that spans many short "
                                  "writes").ok());
  }
  // Every byte arrived despite 3-byte syscalls; the record replays.
  Result<ReplayResult> replay = persist::ReplayRecords(
      ReadAll(dir.path + "/wal"),
      std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->payloads.size(), 1u);
  EXPECT_GT(faults.writes_.load(), 5);  // the seam really shortened them
}

TEST(FileFaultTest, FailedFsyncSurfacesAsAnError) {
  TempDir dir("failed_fsync");
  ScriptedFileFaults faults;
  io::ScopedFileFaultInjector installed(&faults);
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
      dir.path + "/wal", 0, FsyncPolicy::kEachRecord, 1);
  ASSERT_TRUE(writer.ok());
  faults.fail_fsync_at_.store(faults.fsyncs_.load());
  const Status appended = (*writer)->Append("doomed");
  EXPECT_FALSE(appended.ok());
  // The record's bytes reached the file but were never acknowledged
  // durable — the writer reports exactly that.
  EXPECT_LT((*writer)->synced_bytes(), (*writer)->size_bytes());
}

TEST(FileFaultTest, RecoveryNeverLosesAnAcknowledgedRecord) {
  TempDir dir("acked_durable");
  const std::string path = dir.path + "/wal";
  ScriptedFileFaults faults;
  {
    io::ScopedFileFaultInjector installed(&faults);
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(
        path, 0, FsyncPolicy::kEachRecord, 1);
    ASSERT_TRUE(writer.ok());
    // Three acknowledged-durable records (Append OK == synced).
    ASSERT_TRUE((*writer)->Append("acked-1").ok());
    ASSERT_TRUE((*writer)->Append("acked-2").ok());
    ASSERT_TRUE((*writer)->Append("acked-3").ok());
    // The fourth dies mid-record: ENOSPC after the first syscall of the
    // record leaves a torn prefix on disk.
    faults.fail_write_at_.store(faults.writes_.load() + 1);
    faults.short_writes_.store(true);  // guarantee a multi-write record
    EXPECT_FALSE((*writer)->Append("torn-and-lost").ok());
    // The writer "crashes" here (scope exit, no truncation).
  }
  Result<ReplayResult> replay = persist::ReplayRecords(
      ReadAll(path),
      std::string_view(persist::kJournalMagic, persist::kMagicBytes));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->payloads.size(), 3u);  // nothing acked was lost,
  EXPECT_EQ(replay->payloads[2], "acked-3");  // nothing torn was loaded
}

// ---------------------------------------------------------------------
// Entry serialization

TEST(CacheEntryCodecTest, RoundTripsAwkwardDoublesByteForByte) {
  const CachedResourcePlan plan =
      MakePlan(0.1 + 0.2, 123.45600000000013, 1e-300, 3.0625, 17);
  const std::string bytes = persist::SerializeCacheEntry("smj \"q\"", plan);
  Result<CacheEntryRecord> parsed = persist::ParseCacheEntry(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->model, "smj \"q\"");
  EXPECT_EQ(parsed->plan.key_gb, plan.key_gb);
  EXPECT_EQ(parsed->plan.larger_gb, plan.larger_gb);
  EXPECT_EQ(parsed->plan.cost, plan.cost);
  EXPECT_EQ(parsed->plan.config.container_size_gb(),
            plan.config.container_size_gb());
  EXPECT_EQ(parsed->plan.config.num_containers(),
            plan.config.num_containers());
  // Serialize(parse(bytes)) == bytes: the codec is a bijection on its
  // image, which is what makes dumps byte-comparable.
  EXPECT_EQ(persist::SerializeCacheEntry(parsed->model, parsed->plan),
            bytes);
}

TEST(CacheEntryCodecTest, MissingFieldsAreRejected) {
  EXPECT_FALSE(persist::ParseCacheEntry("{\"model\":\"m\"}").ok());
  EXPECT_FALSE(persist::ParseCacheEntry("not json").ok());
  EXPECT_FALSE(persist::ParseCacheEntry(
                   "{\"model\":7,\"key\":1,\"larger\":2,\"cost\":3,"
                   "\"cs\":4,\"nc\":5}")
                   .ok());
}

// ---------------------------------------------------------------------
// CachePersistence end to end

PersistOptions Opts(const std::string& dir) {
  PersistOptions opts;
  opts.dir = dir;
  opts.fsync_policy = FsyncPolicy::kEachRecord;
  opts.compact_threshold_bytes = 0;  // explicit Compact() only
  return opts;
}

std::unique_ptr<ResourcePlanCache> MakeCache() {
  // Exact mode, sharded — the configuration the planning server shares.
  return std::make_unique<ResourcePlanCache>(
      CacheLookupMode::kExact, 0.0, CacheIndexKind::kSortedArray, 4);
}

void InsertWorkload(ResourcePlanCache* cache) {
  for (int i = 0; i < 40; ++i) {
    cache->Insert(i % 2 == 0 ? "smj" : "bhj",
                  MakePlan(1.0 + i * 0.25, 8.0 + (i % 5), 100.0 / (i + 1),
                           2.0 + (i % 3), 4 + (i % 7)));
  }
}

TEST(CachePersistenceTest, RestartReplaysBitIdentically) {
  TempDir dir("restart");
  std::string before;
  {
    auto cache = MakeCache();
    Result<std::unique_ptr<CachePersistence>> persistence =
        CachePersistence::Open(Opts(dir.path), cache.get());
    ASSERT_TRUE(persistence.ok()) << persistence.status().ToString();
    InsertWorkload(cache.get());
    before = CanonicalDump(*cache);
    ASSERT_FALSE(before.empty());
    ASSERT_TRUE((*persistence)->Close().ok());
  }
  // "Restart": a brand-new cache recovered from disk alone.
  auto cache = MakeCache();
  Result<std::unique_ptr<CachePersistence>> persistence =
      CachePersistence::Open(Opts(dir.path), cache.get());
  ASSERT_TRUE(persistence.ok()) << persistence.status().ToString();
  EXPECT_EQ((*persistence)->recovery_stats().journal_records, 40);
  EXPECT_FALSE((*persistence)->recovery_stats().torn_tail);
  EXPECT_EQ(CanonicalDump(*cache), before);
  // The recovered cache answers exact-mode lookups with pair guards.
  EXPECT_TRUE(cache->Lookup("smj", 1.0, 8.0).has_value());
  EXPECT_FALSE(cache->Lookup("smj", 1.0, 9.0).has_value());
}

TEST(CachePersistenceTest, CompactionPreservesContentAndShrinksJournal) {
  TempDir dir("compaction");
  std::string before;
  {
    auto cache = MakeCache();
    Result<std::unique_ptr<CachePersistence>> persistence =
        CachePersistence::Open(Opts(dir.path), cache.get());
    ASSERT_TRUE(persistence.ok());
    InsertWorkload(cache.get());
    const int64_t journal_before = (*persistence)->journal_bytes();
    ASSERT_TRUE((*persistence)->Compact().ok());
    EXPECT_EQ((*persistence)->compactions(), 1);
    EXPECT_LT((*persistence)->journal_bytes(), journal_before);
    // Post-compaction inserts land in the fresh journal.
    cache->Insert("smj", MakePlan(99.5, 128.0, 7.0, 8.0, 16));
    before = CanonicalDump(*cache);
    ASSERT_TRUE((*persistence)->Close().ok());
  }
  auto cache = MakeCache();
  Result<std::unique_ptr<CachePersistence>> persistence =
      CachePersistence::Open(Opts(dir.path), cache.get());
  ASSERT_TRUE(persistence.ok());
  // 40 entries from the snapshot, 1 from the post-compaction journal.
  EXPECT_EQ((*persistence)->recovery_stats().snapshot_entries, 40);
  EXPECT_EQ((*persistence)->recovery_stats().journal_records, 1);
  EXPECT_EQ(CanonicalDump(*cache), before);
}

TEST(CachePersistenceTest, AutomaticCompactionTriggersOnThreshold) {
  TempDir dir("auto_compact");
  PersistOptions opts = Opts(dir.path);
  opts.compact_threshold_bytes = 2048;
  auto cache = MakeCache();
  Result<std::unique_ptr<CachePersistence>> persistence =
      CachePersistence::Open(opts, cache.get());
  ASSERT_TRUE(persistence.ok());
  InsertWorkload(cache.get());  // ~40 * ~110 bytes >> 2 KiB
  EXPECT_GE((*persistence)->compactions(), 1);
  EXPECT_TRUE((*persistence)->last_error().ok())
      << (*persistence)->last_error().ToString();
  EXPECT_TRUE(io::FileExists((*persistence)->snapshot_path()));
}

TEST(CachePersistenceTest, TornJournalTailRecoversThePrefix) {
  TempDir dir("torn_tail");
  {
    auto cache = MakeCache();
    Result<std::unique_ptr<CachePersistence>> persistence =
        CachePersistence::Open(Opts(dir.path), cache.get());
    ASSERT_TRUE(persistence.ok());
    InsertWorkload(cache.get());
    ASSERT_TRUE((*persistence)->Close().ok());
  }
  // Crash simulation: chop the last 5 bytes off the journal.
  const std::string journal_path = dir.path + "/cache.journal";
  const std::string content = ReadAll(journal_path);
  std::filesystem::resize_file(journal_path, content.size() - 5);

  auto cache = MakeCache();
  Result<std::unique_ptr<CachePersistence>> persistence =
      CachePersistence::Open(Opts(dir.path), cache.get());
  ASSERT_TRUE(persistence.ok()) << persistence.status().ToString();
  EXPECT_TRUE((*persistence)->recovery_stats().torn_tail);
  EXPECT_EQ((*persistence)->recovery_stats().journal_records, 39);
  EXPECT_EQ(cache->entry_count(), 39);
  // The journal is whole again: append + recover once more.
  cache->Insert("smj", MakePlan(77.0, 8.0, 1.0, 2.0, 3));
  ASSERT_TRUE((*persistence)->Close().ok());
  auto cache2 = MakeCache();
  Result<std::unique_ptr<CachePersistence>> again =
      CachePersistence::Open(Opts(dir.path), cache2.get());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->recovery_stats().torn_tail);
  EXPECT_EQ(cache2->entry_count(), 40);
}

TEST(CachePersistenceTest, EntryCountAndBytesGaugesTrackInserts) {
  auto cache = MakeCache();
  EXPECT_EQ(cache->entry_count(), 0);
  EXPECT_EQ(cache->approx_bytes(), 0);
  InsertWorkload(cache.get());
  EXPECT_EQ(cache->entry_count(), 40);
  EXPECT_GT(cache->approx_bytes(), 0);
  // Overwrites do not double-count.
  cache->Insert("smj", MakePlan(1.0, 8.0, 50.0, 2.0, 4));
  EXPECT_EQ(cache->entry_count(), 40);
  cache->Clear();
  EXPECT_EQ(cache->entry_count(), 0);
  EXPECT_EQ(cache->approx_bytes(), 0);
}

TEST(CachePersistenceTest, DumpEntriesIsCanonicallyOrdered) {
  auto cache = MakeCache();
  InsertWorkload(cache.get());
  const std::vector<CacheEntryRecord> entries = cache->DumpEntries();
  ASSERT_EQ(entries.size(), 40u);
  for (size_t i = 1; i < entries.size(); ++i) {
    const CacheEntryRecord& a = entries[i - 1];
    const CacheEntryRecord& b = entries[i];
    const bool ordered =
        a.model < b.model ||
        (a.model == b.model &&
         (a.plan.smaller_gb < b.plan.smaller_gb ||
          (a.plan.smaller_gb == b.plan.smaller_gb &&
           a.plan.larger_gb < b.plan.larger_gb)));
    EXPECT_TRUE(ordered) << "at index " << i;
  }
}

TEST(CachePersistenceTest, JournalAppendErrorIsStickyNotFatal) {
  TempDir dir("append_error");
  ScriptedFileFaults faults;
  auto cache = MakeCache();
  Result<std::unique_ptr<CachePersistence>> persistence =
      CachePersistence::Open(Opts(dir.path), cache.get());
  ASSERT_TRUE(persistence.ok());
  {
    io::ScopedFileFaultInjector installed(&faults);
    faults.fail_write_at_.store(faults.writes_.load());
    cache->Insert("smj", MakePlan(1.0, 8.0, 1.0, 2.0, 3));  // journal fails
  }
  // The cache insert itself succeeded; only durability is degraded, and
  // the error is observable.
  EXPECT_EQ(cache->entry_count(), 1);
  EXPECT_FALSE((*persistence)->last_error().ok());
  EXPECT_FALSE((*persistence)->read_and_clear_last_error().ok());
  EXPECT_TRUE((*persistence)->last_error().ok());
}

}  // namespace
}  // namespace raqo
