#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/parametric.h"
#include "cost/model_io.h"
#include "rules/rule_based.h"
#include "rules/switch_points.h"
#include "rules/tree_io.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using catalog::TableId;

// ---------------------------------------------------------------------
// Cost-model serialization

TEST(ModelIoTest, PaperModelRoundTripsExactly) {
  const cost::OperatorCostModel original = cost::PaperHiveSmjModel();
  const std::string text = cost::SerializeModel(original);
  Result<cost::OperatorCostModel> restored = cost::DeserializeModel(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name(), original.name());
  EXPECT_EQ(restored->feature_set(), original.feature_set());
  ASSERT_EQ(restored->model().weights.size(),
            original.model().weights.size());
  for (size_t i = 0; i < original.model().weights.size(); ++i) {
    EXPECT_EQ(restored->model().weights[i], original.model().weights[i]);
  }
  // Identical predictions everywhere we probe.
  for (double ss : {0.5, 3.0, 9.0}) {
    cost::JoinFeatures f;
    f.smaller_gb = ss;
    f.larger_gb = 77;
    f.container_size_gb = 4;
    f.num_containers = 20;
    EXPECT_EQ(restored->PredictSeconds(f), original.PredictSeconds(f));
  }
}

TEST(ModelIoTest, TrainedPairRoundTrips) {
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  const std::string text = cost::SerializeModels(models);
  Result<cost::JoinCostModels> restored = cost::DeserializeModels(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  cost::JoinFeatures f;
  f.smaller_gb = 2.5;
  f.larger_gb = 30;
  f.container_size_gb = 6;
  f.num_containers = 40;
  EXPECT_EQ(restored->smj.PredictSeconds(f), models.smj.PredictSeconds(f));
  EXPECT_EQ(restored->bhj.PredictSeconds(f), models.bhj.PredictSeconds(f));
}

TEST(ModelIoTest, RejectsCorruptedInput) {
  const std::string good = cost::SerializeModel(cost::PaperHiveBhjModel());
  EXPECT_FALSE(cost::DeserializeModel("").ok());
  EXPECT_FALSE(cost::DeserializeModel("not a model").ok());
  // Header alone is not enough.
  EXPECT_FALSE(cost::DeserializeModel("raqo-cost-model v1\n").ok());
  // Wrong weight arity for the declared feature set.
  std::string bad = good;
  bad.replace(bad.find("weights 7"), 9, "weights 6");
  EXPECT_FALSE(cost::DeserializeModel(bad).ok());
  // Unknown field.
  EXPECT_FALSE(
      cost::DeserializeModel("raqo-cost-model v1\nbogus x\n").ok());
  // Missing pair separator.
  EXPECT_FALSE(cost::DeserializeModels(good).ok());
}

// ---------------------------------------------------------------------
// Decision-tree serialization

TEST(TreeIoTest, FittedTreeRoundTrips) {
  Result<rules::Dataset> data = rules::BuildJoinChoiceDataset(
      sim::EngineProfile::Hive(), rules::JoinChoiceGrid());
  ASSERT_TRUE(data.ok());
  Result<rules::DecisionTree> tree = rules::DecisionTree::Fit(*data);
  ASSERT_TRUE(tree.ok());

  const std::string text = rules::SerializeTree(*tree);
  Result<rules::DecisionTree> restored = rules::DeserializeTree(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NodeCount(), tree->NodeCount());
  EXPECT_EQ(restored->MaxPathLength(), tree->MaxPathLength());
  EXPECT_EQ(restored->feature_names(), tree->feature_names());
  EXPECT_EQ(restored->class_names(), tree->class_names());
  // Identical predictions on every training row.
  for (const auto& row : data->rows) {
    EXPECT_EQ(restored->Predict(row), tree->Predict(row));
  }
  // Serialization is stable (round-trip fixpoint).
  EXPECT_EQ(rules::SerializeTree(*restored), text);
}

TEST(TreeIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(rules::DeserializeTree("").ok());
  EXPECT_FALSE(rules::DeserializeTree("raqo-decision-tree v1\n").ok());
  Result<rules::DecisionTree> tree =
      rules::BuildDefaultRuleTree(sim::EngineProfile::Hive());
  ASSERT_TRUE(tree.ok());
  std::string text = rules::SerializeTree(*tree);
  // Claim more nodes than present.
  std::string bad = text;
  bad.replace(bad.find("nodes 3"), 7, "nodes 9");
  EXPECT_FALSE(rules::DeserializeTree(bad).ok());
  // Backward child pointer.
  bad = text;
  bad.replace(bad.find(" 1 2 "), 5, " 0 2 ");
  EXPECT_FALSE(rules::DeserializeTree(bad).ok());
}

TEST(TreeIoTest, FromPartsValidatesStructure) {
  using Node = rules::DecisionTree::Node;
  std::vector<std::string> features = {"x"};
  std::vector<std::string> classes = {"A", "B"};
  Node leaf;
  leaf.class_counts = {1, 0};
  leaf.samples = 1;
  // Single-leaf tree is fine.
  EXPECT_TRUE(
      rules::DecisionTree::FromParts(features, classes, {leaf}).ok());
  // One-child node rejected.
  Node half = leaf;
  half.left = 1;
  EXPECT_FALSE(
      rules::DecisionTree::FromParts(features, classes, {half, leaf}).ok());
  // Bad majority.
  Node bad_majority = leaf;
  bad_majority.majority = 7;
  EXPECT_FALSE(
      rules::DecisionTree::FromParts(features, classes, {bad_majority})
          .ok());
  // Wrong count arity.
  Node bad_counts = leaf;
  bad_counts.class_counts = {1};
  EXPECT_FALSE(
      rules::DecisionTree::FromParts(features, classes, {bad_counts}).ok());
}

// ---------------------------------------------------------------------
// Parametric plan sets

TEST(ParametricTest, DispatchesNearestConditionPlan) {
  // Sampled-orders catalog: the optimal join implementation flips between
  // big-container and many-small-container clusters.
  catalog::Catalog cat;
  const TableId orders = *cat.AddTable({"orders_sample", 49'000'000, 110});
  const TableId lineitem = *cat.AddTable({"lineitem", 600'000'000, 130});
  ASSERT_TRUE(cat.AddJoin(lineitem, orders, 1e-8).ok());
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  core::RaqoPlanner planner(&cat, models,
                            resource::ClusterConditions::PaperDefault());

  const std::vector<resource::ClusterConditions> representatives = {
      resource::ClusterConditions::WithMax(10, 6),    // few fat containers
      resource::ClusterConditions::WithMax(3, 100),   // many small ones
  };
  Result<core::ParametricPlanSet> set = core::ParametricPlanSet::Build(
      planner, {orders, lineitem}, representatives);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->entries().size(), 2u);
  EXPECT_EQ(set->DistinctShapes(), 2);

  // Dispatch: a busy cluster close to the first representative gets its
  // plan, and vice versa.
  const core::JointPlan& busy =
      set->PlanFor(resource::ClusterConditions::WithMax(9, 8));
  const core::JointPlan& wide =
      set->PlanFor(resource::ClusterConditions::WithMax(3, 80));
  EXPECT_TRUE(
      busy.plan->StructurallyEquals(*set->entries()[0].plan.plan));
  EXPECT_TRUE(
      wide.plan->StructurallyEquals(*set->entries()[1].plan.plan));
  EXPECT_FALSE(busy.plan->StructurallyEquals(*wide.plan));
}

TEST(ParametricTest, RejectsEmptyRepresentatives) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  const cost::JoinCostModels models =
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive());
  core::RaqoPlanner planner(&cat, models,
                            resource::ClusterConditions::PaperDefault());
  EXPECT_FALSE(core::ParametricPlanSet::Build(
                   planner,
                   *catalog::TpchQueryTables(cat, catalog::TpchQuery::kQ12),
                   {})
                   .ok());
}

}  // namespace
}  // namespace raqo
