#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/cost_vector.h"
#include "cost/features.h"

namespace raqo::cost {
namespace {

TEST(FeaturesTest, PaperExpansionMatchesPaperVector) {
  JoinFeatures f;
  f.smaller_gb = 2.0;
  f.larger_gb = 50.0;  // ignored by the paper feature set
  f.container_size_gb = 3.0;
  f.num_containers = 10.0;
  const std::vector<double> expanded =
      ExpandFeatures(f, FeatureSet::kPaper);
  ASSERT_EQ(expanded.size(), kNumPaperFeatures);
  EXPECT_EQ(expanded, (std::vector<double>{2, 4, 3, 9, 10, 100, 30}));
}

TEST(FeaturesTest, ExtendedExpansionCapturesBothSides) {
  JoinFeatures f;
  f.smaller_gb = 2.0;
  f.larger_gb = 8.0;
  f.container_size_gb = 4.0;
  f.num_containers = 10.0;
  const std::vector<double> expanded =
      ExpandFeatures(f, FeatureSet::kExtended);
  ASSERT_EQ(expanded.size(), kNumExtendedFeatures);
  // [ss, ls, ss/nc, ls/nc, ss*nc, nc, cs, ss/cs, ls/cs, 1/cs]
  EXPECT_EQ(expanded, (std::vector<double>{2, 8, 0.2, 0.8, 20, 10, 4, 0.5,
                                           2, 0.25}));
}

TEST(FeaturesTest, NamesAligned) {
  ASSERT_EQ(FeatureNames(FeatureSet::kPaper).size(), kNumPaperFeatures);
  EXPECT_EQ(FeatureNames(FeatureSet::kPaper)[0], "ss");
  EXPECT_EQ(FeatureNames(FeatureSet::kPaper)[6], "cs*nc");
  ASSERT_EQ(FeatureNames(FeatureSet::kExtended).size(),
            kNumExtendedFeatures);
  EXPECT_EQ(FeatureNames(FeatureSet::kExtended)[1], "ls");
  EXPECT_EQ(NumFeatures(FeatureSet::kPaper), kNumPaperFeatures);
  EXPECT_EQ(NumFeatures(FeatureSet::kExtended), kNumExtendedFeatures);
}

TEST(CostVectorTest, AdditionAndDominance) {
  CostVector a{10, 1};
  CostVector b{5, 2};
  CostVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.seconds, 15);
  EXPECT_DOUBLE_EQ(sum.dollars, 3);
  EXPECT_TRUE((CostVector{5, 1}).Dominates(a));
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(a));  // strict
}

TEST(CostVectorTest, ApproxDominance) {
  CostVector a{10, 10};
  CostVector b{10.4, 10.4};
  EXPECT_TRUE(a.ApproxDominates(b, 0.0));
  EXPECT_TRUE(b.ApproxDominates(a, 0.05));  // within 5%
  EXPECT_FALSE(b.ApproxDominates(a, 0.01));
}

TEST(CostVectorTest, WeightedScalarization) {
  CostVector c{100, 2};
  EXPECT_DOUBLE_EQ(c.Weighted(1.0), 100);
  EXPECT_DOUBLE_EQ(c.Weighted(0.0), 2);
  EXPECT_DOUBLE_EQ(c.Weighted(0.5), 51);
}

TEST(CostModelTest, PaperCoefficientSigns) {
  // The paper notes: SMJ has positive coefficients for container size and
  // negative for the number of containers; BHJ the opposite.
  const OperatorCostModel smj = PaperHiveSmjModel();
  const OperatorCostModel bhj = PaperHiveBhjModel();
  EXPECT_EQ(smj.feature_set(), FeatureSet::kPaper);
  ASSERT_EQ(smj.model().weights.size(), kNumPaperFeatures);
  ASSERT_EQ(bhj.model().weights.size(), kNumPaperFeatures);
  EXPECT_GT(smj.model().weights[2], 0.0);  // cs
  EXPECT_LT(smj.model().weights[4], 0.0);  // nc
  EXPECT_LT(bhj.model().weights[2], 0.0);  // cs
  EXPECT_GT(bhj.model().weights[4], 0.0);  // nc
}

TEST(CostModelTest, PredictionsAreClamped) {
  const OperatorCostModel smj = PaperHiveSmjModel();
  // Extreme parallelism drives the raw paper model negative; the clamp
  // keeps predictions usable as costs.
  JoinFeatures f;
  f.smaller_gb = 0.1;
  f.container_size_gb = 1.0;
  f.num_containers = 500.0;
  EXPECT_GE(smj.PredictSeconds(f), OperatorCostModel::kMinSeconds);
}

TEST(CostModelTest, PaperSmjPrefersParallelism) {
  const OperatorCostModel smj = PaperHiveSmjModel();
  JoinFeatures few;
  few.smaller_gb = 5.0;
  few.container_size_gb = 4.0;
  few.num_containers = 5.0;
  JoinFeatures many = few;
  many.num_containers = 40.0;
  EXPECT_GT(smj.PredictSeconds(few), smj.PredictSeconds(many));
}

TEST(CostModelTest, PaperBhjPrefersMemory) {
  const OperatorCostModel bhj = PaperHiveBhjModel();
  JoinFeatures small_mem;
  small_mem.smaller_gb = 3.0;
  small_mem.container_size_gb = 3.0;
  small_mem.num_containers = 10.0;
  JoinFeatures big_mem = small_mem;
  big_mem.container_size_gb = 9.0;
  EXPECT_GT(bhj.PredictSeconds(small_mem), bhj.PredictSeconds(big_mem));
}

TEST(CostModelTest, ForImplSelection) {
  JoinCostModels models = PaperHiveModels();
  EXPECT_EQ(&models.ForImpl(plan::JoinImpl::kSortMergeJoin), &models.smj);
  EXPECT_EQ(&models.ForImpl(plan::JoinImpl::kBroadcastHashJoin),
            &models.bhj);
}

TEST(CostModelTest, TrainOnSyntheticSamples) {
  // Samples from a known linear function of the expanded features should
  // be recovered nearly exactly.
  std::vector<ProfileSample> samples;
  for (double ss : {1.0, 2.0, 4.0}) {
    for (double cs : {2.0, 4.0, 8.0}) {
      for (double nc : {5.0, 10.0, 20.0}) {
        ProfileSample s;
        s.features.smaller_gb = ss;
        s.features.container_size_gb = cs;
        s.features.num_containers = nc;
        s.seconds = 100 + 10 * ss + 2 * cs * cs - 0.5 * nc;
        samples.push_back(s);
      }
    }
  }
  Result<OperatorCostModel> model =
      OperatorCostModel::Train("synthetic", samples, FeatureSet::kPaper);
  ASSERT_TRUE(model.ok());
  JoinFeatures probe;
  probe.smaller_gb = 3.0;
  probe.container_size_gb = 6.0;
  probe.num_containers = 15.0;
  const double expected = 100 + 30 + 72 - 7.5;
  EXPECT_NEAR(model->PredictSeconds(probe), expected, 1.0);
}

TEST(CostModelTest, TrainRejectsEmpty) {
  EXPECT_FALSE(OperatorCostModel::Train("empty", {}).ok());
}

}  // namespace
}  // namespace raqo::cost
