#include <gtest/gtest.h>

#include <cmath>

#include "core/plan_cache.h"
#include "core/resource_planner.h"

namespace raqo::core {
namespace {

using resource::ClusterConditions;
using resource::ResourceConfig;

// A convex bowl with its optimum at (6, 40): both planners must find it.
double Bowl(const ResourceConfig& c) {
  const double dcs = c.container_size_gb() - 6.0;
  const double dnc = c.num_containers() - 40.0;
  return dcs * dcs + 0.01 * dnc * dnc + 5.0;
}

TEST(BruteForceTest, FindsGlobalOptimum) {
  BruteForceResourcePlanner planner;
  ClusterConditions cluster = ClusterConditions::PaperDefault();
  Result<ResourcePlanResult> r = planner.PlanResources(Bowl, cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->config, ResourceConfig(6, 40));
  EXPECT_DOUBLE_EQ(r->cost, 5.0);
  EXPECT_EQ(r->configs_explored, cluster.TotalGridSize());
}

TEST(HillClimbTest, FindsOptimumOfConvexObjective) {
  HillClimbResourcePlanner planner;
  ClusterConditions cluster = ClusterConditions::PaperDefault();
  Result<ResourcePlanResult> r = planner.PlanResources(Bowl, cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->config, ResourceConfig(6, 40));
  EXPECT_DOUBLE_EQ(r->cost, 5.0);
}

TEST(HillClimbTest, ExploresFarFewerConfigsThanBruteForce) {
  // Figure 13: hill climbing explores ~4x fewer resource configurations.
  BruteForceResourcePlanner brute;
  HillClimbResourcePlanner hill;
  ClusterConditions cluster = ClusterConditions::PaperDefault();
  auto b = brute.PlanResources(Bowl, cluster);
  auto h = hill.PlanResources(Bowl, cluster);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(h.ok());
  EXPECT_LT(h->configs_explored * 4, b->configs_explored);
  EXPECT_DOUBLE_EQ(h->cost, b->cost);
}

TEST(HillClimbTest, StartsFromClusterMinimum) {
  // A cost that strictly increases with resources: the climber must stay
  // at the minimum configuration (the cheapest feasible resources).
  auto increasing = [](const ResourceConfig& c) {
    return c.total_memory_gb();
  };
  HillClimbResourcePlanner planner;
  Result<ResourcePlanResult> r =
      planner.PlanResources(increasing, ClusterConditions::PaperDefault());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->config, ResourceConfig(1, 1));
  // 1 evaluation at the start + 2 probes (only forward steps exist).
  EXPECT_LE(r->configs_explored, 4);
}

TEST(HillClimbTest, ClimbsToMaximumWhenMoreIsBetter) {
  auto decreasing = [](const ResourceConfig& c) {
    return 1e6 - c.total_memory_gb();
  };
  HillClimbResourcePlanner planner;
  Result<ResourcePlanResult> r =
      planner.PlanResources(decreasing, ClusterConditions::WithMax(4, 6));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->config, ResourceConfig(4, 6));
}

TEST(HillClimbTest, RespectsExplicitStart) {
  HillClimbResourcePlanner planner(ResourceConfig(9, 90));
  auto increasing = [](const ResourceConfig& c) {
    return c.total_memory_gb();
  };
  Result<ResourcePlanResult> r =
      planner.PlanResources(increasing, ClusterConditions::PaperDefault());
  ASSERT_TRUE(r.ok());
  // Strictly decreasing objective toward the minimum: the greedy walk
  // ends at the global minimum corner.
  EXPECT_EQ(r->config, ResourceConfig(1, 1));
}

TEST(HillClimbTest, StopsAtLocalOptimum) {
  // Two separated wells; the climber starting at min falls into the
  // nearer (worse) one — hill climbing is local by design.
  auto two_wells = [](const ResourceConfig& c) {
    const double d1 = std::abs(c.container_size_gb() - 2.0) +
                      std::abs(c.num_containers() - 2.0);
    const double d2 = std::abs(c.container_size_gb() - 9.0) +
                      std::abs(c.num_containers() - 90.0);
    return std::min(10.0 + d1, 1.0 + d2);
  };
  HillClimbResourcePlanner planner;
  BruteForceResourcePlanner brute;
  ClusterConditions cluster = ClusterConditions::PaperDefault();
  auto local = planner.PlanResources(two_wells, cluster);
  auto global = brute.PlanResources(two_wells, cluster);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(local->config, ResourceConfig(2, 2));
  EXPECT_EQ(global->config, ResourceConfig(9, 90));
  EXPECT_GT(local->cost, global->cost);
}

TEST(BruteForceTest, AllInfeasibleFails) {
  auto infeasible = [](const ResourceConfig&) {
    return std::numeric_limits<double>::infinity();
  };
  BruteForceResourcePlanner brute;
  HillClimbResourcePlanner hill;
  EXPECT_TRUE(brute.PlanResources(infeasible, ClusterConditions::WithMax(2, 2))
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(hill.PlanResources(infeasible, ClusterConditions::WithMax(2, 2))
                  .status()
                  .IsFailedPrecondition());
}

CachedResourcePlan Entry(double key, double cs, double nc, double cost) {
  CachedResourcePlan p;
  p.key_gb = key;
  p.config = ResourceConfig(cs, nc);
  p.cost = cost;
  return p;
}

template <typename IndexT>
class PlanIndexTest : public ::testing::Test {};

using IndexTypes = ::testing::Types<SortedArrayIndex, CsbTreeIndex>;
TYPED_TEST_SUITE(PlanIndexTest, IndexTypes);

TYPED_TEST(PlanIndexTest, InsertFindExact) {
  TypeParam index;
  EXPECT_EQ(index.size(), 0u);
  index.Insert(Entry(2.0, 4, 10, 100));
  index.Insert(Entry(1.0, 2, 5, 50));
  index.Insert(Entry(3.0, 8, 20, 200));
  EXPECT_EQ(index.size(), 3u);
  auto hit = index.FindExact(2.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->config, ResourceConfig(4, 10));
  EXPECT_FALSE(index.FindExact(2.5).has_value());
}

TYPED_TEST(PlanIndexTest, OverwriteOnEqualKey) {
  TypeParam index;
  index.Insert(Entry(2.0, 4, 10, 100));
  index.Insert(Entry(2.0, 6, 30, 300));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.FindExact(2.0)->config, ResourceConfig(6, 30));
}

TYPED_TEST(PlanIndexTest, NeighborsSortedWithinThreshold) {
  TypeParam index;
  for (double k : {1.0, 1.5, 2.0, 2.5, 3.0, 10.0}) {
    index.Insert(Entry(k, k, k, k));
  }
  auto neighbors = index.FindNeighbors(2.0, 0.6);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_DOUBLE_EQ(neighbors[0].key_gb, 1.5);
  EXPECT_DOUBLE_EQ(neighbors[1].key_gb, 2.0);
  EXPECT_DOUBLE_EQ(neighbors[2].key_gb, 2.5);
  EXPECT_TRUE(index.FindNeighbors(100.0, 0.5).empty());
}

TEST(ResourcePlanCacheTest, ExactModeHitsOnlyExact) {
  ResourcePlanCache cache(CacheLookupMode::kExact, 0.5);
  cache.Insert("smj", Entry(2.0, 4, 10, 100));
  EXPECT_TRUE(cache.Lookup("smj", 2.0).has_value());
  EXPECT_FALSE(cache.Lookup("smj", 2.1).has_value());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResourcePlanCacheTest, ModelsAreIsolated) {
  ResourcePlanCache cache(CacheLookupMode::kExact, 0.0);
  cache.Insert("smj", Entry(2.0, 4, 10, 100));
  EXPECT_FALSE(cache.Lookup("bhj", 2.0).has_value());
  EXPECT_TRUE(cache.Lookup("smj", 2.0).has_value());
}

TEST(ResourcePlanCacheTest, NearestNeighborWithinThreshold) {
  ResourcePlanCache cache(CacheLookupMode::kNearestNeighbor, 0.5);
  cache.Insert("smj", Entry(2.0, 4, 10, 100));
  cache.Insert("smj", Entry(3.0, 8, 20, 200));
  auto hit = cache.Lookup("smj", 2.2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->config, ResourceConfig(4, 10));  // 2.0 is nearer
  auto miss = cache.Lookup("smj", 2.51);          // equidistant-ish but > thr
  ASSERT_TRUE(miss.has_value());                  // 3.0 is within 0.49
  EXPECT_EQ(miss->config, ResourceConfig(8, 20));
  EXPECT_FALSE(cache.Lookup("smj", 4.0).has_value());
}

TEST(ResourcePlanCacheTest, WeightedAverageBlendsNeighbors) {
  ResourcePlanCache cache(CacheLookupMode::kWeightedAverage, 1.0);
  cache.Insert("smj", Entry(2.0, 4, 10, 100));
  cache.Insert("smj", Entry(3.0, 8, 20, 200));
  auto hit = cache.Lookup("smj", 2.5);  // exactly between: plain average
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->config.container_size_gb(), 6.0, 1e-6);
  EXPECT_NEAR(hit->config.num_containers(), 15.0, 1e-6);
  EXPECT_NEAR(hit->cost, 150.0, 1e-3);
  // Nearer to 2.0: blend leans toward its configuration.
  auto lean = cache.Lookup("smj", 2.1);
  ASSERT_TRUE(lean.has_value());
  EXPECT_LT(lean->config.container_size_gb(), 5.0);
}

TEST(ResourcePlanCacheTest, ZeroThresholdDegeneratesToExact) {
  ResourcePlanCache cache(CacheLookupMode::kNearestNeighbor, 0.0);
  cache.Insert("smj", Entry(2.0, 4, 10, 100));
  EXPECT_TRUE(cache.Lookup("smj", 2.0).has_value());
  EXPECT_FALSE(cache.Lookup("smj", 2.0001).has_value());
}

TEST(ResourcePlanCacheTest, ClearAndSize) {
  ResourcePlanCache cache(CacheLookupMode::kExact, 0.0);
  cache.Insert("smj", Entry(1.0, 1, 1, 1));
  cache.Insert("bhj", Entry(2.0, 2, 2, 2));
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("smj", 1.0).has_value());
}

TEST(ResourcePlanCacheTest, CsbTreeBackendBehavesIdentically) {
  ResourcePlanCache a(CacheLookupMode::kNearestNeighbor, 0.3,
                      CacheIndexKind::kSortedArray);
  ResourcePlanCache b(CacheLookupMode::kNearestNeighbor, 0.3,
                      CacheIndexKind::kCsbTree);
  for (double k = 0.0; k < 50.0; k += 0.7) {
    a.Insert("m", Entry(k, k + 1, k + 2, k * 10));
    b.Insert("m", Entry(k, k + 1, k + 2, k * 10));
  }
  for (double probe = 0.0; probe < 50.0; probe += 0.31) {
    auto ha = a.Lookup("m", probe);
    auto hb = b.Lookup("m", probe);
    ASSERT_EQ(ha.has_value(), hb.has_value()) << probe;
    if (ha.has_value()) {
      EXPECT_DOUBLE_EQ(ha->key_gb, hb->key_gb) << probe;
      EXPECT_EQ(ha->config, hb->config) << probe;
    }
  }
}

TEST(ResourcePlanCacheTest, ModeNames) {
  EXPECT_STREQ(CacheLookupModeName(CacheLookupMode::kExact), "exact");
  EXPECT_STREQ(CacheLookupModeName(CacheLookupMode::kNearestNeighbor),
               "nearest-neighbor");
  EXPECT_STREQ(CacheLookupModeName(CacheLookupMode::kWeightedAverage),
               "weighted-average");
}

}  // namespace
}  // namespace raqo::core
