#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/workload_runner.h"
#include "sim/profile_runner.h"
#include "trace/queue_sim.h"

namespace raqo {
namespace {

using catalog::TpchQuery;

// ---------------------------------------------------------------------
// Backfill queue policy

TEST(BackfillQueueTest, MatchesFifoWhenUncontended) {
  std::vector<trace::JobSpec> jobs = {
      {0.0, 10.0, 2},
      {1.0, 5.0, 3},
  };
  auto fifo = *trace::SimulateQueue(jobs, 10, trace::QueuePolicy::kFifo);
  auto backfill =
      *trace::SimulateQueue(jobs, 10, trace::QueuePolicy::kBackfill);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(fifo[i].start_s, backfill[i].start_s);
    EXPECT_DOUBLE_EQ(backfill[i].queue_time_s(), 0.0);
  }
}

TEST(BackfillQueueTest, SmallJobJumpsBlockedQueue) {
  // Job 1 cannot fit next to job 0; job 2 can. FIFO holds job 2 behind
  // job 1; backfill lets it through.
  std::vector<trace::JobSpec> jobs = {
      {0.0, 100.0, 8},
      {1.0, 1.0, 8},
      {2.0, 1.0, 2},
  };
  auto fifo = *trace::SimulateQueue(jobs, 10, trace::QueuePolicy::kFifo);
  auto backfill =
      *trace::SimulateQueue(jobs, 10, trace::QueuePolicy::kBackfill);
  EXPECT_DOUBLE_EQ(fifo[2].start_s, 100.0);
  EXPECT_DOUBLE_EQ(backfill[2].start_s, 2.0);
  // The blocked big job still starts when capacity frees.
  EXPECT_DOUBLE_EQ(backfill[1].start_s, 100.0);
}

TEST(BackfillQueueTest, OutcomesKeepInputOrder) {
  std::vector<trace::JobSpec> jobs = {
      {0.0, 50.0, 6},
      {1.0, 2.0, 6},
      {2.0, 2.0, 4},
      {3.0, 2.0, 4},
  };
  auto out = *trace::SimulateQueue(jobs, 10, trace::QueuePolicy::kBackfill);
  ASSERT_EQ(out.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].arrival_s, jobs[i].arrival_s);
    EXPECT_DOUBLE_EQ(out[i].runtime_s, jobs[i].runtime_s);
    EXPECT_GE(out[i].start_s, out[i].arrival_s);
  }
}

TEST(BackfillQueueTest, ReducesAggregateQueueingOnRealWorkload) {
  trace::WorkloadOptions options;
  options.num_jobs = 5'000;
  auto jobs = *trace::GenerateWorkload(options);
  auto fifo = *trace::SimulateQueue(jobs, options.cluster_capacity,
                                    trace::QueuePolicy::kFifo);
  auto backfill = *trace::SimulateQueue(jobs, options.cluster_capacity,
                                        trace::QueuePolicy::kBackfill);
  double fifo_wait = 0.0;
  double backfill_wait = 0.0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    fifo_wait += fifo[i].queue_time_s();
    backfill_wait += backfill[i].queue_time_s();
  }
  EXPECT_LT(backfill_wait, fifo_wait);
}

TEST(BackfillQueueTest, ValidatesInput) {
  EXPECT_FALSE(trace::SimulateQueue({{0, 1, 1}}, 0,
                                    trace::QueuePolicy::kBackfill)
                   .ok());
  EXPECT_FALSE(trace::SimulateQueue({{0, -1, 1}}, 10,
                                    trace::QueuePolicy::kBackfill)
                   .ok());
  EXPECT_FALSE(trace::SimulateQueue({{5, 1, 1}, {0, 1, 1}}, 10,
                                    trace::QueuePolicy::kBackfill)
                   .ok());
  EXPECT_FALSE(trace::SimulateQueue({{0, 1, 11}}, 10,
                                    trace::QueuePolicy::kBackfill)
                   .ok());
}

// ---------------------------------------------------------------------
// Workload runner

class WorkloadRunnerTest : public ::testing::Test {
 protected:
  WorkloadRunnerTest() : cat_(catalog::BuildTpchCatalog(100.0)) {}

  core::RaqoPlanner MakePlanner(bool across_query_cache) {
    static const cost::JoinCostModels* models = new cost::JoinCostModels(
        *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
    core::RaqoPlannerOptions options;
    options.evaluator.use_cache = true;
    options.evaluator.cache_mode = core::CacheLookupMode::kNearestNeighbor;
    options.evaluator.cache_threshold_gb = 0.05;
    options.clear_cache_between_queries = !across_query_cache;
    return core::RaqoPlanner(&cat_, *models,
                             resource::ClusterConditions::PaperDefault(),
                             resource::PricingModel(), options);
  }

  std::vector<core::WorkloadQuery> Workload() {
    return {
        {"Q3", *catalog::TpchQueryTables(cat_, TpchQuery::kQ3)},
        {"Q3-again", *catalog::TpchQueryTables(cat_, TpchQuery::kQ3)},
        {"Q2", *catalog::TpchQueryTables(cat_, TpchQuery::kQ2)},
    };
  }

  catalog::Catalog cat_;
};

TEST_F(WorkloadRunnerTest, ReportsPerQueryAndTotals) {
  core::RaqoPlanner planner = MakePlanner(false);
  core::WorkloadRunner runner(&planner);
  Result<core::WorkloadReport> report = runner.Run(Workload());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 3u);
  EXPECT_EQ(report->queries[0].label, "Q3");
  double wall = 0.0;
  int64_t iters = 0;
  for (const auto& q : report->queries) {
    EXPECT_GT(q.cost.seconds, 0.0);
    wall += q.wall_ms;
    iters += q.resource_configs_explored;
  }
  EXPECT_DOUBLE_EQ(report->total_wall_ms, wall);
  EXPECT_EQ(report->total_resource_configs_explored, iters);
}

TEST_F(WorkloadRunnerTest, AcrossQueryCachingSavesWork) {
  core::RaqoPlanner cleared = MakePlanner(false);
  core::RaqoPlanner warm = MakePlanner(true);
  core::WorkloadRunner runner_cleared(&cleared);
  core::WorkloadRunner runner_warm(&warm);
  Result<core::WorkloadReport> a = runner_cleared.Run(Workload());
  Result<core::WorkloadReport> b = runner_warm.Run(Workload());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The repeated Q3 should be (nearly) free with the warm cache.
  EXPECT_LT(b->queries[1].resource_configs_explored,
            a->queries[1].resource_configs_explored);
  EXPECT_LT(b->total_resource_configs_explored,
            a->total_resource_configs_explored);
  // Same plans either way.
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_NEAR(a->queries[i].cost.seconds, b->queries[i].cost.seconds,
                a->queries[i].cost.seconds * 0.05);
  }
}

TEST_F(WorkloadRunnerTest, RejectsEmptyWorkloadAndPropagatesErrors) {
  core::RaqoPlanner planner = MakePlanner(false);
  core::WorkloadRunner runner(&planner);
  EXPECT_FALSE(runner.Run({}).ok());
  // An invalid query fails the run.
  std::vector<core::WorkloadQuery> bad = {{"dup", {0, 0}}};
  EXPECT_FALSE(runner.Run(bad).ok());
}

}  // namespace
}  // namespace raqo
