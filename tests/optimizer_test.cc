#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/random_schema.h"
#include "catalog/tpch.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "optimizer/fast_randomized.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/plan_cost.h"
#include "optimizer/selinger.h"
#include "plan/plan_builder.h"

namespace raqo::optimizer {
namespace {

using catalog::TableId;
using catalog::TpchQuery;

FixedResourceEvaluator MakeEvaluator(
    resource::ResourceConfig config = resource::ResourceConfig(6, 20)) {
  return FixedResourceEvaluator(cost::PaperHiveModels(), config);
}

TEST(FixedResourceEvaluatorTest, CostsAndCounts) {
  FixedResourceEvaluator eval = MakeEvaluator();
  JoinContext ctx;
  ctx.impl = plan::JoinImpl::kSortMergeJoin;
  ctx.left_bytes = catalog::GbToBytes(2);
  ctx.right_bytes = catalog::GbToBytes(10);
  Result<OperatorCost> cost = eval.CostJoin(ctx);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost->cost.seconds, 0.0);
  EXPECT_GT(cost->cost.dollars, 0.0);
  ASSERT_TRUE(cost->resources.has_value());
  EXPECT_EQ(*cost->resources, resource::ResourceConfig(6, 20));
  EXPECT_EQ(eval.operator_cost_calls(), 1);
  EXPECT_EQ(eval.resource_configs_explored(), 1);
  eval.ResetCounters();
  EXPECT_EQ(eval.operator_cost_calls(), 0);
}

TEST(FixedResourceEvaluatorTest, BhjInfeasibleWhenTooBig) {
  FixedResourceEvaluator eval = MakeEvaluator(resource::ResourceConfig(2, 10));
  JoinContext ctx;
  ctx.impl = plan::JoinImpl::kBroadcastHashJoin;
  ctx.left_bytes = catalog::GbToBytes(5);
  ctx.right_bytes = catalog::GbToBytes(50);
  Result<OperatorCost> cost = eval.CostJoin(ctx);
  ASSERT_FALSE(cost.ok());
  EXPECT_TRUE(cost.status().IsResourceExhausted());
}

TEST(PlanCostTest, SumsJoinCostsAndAttachesResources) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  plan::CardinalityEstimator est(&cat);
  FixedResourceEvaluator eval = MakeEvaluator();
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  auto plan = *plan::BuildLeftDeep(q3, plan::JoinImpl::kSortMergeJoin);
  Result<cost::CostVector> total = EvaluatePlanCost(*plan, est, eval);
  ASSERT_TRUE(total.ok());
  EXPECT_GT(total->seconds, 0.0);
  int with_resources = 0;
  plan->VisitJoins([&](const plan::PlanNode& j) {
    if (j.resources().has_value()) ++with_resources;
  });
  EXPECT_EQ(with_resources, 2);
  // Const variant returns the same value.
  FixedResourceEvaluator eval2 = MakeEvaluator();
  Result<cost::CostVector> again = EvaluatePlanCostConst(*plan, est, eval2);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->seconds, total->seconds);
}

TEST(SelingerTest, SingleTableIsScan) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  FixedResourceEvaluator eval = MakeEvaluator();
  SelingerPlanner planner;
  Result<PlannedQuery> result =
      planner.Plan(cat, {*cat.FindTable("orders")}, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan->is_scan());
  EXPECT_DOUBLE_EQ(result->cost.seconds, 0.0);
}

TEST(SelingerTest, PlansAllTpchQueries) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  SelingerPlanner planner;
  for (TpchQuery q : {TpchQuery::kQ12, TpchQuery::kQ3, TpchQuery::kQ2,
                      TpchQuery::kAll}) {
    FixedResourceEvaluator eval = MakeEvaluator();
    std::vector<TableId> tables = *catalog::TpchQueryTables(cat, q);
    Result<PlannedQuery> result = planner.Plan(cat, tables, eval);
    ASSERT_TRUE(result.ok()) << catalog::TpchQueryName(q);
    EXPECT_TRUE(plan::ValidatePlan(cat, *result->plan, tables).ok());
    EXPECT_GT(result->cost.seconds, 0.0);
    EXPECT_GT(result->stats.plans_considered, 0);
    // Left-deep: every join's right child is a scan.
    result->plan->VisitJoins([](const plan::PlanNode& j) {
      EXPECT_TRUE(j.right()->is_scan());
    });
  }
}

TEST(SelingerTest, OptimalAmongLeftDeepPermutations) {
  // Exhaustive check on Q3 (3 tables): the DP result must match the best
  // of all left-deep orders x implementation choices.
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  std::sort(tables.begin(), tables.end());

  double best_brute = 1e300;
  plan::CardinalityEstimator est(&cat);
  do {
    for (int impl_bits = 0; impl_bits < 4; ++impl_bits) {
      std::vector<plan::JoinImpl> impls = {
          (impl_bits & 1) ? plan::JoinImpl::kBroadcastHashJoin
                          : plan::JoinImpl::kSortMergeJoin,
          (impl_bits & 2) ? plan::JoinImpl::kBroadcastHashJoin
                          : plan::JoinImpl::kSortMergeJoin};
      auto candidate = plan::BuildLeftDeep(tables, impls);
      ASSERT_TRUE(candidate.ok());
      FixedResourceEvaluator eval = MakeEvaluator();
      Result<cost::CostVector> c =
          EvaluatePlanCost(**candidate, est, eval);
      if (c.ok()) best_brute = std::min(best_brute, c->seconds);
    }
  } while (std::next_permutation(tables.begin(), tables.end()));

  FixedResourceEvaluator eval = MakeEvaluator();
  SelingerPlanner planner;
  Result<PlannedQuery> dp = planner.Plan(
      cat, *catalog::TpchQueryTables(cat, TpchQuery::kQ3), eval);
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp->cost.seconds, best_brute, best_brute * 1e-9);
}

TEST(SelingerTest, RespectsTableLimit) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  SelingerOptions options;
  options.max_tables = 2;
  SelingerPlanner planner(options);
  FixedResourceEvaluator eval = MakeEvaluator();
  Result<PlannedQuery> result = planner.Plan(
      cat, *catalog::TpchQueryTables(cat, TpchQuery::kQ3), eval);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnsupported());
}

TEST(SelingerTest, RejectsEmptyAndDuplicates) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  SelingerPlanner planner;
  FixedResourceEvaluator eval = MakeEvaluator();
  EXPECT_FALSE(planner.Plan(cat, {}, eval).ok());
  EXPECT_FALSE(planner.Plan(cat, {0, 0}, eval).ok());
}

TEST(SelingerTest, HandlesDisconnectedQueriesViaCrossProducts) {
  catalog::Catalog cat;
  TableId a = *cat.AddTable({"a", 1000, 100});
  TableId b = *cat.AddTable({"b", 1000, 100});
  // No join edge at all: the fallback pass must still produce a plan.
  FixedResourceEvaluator eval = MakeEvaluator();
  SelingerPlanner planner;
  Result<PlannedQuery> result = planner.Plan(cat, {a, b}, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan->NumJoins(), 1);
}

TEST(SelingerTest, MoneyObjectiveChangesScalarization) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kAll);
  SelingerOptions time_opt;
  time_opt.time_weight = 1.0;
  SelingerOptions money_opt;
  money_opt.time_weight = 0.0;
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> by_time =
      SelingerPlanner(time_opt).Plan(cat, tables, e1);
  Result<PlannedQuery> by_money =
      SelingerPlanner(money_opt).Plan(cat, tables, e2);
  ASSERT_TRUE(by_time.ok());
  ASSERT_TRUE(by_money.ok());
  // The money-optimal plan cannot cost more dollars than the time-optimal.
  EXPECT_LE(by_money->cost.dollars, by_time->cost.dollars + 1e-9);
  EXPECT_LE(by_time->cost.seconds, by_money->cost.seconds + 1e-9);
}

TEST(FastRandomizedTest, ProducesValidFrontier) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kAll);
  FixedResourceEvaluator eval = MakeEvaluator();
  FastRandomizedPlanner planner;
  Result<MultiObjectiveResult> result = planner.Plan(cat, tables, eval);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->frontier.empty());
  for (const ParetoEntry& e : result->frontier) {
    EXPECT_TRUE(plan::ValidatePlan(cat, *e.plan, tables).ok());
  }
  // No frontier entry strictly dominates another.
  for (size_t i = 0; i < result->frontier.size(); ++i) {
    for (size_t j = 0; j < result->frontier.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          result->frontier[i].cost.Dominates(result->frontier[j].cost));
    }
  }
  // Sorted by ascending time.
  for (size_t i = 1; i < result->frontier.size(); ++i) {
    EXPECT_LE(result->frontier[i - 1].cost.seconds,
              result->frontier[i].cost.seconds);
  }
}

TEST(FastRandomizedTest, DeterministicForFixedSeed) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ2);
  FastRandomizedOptions options;
  options.seed = 77;
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> a =
      FastRandomizedPlanner(options).PlanBest(cat, tables, e1);
  Result<PlannedQuery> b =
      FastRandomizedPlanner(options).PlanBest(cat, tables, e2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cost.seconds, b->cost.seconds);
  EXPECT_TRUE(a->plan->StructurallyEquals(*b->plan));
}

TEST(FastRandomizedTest, CloseToSelingerOnSmallQueries) {
  // On Q3 the randomized planner should find (nearly) the DP optimum.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  FixedResourceEvaluator e1 = MakeEvaluator();
  FixedResourceEvaluator e2 = MakeEvaluator();
  Result<PlannedQuery> dp = SelingerPlanner().Plan(cat, tables, e1);
  FastRandomizedOptions options;
  options.iterations = 20;
  Result<PlannedQuery> rnd =
      FastRandomizedPlanner(options).PlanBest(cat, tables, e2);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(rnd.ok());
  EXPECT_LE(rnd->cost.seconds, dp->cost.seconds * 1.2);
}

TEST(FastRandomizedTest, ScalesTo100Tables) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 100;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  std::vector<TableId> tables = cat.AllTableIds();
  FixedResourceEvaluator eval = MakeEvaluator();
  FastRandomizedOptions options;
  options.iterations = 3;
  options.moves_per_iteration = 20;
  Result<PlannedQuery> result =
      FastRandomizedPlanner(options).PlanBest(cat, tables, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan->NumJoins(), 99);
  EXPECT_TRUE(plan::ValidatePlan(cat, *result->plan, tables).ok());
}

TEST(FastRandomizedTest, SingleTableAndErrors) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(1.0);
  FixedResourceEvaluator eval = MakeEvaluator();
  FastRandomizedPlanner planner;
  Result<MultiObjectiveResult> single =
      planner.Plan(cat, {*cat.FindTable("orders")}, eval);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->frontier.size(), 1u);
  EXPECT_FALSE(planner.Plan(cat, {}, eval).ok());
  FastRandomizedOptions bad;
  bad.iterations = 0;
  EXPECT_FALSE(FastRandomizedPlanner(bad)
                   .Plan(cat, {0, 1}, eval)
                   .ok());
}

TEST(MultiObjectiveResultTest, FastestAndCheapest) {
  MultiObjectiveResult r;
  EXPECT_EQ(r.FastestEntry(), nullptr);
  ParetoEntry a;
  a.cost = {10, 5};
  ParetoEntry b;
  b.cost = {20, 1};
  r.frontier.push_back(std::move(a));
  r.frontier.push_back(std::move(b));
  EXPECT_DOUBLE_EQ(r.FastestEntry()->cost.seconds, 10);
  EXPECT_DOUBLE_EQ(r.CheapestEntry()->cost.dollars, 1);
}

}  // namespace
}  // namespace raqo::optimizer
