// Property-based sweeps across randomized inputs: invariants that must
// hold for every seed, not just hand-picked cases.

#include <gtest/gtest.h>

#include <set>

#include "catalog/random_schema.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/concurrent_workload_runner.h"
#include "core/raqo_planner.h"
#include "core/workload_runner.h"
#include "optimizer/bushy_dp.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/plan_cost.h"
#include "optimizer/selinger.h"
#include "plan/cardinality.h"
#include "plan/plan_builder.h"
#include "plan/table_set.h"
#include "resource/cluster_conditions.h"
#include "sim/profile_runner.h"
#include "sim/simulator.h"
#include "trace/queue_sim.h"

namespace raqo {
namespace {

using catalog::TableId;

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------
// TableSet behaves exactly like a reference std::set over random ops.

TEST_P(SeededPropertyTest, TableSetMatchesReferenceSet) {
  Rng rng(GetParam());
  plan::TableSet set;
  std::set<TableId> reference;
  for (int op = 0; op < 2'000; ++op) {
    const auto id =
        static_cast<TableId>(rng.UniformInt(0, plan::TableSet::kMaxTables - 1));
    if (rng.Bernoulli(0.6)) {
      set.Add(id);
      reference.insert(id);
    } else {
      set.Remove(id);
      reference.erase(id);
    }
    if (op % 100 == 0) {
      EXPECT_EQ(set.Count(), static_cast<int>(reference.size()));
      EXPECT_EQ(set.ToVector(),
                std::vector<TableId>(reference.begin(), reference.end()));
    }
  }
  // Set algebra against a second random set.
  plan::TableSet other;
  std::set<TableId> other_ref;
  for (int i = 0; i < 50; ++i) {
    const auto id =
        static_cast<TableId>(rng.UniformInt(0, plan::TableSet::kMaxTables - 1));
    other.Add(id);
    other_ref.insert(id);
  }
  std::set<TableId> expected_union = reference;
  expected_union.insert(other_ref.begin(), other_ref.end());
  EXPECT_EQ(set.Union(other).Count(),
            static_cast<int>(expected_union.size()));
  for (TableId id : other_ref) {
    EXPECT_EQ(set.Intersect(other).Contains(id),
              reference.count(id) > 0);
    EXPECT_FALSE(set.Minus(other).Contains(id));
  }
}

// ---------------------------------------------------------------------
// Cluster grids: iteration, containment, and snapping are consistent.

TEST_P(SeededPropertyTest, ClusterGridConsistency) {
  Rng rng(GetParam());
  const double max_cs = rng.Uniform(2, 20);
  const double max_nc = static_cast<double>(rng.UniformInt(2, 500));
  const double step_cs = rng.Uniform(0.5, 2.0);
  const double step_nc = static_cast<double>(rng.UniformInt(1, 7));
  Result<resource::ClusterConditions> cluster =
      resource::ClusterConditions::Create(
          resource::ResourceConfig(1, 1),
          resource::ResourceConfig(max_cs, max_nc),
          resource::ResourceConfig(step_cs, step_nc));
  ASSERT_TRUE(cluster.ok());

  int64_t visited = 0;
  cluster->ForEachConfig([&](const resource::ResourceConfig& c) {
    ++visited;
    EXPECT_TRUE(cluster->Contains(c));
    // Grid points snap to themselves.
    EXPECT_EQ(cluster->SnapToGrid(c), c);
    return true;
  });
  EXPECT_EQ(visited, cluster->TotalGridSize());

  // Snapping arbitrary points lands inside the cluster.
  for (int i = 0; i < 100; ++i) {
    const resource::ResourceConfig arbitrary(rng.Uniform(-5, 40),
                                             rng.Uniform(-5, 2000));
    const resource::ResourceConfig snapped =
        cluster->SnapToGrid(arbitrary);
    EXPECT_TRUE(cluster->Contains(snapped));
    EXPECT_EQ(cluster->SnapToGrid(snapped), snapped);  // idempotent
  }
}

// ---------------------------------------------------------------------
// Random plans: structure and mutation-by-planner preserve coverage.

TEST_P(SeededPropertyTest, RandomPlansAlwaysCoverTheQuery) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 25;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 25));
    std::vector<TableId> tables =
        *catalog::RandomQueryTables(cat, n, GetParam() + trial);
    auto plan = *plan::BuildRandomPlan(cat, tables, rng);
    EXPECT_TRUE(plan::ValidatePlan(cat, *plan, tables).ok());
    EXPECT_TRUE(plan::ValidatePlan(cat, *plan, tables, true).ok())
        << "random plan contains a cross product on a connected query";
    EXPECT_EQ(plan->NumJoins(), n - 1);
    // Clone equivalence.
    auto copy = plan->Clone();
    EXPECT_TRUE(copy->StructurallyEquals(*plan));
  }
}

// ---------------------------------------------------------------------
// End-to-end fuzz: planning random queries on random schemas never
// crashes, and emitted joint plans are valid and executable.

TEST_P(SeededPropertyTest, PlannerFuzzOnRandomSchemas) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 16;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  for (core::PlannerAlgorithm algorithm :
       {core::PlannerAlgorithm::kSelinger,
        core::PlannerAlgorithm::kFastRandomized}) {
    core::RaqoPlannerOptions options;
    options.algorithm = algorithm;
    options.randomized.iterations = 3;
    options.randomized.moves_per_iteration = 12;
    options.randomized.seed = GetParam();
    core::RaqoPlanner planner(&cat, *models, cluster,
                              resource::PricingModel(), options);
    for (int q = 2; q <= 10; q += 4) {
      std::vector<TableId> tables =
          *catalog::RandomQueryTables(cat, q, GetParam() + q);
      Result<core::JointPlan> joint = planner.Plan(tables);
      ASSERT_TRUE(joint.ok()) << joint.status().ToString();
      EXPECT_TRUE(plan::ValidatePlan(cat, *joint->plan, tables).ok());
      joint->plan->VisitJoins([&](const plan::PlanNode& j) {
        ASSERT_TRUE(j.resources().has_value());
        EXPECT_TRUE(cluster.Contains(*j.resources()));
      });
      // The joint plan must execute on the simulator (resources were
      // chosen in the feasible region).
      sim::ExecutionSimulator simulator(sim::EngineProfile::Hive(), &cat);
      Result<sim::SimPlanResult> run =
          simulator.RunPlan(*joint->plan, sim::ExecParams{});
      EXPECT_TRUE(run.ok()) << run.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency determinism: for any seed, the concurrent workload runner
// picks the same per-query cost, plan, and join resource configurations
// as the sequential runner.

TEST_P(SeededPropertyTest, ConcurrentRunnerMatchesSequential) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 12;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  Rng rng(GetParam() * 13 + 5);
  std::vector<core::WorkloadQuery> workload;
  for (int i = 0; i < 16; ++i) {
    core::WorkloadQuery query;
    query.label = "q" + std::to_string(i);
    query.tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(2, 7)), GetParam() + i * 31);
    workload.push_back(std::move(query));
  }

  // Shared exact-match caching keeps concurrent planning bit-identical
  // to sequential planning (see ConcurrentWorkloadRunner's contract).
  core::RaqoPlannerOptions options;
  options.evaluator.use_cache = true;
  options.evaluator.cache_mode = core::CacheLookupMode::kExact;
  options.clear_cache_between_queries = false;

  core::RaqoPlanner planner(&cat, *models, cluster,
                            resource::PricingModel(), options);
  core::WorkloadRunner sequential(&planner);
  const Result<core::WorkloadReport> seq = sequential.Run(workload);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  core::ConcurrentRunnerOptions concurrency;
  concurrency.num_threads = 4;
  core::ConcurrentWorkloadRunner service(&cat, *models, cluster,
                                         resource::PricingModel(), options,
                                         concurrency);
  const Result<core::WorkloadReport> par = service.Run(workload);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  ASSERT_EQ(par->queries.size(), seq->queries.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(par->queries[i].cost.seconds, seq->queries[i].cost.seconds)
        << workload[i].label;
    EXPECT_EQ(par->queries[i].cost.dollars, seq->queries[i].cost.dollars);
    EXPECT_EQ(par->queries[i].plan, seq->queries[i].plan);
    ASSERT_EQ(par->queries[i].join_resources.size(),
              seq->queries[i].join_resources.size());
    for (size_t j = 0; j < par->queries[i].join_resources.size(); ++j) {
      EXPECT_EQ(par->queries[i].join_resources[j],
                seq->queries[i].join_resources[j]);
    }
  }
}

// ---------------------------------------------------------------------
// Cross-planner agreement: on random join graphs up to 7 tables under a
// fixed resource configuration, the bushy DP optimum is never worse than
// Selinger's left-deep optimum, both planners' reported costs survive
// independent re-evaluation, and when the bushy winner is itself a
// linear tree the two agree exactly (the cost model is symmetric in
// child order, so every linear shape is left-deep-reachable).

TEST_P(SeededPropertyTest, CrossPlannerAgreementOnRandomGraphs) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 10;
  schema.seed = GetParam() * 3 + 2;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  const resource::ResourceConfig fixed(6, 20);

  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 7));
    std::vector<TableId> tables =
        *catalog::RandomQueryTables(cat, n, GetParam() * 101 + trial);

    optimizer::FixedResourceEvaluator bushy_eval(*models, fixed);
    optimizer::FixedResourceEvaluator selinger_eval(*models, fixed);
    Result<optimizer::PlannedQuery> bushy =
        optimizer::BushyDpPlanner().Plan(cat, tables, bushy_eval);
    Result<optimizer::PlannedQuery> selinger =
        optimizer::SelingerPlanner().Plan(cat, tables, selinger_eval);
    ASSERT_TRUE(bushy.ok()) << bushy.status().ToString();
    ASSERT_TRUE(selinger.ok()) << selinger.status().ToString();

    // Bushy space contains the left-deep space.
    EXPECT_LE(bushy->cost.seconds,
              selinger->cost.seconds * (1 + 1e-9));

    // Each planner's reported cost matches an independent re-evaluation
    // of the plan it returned.
    plan::CardinalityEstimator estimator(&cat);
    optimizer::FixedResourceEvaluator check(*models, fixed);
    const Result<cost::CostVector> bushy_again =
        optimizer::EvaluatePlanCostConst(*bushy->plan, estimator, check);
    const Result<cost::CostVector> selinger_again =
        optimizer::EvaluatePlanCostConst(*selinger->plan, estimator, check);
    ASSERT_TRUE(bushy_again.ok());
    ASSERT_TRUE(selinger_again.ok());
    EXPECT_NEAR(bushy_again->seconds, bushy->cost.seconds,
                1e-9 * (1.0 + bushy->cost.seconds));
    EXPECT_NEAR(selinger_again->seconds, selinger->cost.seconds,
                1e-9 * (1.0 + selinger->cost.seconds));

    // A linear bushy winner means both explored the same effective
    // space, so the optima must coincide.
    bool linear = true;
    bushy->plan->VisitJoins([&](const plan::PlanNode& join) {
      if (!join.left()->is_scan() && !join.right()->is_scan()) {
        linear = false;
      }
    });
    if (linear) {
      EXPECT_NEAR(bushy->cost.seconds, selinger->cost.seconds,
                  1e-9 * (1.0 + selinger->cost.seconds))
          << "linear bushy optimum disagrees with Selinger on trial "
          << trial;
    }
  }
}

// ---------------------------------------------------------------------
// Queue simulations: conservation properties on random traces.

TEST_P(SeededPropertyTest, QueuePoliciesPreserveJobs) {
  trace::WorkloadOptions options;
  options.num_jobs = 1'000;
  options.seed = GetParam();
  const auto jobs = *trace::GenerateWorkload(options);
  for (trace::QueuePolicy policy :
       {trace::QueuePolicy::kFifo, trace::QueuePolicy::kBackfill}) {
    const auto outcomes =
        *trace::SimulateQueue(jobs, options.cluster_capacity, policy);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_GE(outcomes[i].start_s, jobs[i].arrival_s);
      EXPECT_DOUBLE_EQ(outcomes[i].runtime_s, jobs[i].runtime_s);
    }
    // Capacity is never exceeded at any start instant.
    for (size_t i = 0; i < outcomes.size(); ++i) {
      int used = 0;
      const double t = outcomes[i].start_s;
      for (size_t j = 0; j < outcomes.size(); ++j) {
        if (outcomes[j].start_s <= t &&
            t < outcomes[j].start_s + outcomes[j].runtime_s) {
          used += jobs[j].containers;
        }
      }
      EXPECT_LE(used, options.cluster_capacity)
          << "capacity violated at t=" << t;
    }
  }
}

// ---------------------------------------------------------------------
// Empirical CDF: quantile and fraction are mutually consistent.

TEST_P(SeededPropertyTest, CdfQuantileFractionConsistency) {
  Rng rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.LogNormal(1.0, 1.5));
  EmpiricalCdf cdf(samples);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double v = cdf.Quantile(q);
    EXPECT_GE(cdf.FractionAtOrBelow(v), q - 0.01);
  }
  double prev = -1.0;
  for (double v : {0.1, 0.5, 1.0, 5.0, 20.0}) {
    const double f = cdf.FractionAtOrBelow(v);
    EXPECT_GE(f, prev);  // monotone
    EXPECT_NEAR(f + cdf.FractionAtOrAbove(v + 1e-12), 1.0, 0.01);
    prev = f;
  }
}

}  // namespace
}  // namespace raqo
