// Property-based sweeps across randomized inputs: invariants that must
// hold for every seed, not just hand-picked cases.

#include <gtest/gtest.h>

#include <set>

#include "catalog/random_schema.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/raqo_planner.h"
#include "plan/plan_builder.h"
#include "plan/table_set.h"
#include "resource/cluster_conditions.h"
#include "sim/profile_runner.h"
#include "sim/simulator.h"
#include "trace/queue_sim.h"

namespace raqo {
namespace {

using catalog::TableId;

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------
// TableSet behaves exactly like a reference std::set over random ops.

TEST_P(SeededPropertyTest, TableSetMatchesReferenceSet) {
  Rng rng(GetParam());
  plan::TableSet set;
  std::set<TableId> reference;
  for (int op = 0; op < 2'000; ++op) {
    const auto id =
        static_cast<TableId>(rng.UniformInt(0, plan::TableSet::kMaxTables - 1));
    if (rng.Bernoulli(0.6)) {
      set.Add(id);
      reference.insert(id);
    } else {
      set.Remove(id);
      reference.erase(id);
    }
    if (op % 100 == 0) {
      EXPECT_EQ(set.Count(), static_cast<int>(reference.size()));
      EXPECT_EQ(set.ToVector(),
                std::vector<TableId>(reference.begin(), reference.end()));
    }
  }
  // Set algebra against a second random set.
  plan::TableSet other;
  std::set<TableId> other_ref;
  for (int i = 0; i < 50; ++i) {
    const auto id =
        static_cast<TableId>(rng.UniformInt(0, plan::TableSet::kMaxTables - 1));
    other.Add(id);
    other_ref.insert(id);
  }
  std::set<TableId> expected_union = reference;
  expected_union.insert(other_ref.begin(), other_ref.end());
  EXPECT_EQ(set.Union(other).Count(),
            static_cast<int>(expected_union.size()));
  for (TableId id : other_ref) {
    EXPECT_EQ(set.Intersect(other).Contains(id),
              reference.count(id) > 0);
    EXPECT_FALSE(set.Minus(other).Contains(id));
  }
}

// ---------------------------------------------------------------------
// Cluster grids: iteration, containment, and snapping are consistent.

TEST_P(SeededPropertyTest, ClusterGridConsistency) {
  Rng rng(GetParam());
  const double max_cs = rng.Uniform(2, 20);
  const double max_nc = static_cast<double>(rng.UniformInt(2, 500));
  const double step_cs = rng.Uniform(0.5, 2.0);
  const double step_nc = static_cast<double>(rng.UniformInt(1, 7));
  Result<resource::ClusterConditions> cluster =
      resource::ClusterConditions::Create(
          resource::ResourceConfig(1, 1),
          resource::ResourceConfig(max_cs, max_nc),
          resource::ResourceConfig(step_cs, step_nc));
  ASSERT_TRUE(cluster.ok());

  int64_t visited = 0;
  cluster->ForEachConfig([&](const resource::ResourceConfig& c) {
    ++visited;
    EXPECT_TRUE(cluster->Contains(c));
    // Grid points snap to themselves.
    EXPECT_EQ(cluster->SnapToGrid(c), c);
    return true;
  });
  EXPECT_EQ(visited, cluster->TotalGridSize());

  // Snapping arbitrary points lands inside the cluster.
  for (int i = 0; i < 100; ++i) {
    const resource::ResourceConfig arbitrary(rng.Uniform(-5, 40),
                                             rng.Uniform(-5, 2000));
    const resource::ResourceConfig snapped =
        cluster->SnapToGrid(arbitrary);
    EXPECT_TRUE(cluster->Contains(snapped));
    EXPECT_EQ(cluster->SnapToGrid(snapped), snapped);  // idempotent
  }
}

// ---------------------------------------------------------------------
// Random plans: structure and mutation-by-planner preserve coverage.

TEST_P(SeededPropertyTest, RandomPlansAlwaysCoverTheQuery) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 25;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 25));
    std::vector<TableId> tables =
        *catalog::RandomQueryTables(cat, n, GetParam() + trial);
    auto plan = *plan::BuildRandomPlan(cat, tables, rng);
    EXPECT_TRUE(plan::ValidatePlan(cat, *plan, tables).ok());
    EXPECT_TRUE(plan::ValidatePlan(cat, *plan, tables, true).ok())
        << "random plan contains a cross product on a connected query";
    EXPECT_EQ(plan->NumJoins(), n - 1);
    // Clone equivalence.
    auto copy = plan->Clone();
    EXPECT_TRUE(copy->StructurallyEquals(*plan));
  }
}

// ---------------------------------------------------------------------
// End-to-end fuzz: planning random queries on random schemas never
// crashes, and emitted joint plans are valid and executable.

TEST_P(SeededPropertyTest, PlannerFuzzOnRandomSchemas) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 16;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();

  for (core::PlannerAlgorithm algorithm :
       {core::PlannerAlgorithm::kSelinger,
        core::PlannerAlgorithm::kFastRandomized}) {
    core::RaqoPlannerOptions options;
    options.algorithm = algorithm;
    options.randomized.iterations = 3;
    options.randomized.moves_per_iteration = 12;
    options.randomized.seed = GetParam();
    core::RaqoPlanner planner(&cat, *models, cluster,
                              resource::PricingModel(), options);
    for (int q = 2; q <= 10; q += 4) {
      std::vector<TableId> tables =
          *catalog::RandomQueryTables(cat, q, GetParam() + q);
      Result<core::JointPlan> joint = planner.Plan(tables);
      ASSERT_TRUE(joint.ok()) << joint.status().ToString();
      EXPECT_TRUE(plan::ValidatePlan(cat, *joint->plan, tables).ok());
      joint->plan->VisitJoins([&](const plan::PlanNode& j) {
        ASSERT_TRUE(j.resources().has_value());
        EXPECT_TRUE(cluster.Contains(*j.resources()));
      });
      // The joint plan must execute on the simulator (resources were
      // chosen in the feasible region).
      sim::ExecutionSimulator simulator(sim::EngineProfile::Hive(), &cat);
      Result<sim::SimPlanResult> run =
          simulator.RunPlan(*joint->plan, sim::ExecParams{});
      EXPECT_TRUE(run.ok()) << run.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------
// Queue simulations: conservation properties on random traces.

TEST_P(SeededPropertyTest, QueuePoliciesPreserveJobs) {
  trace::WorkloadOptions options;
  options.num_jobs = 1'000;
  options.seed = GetParam();
  const auto jobs = *trace::GenerateWorkload(options);
  for (trace::QueuePolicy policy :
       {trace::QueuePolicy::kFifo, trace::QueuePolicy::kBackfill}) {
    const auto outcomes =
        *trace::SimulateQueue(jobs, options.cluster_capacity, policy);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_GE(outcomes[i].start_s, jobs[i].arrival_s);
      EXPECT_DOUBLE_EQ(outcomes[i].runtime_s, jobs[i].runtime_s);
    }
    // Capacity is never exceeded at any start instant.
    for (size_t i = 0; i < outcomes.size(); ++i) {
      int used = 0;
      const double t = outcomes[i].start_s;
      for (size_t j = 0; j < outcomes.size(); ++j) {
        if (outcomes[j].start_s <= t &&
            t < outcomes[j].start_s + outcomes[j].runtime_s) {
          used += jobs[j].containers;
        }
      }
      EXPECT_LE(used, options.cluster_capacity)
          << "capacity violated at t=" << t;
    }
  }
}

// ---------------------------------------------------------------------
// Empirical CDF: quantile and fraction are mutually consistent.

TEST_P(SeededPropertyTest, CdfQuantileFractionConsistency) {
  Rng rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.LogNormal(1.0, 1.5));
  EmpiricalCdf cdf(samples);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double v = cdf.Quantile(q);
    EXPECT_GE(cdf.FractionAtOrBelow(v), q - 0.01);
  }
  double prev = -1.0;
  for (double v : {0.1, 0.5, 1.0, 5.0, 20.0}) {
    const double f = cdf.FractionAtOrBelow(v);
    EXPECT_GE(f, prev);  // monotone
    EXPECT_NEAR(f + cdf.FractionAtOrAbove(v + 1e-12), 1.0, 0.01);
    prev = f;
  }
}

}  // namespace
}  // namespace raqo
