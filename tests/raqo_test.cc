#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/raqo_cost_evaluator.h"
#include "core/raqo_planner.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "plan/plan_builder.h"
#include "sim/profile_runner.h"

namespace raqo::core {
namespace {

using catalog::TableId;
using catalog::TpchQuery;
using resource::ClusterConditions;
using resource::ResourceConfig;

cost::JoinCostModels SimModels() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

optimizer::JoinContext Ctx(plan::JoinImpl impl, double left_gb,
                           double right_gb) {
  optimizer::JoinContext ctx;
  ctx.impl = impl;
  ctx.left_bytes = catalog::GbToBytes(left_gb);
  ctx.right_bytes = catalog::GbToBytes(right_gb);
  return ctx;
}

TEST(RaqoEvaluatorTest, PlansResourcesPerOperator) {
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault());
  Result<optimizer::OperatorCost> cost =
      eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 3, 30));
  ASSERT_TRUE(cost.ok());
  ASSERT_TRUE(cost->resources.has_value());
  EXPECT_TRUE(ClusterConditions::PaperDefault().Contains(*cost->resources));
  EXPECT_GT(eval.resource_configs_explored(), 1);
}

TEST(RaqoEvaluatorTest, HillClimbCheaperThanFixedDefault) {
  // Resource-planned SMJ must be no worse than the same operator under an
  // arbitrary fixed configuration — that is the point of RAQO.
  RaqoCostEvaluator raqo(SimModels(), ClusterConditions::PaperDefault());
  optimizer::FixedResourceEvaluator fixed(SimModels(),
                                          ResourceConfig(2, 10));
  auto planned = raqo.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 3, 30));
  auto unplanned = fixed.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 3, 30));
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(unplanned.ok());
  EXPECT_LE(planned->cost.seconds, unplanned->cost.seconds + 1e-9);
}

TEST(RaqoEvaluatorTest, BruteForceMatchesOrBeatsHillClimb) {
  RaqoEvaluatorOptions brute_options;
  brute_options.search = ResourceSearch::kBruteForce;
  RaqoCostEvaluator brute(SimModels(), ClusterConditions::PaperDefault(),
                          resource::PricingModel(), brute_options);
  RaqoCostEvaluator hill(SimModels(), ClusterConditions::PaperDefault());
  const auto ctx = Ctx(plan::JoinImpl::kBroadcastHashJoin, 2, 40);
  auto b = brute.CostJoin(ctx);
  auto h = hill.CostJoin(ctx);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(h.ok());
  EXPECT_LE(b->cost.seconds, h->cost.seconds + 1e-9);
  EXPECT_GT(brute.resource_configs_explored(),
            hill.resource_configs_explored());
}

TEST(RaqoEvaluatorTest, BhjFeasibilityBoundary) {
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault());
  // 50 GB build side fits no 10 GB container.
  auto infeasible =
      eval.CostJoin(Ctx(plan::JoinImpl::kBroadcastHashJoin, 50, 100));
  ASSERT_FALSE(infeasible.ok());
  EXPECT_TRUE(infeasible.status().IsResourceExhausted());
  // 8 GB build side requires a large container; the chosen config must
  // satisfy the capacity bound.
  auto feasible =
      eval.CostJoin(Ctx(plan::JoinImpl::kBroadcastHashJoin, 8, 100));
  ASSERT_TRUE(feasible.ok());
  EXPECT_GE(feasible->resources->container_size_gb() *
                eval.options().bhj_capacity_factor,
            8.0 - 1e-9);
}

TEST(RaqoEvaluatorTest, CacheShortCircuitsRepeatedLookups) {
  RaqoEvaluatorOptions options;
  options.use_cache = true;
  options.cache_mode = CacheLookupMode::kExact;
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault(),
                         resource::PricingModel(), options);
  const auto ctx = Ctx(plan::JoinImpl::kSortMergeJoin, 3, 30);
  auto first = eval.CostJoin(ctx);
  const int64_t after_first = eval.resource_configs_explored();
  auto second = eval.CostJoin(ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(eval.resource_configs_explored(), after_first);  // no new work
  EXPECT_DOUBLE_EQ(first->cost.seconds, second->cost.seconds);
  EXPECT_EQ(*first->resources, *second->resources);
  EXPECT_EQ(eval.cache_stats().hits, 1);
  EXPECT_EQ(eval.cache_stats().misses, 1);
}

TEST(RaqoEvaluatorTest, NearestNeighborCacheServesSimilarData) {
  RaqoEvaluatorOptions options;
  options.use_cache = true;
  options.cache_mode = CacheLookupMode::kNearestNeighbor;
  options.cache_threshold_gb = 0.1;
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault(),
                         resource::PricingModel(), options);
  ASSERT_TRUE(eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 3, 30)).ok());
  const int64_t explored = eval.resource_configs_explored();
  // 3.05 GB is within the 0.1 GB delta threshold of 3 GB.
  auto near_hit =
      eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 3.05, 30));
  ASSERT_TRUE(near_hit.ok());
  EXPECT_EQ(eval.resource_configs_explored(), explored);
  EXPECT_EQ(eval.cache_stats().hits, 1);
}

TEST(RaqoEvaluatorTest, CacheSeparatesOperatorModels) {
  RaqoEvaluatorOptions options;
  options.use_cache = true;
  options.cache_mode = CacheLookupMode::kExact;
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault(),
                         resource::PricingModel(), options);
  ASSERT_TRUE(eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 2, 30)).ok());
  // Same data characteristics but the BHJ model: must be a miss.
  ASSERT_TRUE(
      eval.CostJoin(Ctx(plan::JoinImpl::kBroadcastHashJoin, 2, 30)).ok());
  EXPECT_EQ(eval.cache_stats().hits, 0);
  EXPECT_EQ(eval.cache_stats().misses, 2);
}

TEST(RaqoEvaluatorTest, UpdateClusterConditionsDropsCache) {
  RaqoEvaluatorOptions options;
  options.use_cache = true;
  RaqoCostEvaluator eval(SimModels(), ClusterConditions::PaperDefault(),
                         resource::PricingModel(), options);
  ASSERT_TRUE(eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 2, 30)).ok());
  EXPECT_GT(eval.cache_size(), 0u);
  eval.UpdateClusterConditions(ClusterConditions::WithMax(5, 20));
  EXPECT_EQ(eval.cache_size(), 0u);
  auto cost = eval.CostJoin(Ctx(plan::JoinImpl::kSortMergeJoin, 2, 30));
  ASSERT_TRUE(cost.ok());
  EXPECT_TRUE(ClusterConditions::WithMax(5, 20).Contains(*cost->resources));
}

RaqoPlanner MakePlanner(const catalog::Catalog* cat,
                        RaqoPlannerOptions options = RaqoPlannerOptions()) {
  return RaqoPlanner(cat, SimModels(), ClusterConditions::PaperDefault(),
                     resource::PricingModel(), options);
}

TEST(RaqoPlannerTest, PlanEmitsJointQueryResourcePlan) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlanner planner = MakePlanner(&cat);
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  Result<JointPlan> joint = planner.Plan(q3);
  ASSERT_TRUE(joint.ok());
  EXPECT_TRUE(plan::ValidatePlan(cat, *joint->plan, q3).ok());
  // Every join of the emitted plan carries a resource request.
  joint->plan->VisitJoins([](const plan::PlanNode& j) {
    EXPECT_TRUE(j.resources().has_value());
  });
  EXPECT_GT(joint->stats.resource_configs_explored, 0);
  EXPECT_GT(joint->cost.seconds, 0.0);
}

TEST(RaqoPlannerTest, RaqoBeatsFixedResourceBaseline) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlanner planner = MakePlanner(&cat);
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  Result<JointPlan> joint = planner.Plan(q3);
  ASSERT_TRUE(joint.ok());
  for (const ResourceConfig& fixed :
       {ResourceConfig(2, 10), ResourceConfig(5, 50),
        ResourceConfig(10, 100)}) {
    Result<JointPlan> baseline = planner.PlanForResources(q3, fixed);
    ASSERT_TRUE(baseline.ok()) << fixed.ToString();
    EXPECT_LE(joint->cost.seconds, baseline->cost.seconds + 1e-6)
        << fixed.ToString();
  }
}

TEST(RaqoPlannerTest, PlanForResourcesValidatesBudget) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlanner planner = MakePlanner(&cat);
  std::vector<TableId> q12 =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ12);
  EXPECT_FALSE(
      planner.PlanForResources(q12, ResourceConfig(50, 10)).ok());
}

TEST(RaqoPlannerTest, PlanResourcesForPlanKeepsStructure) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlanner planner = MakePlanner(&cat);
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  auto fixed_plan = *plan::BuildLeftDeep(q3, plan::JoinImpl::kSortMergeJoin);
  Result<JointPlan> joint = planner.PlanResourcesForPlan(*fixed_plan);
  ASSERT_TRUE(joint.ok());
  EXPECT_TRUE(joint->plan->StructurallyEquals(*fixed_plan));
  joint->plan->VisitJoins([](const plan::PlanNode& j) {
    EXPECT_TRUE(j.resources().has_value());
  });
}

TEST(RaqoPlannerTest, MoneyBudgetUseCase) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlannerOptions options;
  options.algorithm = PlannerAlgorithm::kFastRandomized;
  RaqoPlanner planner = MakePlanner(&cat, options);
  std::vector<TableId> q3 = *catalog::TpchQueryTables(cat, TpchQuery::kQ3);
  Result<optimizer::MultiObjectiveResult> frontier = planner.PlanFrontier(q3);
  ASSERT_TRUE(frontier.ok());
  ASSERT_FALSE(frontier->frontier.empty());
  const double cheapest = frontier->CheapestEntry()->cost.dollars;
  // A generous budget admits a plan...
  Result<JointPlan> affordable =
      planner.PlanForMoneyBudget(q3, cheapest * 10);
  ASSERT_TRUE(affordable.ok());
  EXPECT_LE(affordable->cost.dollars, cheapest * 10);
  // ...an impossible budget does not.
  Result<JointPlan> impossible =
      planner.PlanForMoneyBudget(q3, cheapest * 0.01);
  ASSERT_FALSE(impossible.ok());
  EXPECT_TRUE(impossible.status().IsNotFound());
  EXPECT_FALSE(planner.PlanForMoneyBudget(q3, -1.0).ok());
}

TEST(RaqoPlannerTest, BothAlgorithmsProduceComparablePlans) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kAll);
  RaqoPlannerOptions selinger;
  selinger.algorithm = PlannerAlgorithm::kSelinger;
  RaqoPlannerOptions randomized;
  randomized.algorithm = PlannerAlgorithm::kFastRandomized;
  randomized.randomized.iterations = 15;
  RaqoPlanner a = MakePlanner(&cat, selinger);
  RaqoPlanner b = MakePlanner(&cat, randomized);
  Result<JointPlan> pa = a.Plan(tables);
  Result<JointPlan> pb = b.Plan(tables);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  // The randomized planner explores bushy plans too, so either may win,
  // but they should be in the same ballpark.
  EXPECT_LT(pb->cost.seconds, pa->cost.seconds * 2.0);
  EXPECT_LT(pa->cost.seconds, pb->cost.seconds * 2.0);
}

TEST(RaqoPlannerTest, AdaptiveReplanningOnClusterChange) {
  // Adaptive RAQO (Section VIII): when the cluster shrinks, replanning
  // the same query yields resource requests that fit the new conditions.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  RaqoPlanner planner = MakePlanner(&cat);
  std::vector<TableId> q12 =
      *catalog::TpchQueryTables(cat, TpchQuery::kQ12);
  Result<JointPlan> before = planner.Plan(q12);
  ASSERT_TRUE(before.ok());
  planner.UpdateClusterConditions(ClusterConditions::WithMax(3, 10));
  Result<JointPlan> after = planner.Plan(q12);
  ASSERT_TRUE(after.ok());
  after->plan->VisitJoins([](const plan::PlanNode& j) {
    ASSERT_TRUE(j.resources().has_value());
    EXPECT_TRUE(ClusterConditions::WithMax(3, 10).Contains(*j.resources()));
  });
  // A busier (smaller) cluster cannot make the query faster.
  EXPECT_GE(after->cost.seconds, before->cost.seconds - 1e-9);
}

TEST(RaqoPlannerTest, CacheReducesResourceIterationsAcrossJoins) {
  // TPC-H All has several joins with similar smaller-input sizes; with
  // nearest-neighbor caching the planner should explore fewer
  // configurations.
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  std::vector<TableId> tables =
      *catalog::TpchQueryTables(cat, TpchQuery::kAll);
  RaqoPlannerOptions no_cache;
  RaqoPlannerOptions with_cache;
  with_cache.evaluator.use_cache = true;
  with_cache.evaluator.cache_mode = CacheLookupMode::kNearestNeighbor;
  with_cache.evaluator.cache_threshold_gb = 0.1;
  RaqoPlanner a = MakePlanner(&cat, no_cache);
  RaqoPlanner b = MakePlanner(&cat, with_cache);
  Result<JointPlan> pa = a.Plan(tables);
  Result<JointPlan> pb = b.Plan(tables);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_LT(pb->stats.resource_configs_explored,
            pa->stats.resource_configs_explored);
  EXPECT_GT(pb->stats.cache_hits, 0);
}

TEST(RaqoPlannerTest, AlgorithmNames) {
  EXPECT_STREQ(PlannerAlgorithmName(PlannerAlgorithm::kSelinger),
               "Selinger");
  EXPECT_STREQ(PlannerAlgorithmName(PlannerAlgorithm::kFastRandomized),
               "FastRandomized");
}

}  // namespace
}  // namespace raqo::core
