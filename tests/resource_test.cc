#include <gtest/gtest.h>

#include "resource/cluster_conditions.h"
#include "resource/pricing.h"
#include "resource/resource_config.h"

namespace raqo::resource {
namespace {

TEST(ResourceConfigTest, AccessorsAndDims) {
  ResourceConfig c(4.0, 20.0);
  EXPECT_DOUBLE_EQ(c.container_size_gb(), 4.0);
  EXPECT_DOUBLE_EQ(c.num_containers(), 20.0);
  EXPECT_DOUBLE_EQ(c.dim(kContainerSizeGb), 4.0);
  EXPECT_DOUBLE_EQ(c.dim(kNumContainers), 20.0);
  EXPECT_DOUBLE_EQ(c.total_memory_gb(), 80.0);
  c.set_dim(kContainerSizeGb, 8.0);
  EXPECT_DOUBLE_EQ(c.container_size_gb(), 8.0);
}

TEST(ResourceConfigTest, Equality) {
  EXPECT_EQ(ResourceConfig(2, 3), ResourceConfig(2, 3));
  EXPECT_FALSE(ResourceConfig(2, 3) == ResourceConfig(3, 2));
}

TEST(ResourceConfigTest, ToStringMentionsBothDims) {
  const std::string s = ResourceConfig(3, 40).ToString();
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("40"), std::string::npos);
}

TEST(ClusterConditionsTest, PaperDefaultGrid) {
  ClusterConditions c = ClusterConditions::PaperDefault();
  EXPECT_DOUBLE_EQ(c.min().container_size_gb(), 1.0);
  EXPECT_DOUBLE_EQ(c.max().container_size_gb(), 10.0);
  EXPECT_DOUBLE_EQ(c.max().num_containers(), 100.0);
  EXPECT_EQ(c.GridPoints(kContainerSizeGb), 10);
  EXPECT_EQ(c.GridPoints(kNumContainers), 100);
  EXPECT_EQ(c.TotalGridSize(), 1000);
}

TEST(ClusterConditionsTest, CreateValidates) {
  EXPECT_FALSE(ClusterConditions::Create(ResourceConfig(0, 1),
                                         ResourceConfig(10, 10),
                                         ResourceConfig(1, 1))
                   .ok());
  EXPECT_FALSE(ClusterConditions::Create(ResourceConfig(5, 1),
                                         ResourceConfig(4, 10),
                                         ResourceConfig(1, 1))
                   .ok());
  EXPECT_FALSE(ClusterConditions::Create(ResourceConfig(1, 1),
                                         ResourceConfig(4, 10),
                                         ResourceConfig(0, 1))
                   .ok());
  EXPECT_TRUE(ClusterConditions::Create(ResourceConfig(1, 1),
                                        ResourceConfig(4, 10),
                                        ResourceConfig(1, 1))
                  .ok());
}

TEST(ClusterConditionsTest, ContainsAndClamp) {
  ClusterConditions c = ClusterConditions::PaperDefault();
  EXPECT_TRUE(c.Contains(ResourceConfig(1, 1)));
  EXPECT_TRUE(c.Contains(ResourceConfig(10, 100)));
  EXPECT_FALSE(c.Contains(ResourceConfig(11, 100)));
  EXPECT_FALSE(c.Contains(ResourceConfig(10, 101)));
  EXPECT_FALSE(c.Contains(ResourceConfig(0.5, 5)));
  EXPECT_EQ(c.Clamp(ResourceConfig(999, 0)), ResourceConfig(10, 1));
}

TEST(ClusterConditionsTest, SnapToGrid) {
  ClusterConditions c = ClusterConditions::PaperDefault();
  EXPECT_EQ(c.SnapToGrid(ResourceConfig(3.4, 17.6)), ResourceConfig(3, 18));
  EXPECT_EQ(c.SnapToGrid(ResourceConfig(3.5, 17.5)), ResourceConfig(4, 18));
  EXPECT_EQ(c.SnapToGrid(ResourceConfig(-5, 1000)), ResourceConfig(1, 100));
}

TEST(ClusterConditionsTest, ForEachConfigVisitsWholeGrid) {
  ClusterConditions c = ClusterConditions::WithMax(3, 4);
  int count = 0;
  double sum_cs = 0;
  const int64_t visited = c.ForEachConfig([&](const ResourceConfig& cfg) {
    ++count;
    sum_cs += cfg.container_size_gb();
    EXPECT_TRUE(c.Contains(cfg));
    return true;
  });
  EXPECT_EQ(count, 12);
  EXPECT_EQ(visited, 12);
  EXPECT_DOUBLE_EQ(sum_cs, (1 + 2 + 3) * 4.0);
}

TEST(ClusterConditionsTest, ForEachConfigEarlyStop) {
  ClusterConditions c = ClusterConditions::WithMax(10, 10);
  int count = 0;
  const int64_t visited = c.ForEachConfig([&](const ResourceConfig&) {
    ++count;
    return count < 5;
  });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(visited, 5);
}

TEST(ClusterConditionsTest, ScalesTo100kContainers) {
  // The paper's largest cluster: 100K containers of up to 100 GB.
  ClusterConditions c = ClusterConditions::WithMax(100, 100'000);
  EXPECT_EQ(c.TotalGridSize(), 10'000'000);
  EXPECT_TRUE(c.Contains(ResourceConfig(100, 100'000)));
}

TEST(PricingTest, CostIsMemoryTimesTime) {
  PricingModel pricing(0.05);
  // 10 GB x 2 containers = 20 GB held for 30 minutes = 10 GB-hours.
  EXPECT_NEAR(pricing.Cost(ResourceConfig(10, 2), 1800.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(pricing.Cost(ResourceConfig(10, 2), 0.0), 0.0);
}

TEST(PricingTest, TerabyteSeconds) {
  // 1024 GB for 10 seconds = 10 TB*s.
  EXPECT_DOUBLE_EQ(PricingModel::TerabyteSeconds(ResourceConfig(10.24, 100),
                                                 10.0),
                   10.0);
}

TEST(PricingTest, MonotoneInResources) {
  PricingModel pricing;
  const double small = pricing.Cost(ResourceConfig(2, 10), 100);
  const double large = pricing.Cost(ResourceConfig(4, 10), 100);
  EXPECT_LT(small, large);
}

}  // namespace
}  // namespace raqo::resource
