// The switch-aware incremental grid search is only allowed to be fast:
// its contract is bit-identical results — winner, cost, tie-break,
// feasibility failures — to the exhaustive brute force, under every
// combination of acceleration hints, grid shape, thread count, and cost
// model. These tests hold it to that, and keep the rejection paths
// honest (non-monotone models must fall back to the exhaustive sweep,
// never to an unsound prune).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "catalog/random_schema.h"
#include "catalog/tpch.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/raqo_cost_evaluator.h"
#include "core/raqo_planner.h"
#include "core/resource_planner.h"
#include "core/workload_runner.h"
#include "cost/cost_model.h"
#include "cost/features.h"
#include "cost/model_bounds.h"
#include "obs/metrics.h"
#include "optimizer/bushy_dp.h"
#include "optimizer/fixed_resource_evaluator.h"
#include "optimizer/selinger.h"
#include "resource/cluster_conditions.h"
#include "sim/profile_runner.h"

namespace raqo {
namespace {

using catalog::TableId;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Trained once; several tests share them (training is the slow part).
const cost::JoinCostModels& HiveModels() {
  static const cost::JoinCostModels* models = new cost::JoinCostModels(
      *sim::TrainModelsFromSimulator(sim::EngineProfile::Hive()));
  return *models;
}

// ---------------------------------------------------------------------
// Direct planner level: synthetic cost surfaces over random grids.
//
// The surface is a clamped, quantized linear form: the clamp and the
// quantization create the equal-cost plateaus that make the row-major
// tie-break observable, and a deterministic per-cell hash sprinkles in
// infeasible cells. The box bound follows the oracle's corner argument
// on the same expression, so it is sound by construction.

struct SyntheticSurface {
  double w_cs = 0.0;
  double w_nc = 0.0;
  double w_cross = 0.0;
  double intercept = 0.0;
  double clamp_floor = 0.05;
  /// Feasibility cap on total memory; +inf disables it.
  double memory_cap = kInf;
  /// Probability (driven by a per-cell hash) that a cell is infeasible.
  uint32_t infeasible_one_in = 0;  // 0 = never

  static double Quantize(double x) { return std::floor(x * 4.0) / 4.0; }

  static uint64_t CellHash(double cs, double nc) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    uint64_t a;
    static_assert(sizeof(a) == sizeof(cs), "");
    std::memcpy(&a, &cs, sizeof(a));
    h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    std::memcpy(&a, &nc, sizeof(a));
    h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }

  double Linear(double cs, double nc) const {
    return intercept + w_cs * cs + w_nc * nc + w_cross * (cs * nc);
  }

  double Cost(const resource::ResourceConfig& r) const {
    const double cs = r.container_size_gb();
    const double nc = r.num_containers();
    if (cs * nc > memory_cap) return kInf;
    if (infeasible_one_in != 0 &&
        CellHash(cs, nc) % infeasible_one_in == 0) {
      return kInf;
    }
    return Quantize(std::max(Linear(cs, nc), clamp_floor));
  }

  /// Sound bound: per-term corner minima of the same linear form, run
  /// through the same monotone clamp+quantization. Feasibility never
  /// weakens it (infeasible cells cost +inf >= anything).
  double BoxBound(const resource::ResourceConfig& lo,
                  const resource::ResourceConfig& hi) const {
    const double cs_c[2] = {lo.container_size_gb(), hi.container_size_gb()};
    const double nc_c[2] = {lo.num_containers(), hi.num_containers()};
    double sum = intercept;
    double term_min = kInf;
    for (double cs : cs_c) term_min = std::min(term_min, w_cs * cs);
    sum += term_min;
    term_min = kInf;
    for (double nc : nc_c) term_min = std::min(term_min, w_nc * nc);
    sum += term_min;
    term_min = kInf;
    for (double cs : cs_c) {
      for (double nc : nc_c) {
        term_min = std::min(term_min, w_cross * (cs * nc));
      }
    }
    sum += term_min;
    return Quantize(std::max(sum, clamp_floor));
  }
};

resource::ClusterConditions RandomGrid(Rng& rng) {
  // Integer minima/steps keep every grid point exactly representable,
  // so "bit-identical" is meaningful without FP caveats in the test
  // itself (the planner's arithmetic is identical either way).
  const double cs_min = static_cast<double>(rng.UniformInt(1, 3));
  const double cs_step = static_cast<double>(rng.UniformInt(1, 2));
  const double nc_min = static_cast<double>(rng.UniformInt(1, 5));
  const double nc_step = static_cast<double>(rng.UniformInt(1, 3));
  const double cs_max =
      cs_min + cs_step * static_cast<double>(rng.UniformInt(0, 13));
  const double nc_max =
      nc_min + nc_step * static_cast<double>(rng.UniformInt(0, 59));
  return *resource::ClusterConditions::Create(
      resource::ResourceConfig(cs_min, nc_min),
      resource::ResourceConfig(cs_max, nc_max),
      resource::ResourceConfig(cs_step, nc_step));
}

SyntheticSurface RandomSurface(Rng& rng) {
  SyntheticSurface s;
  s.w_cs = rng.Uniform(-2.0, 2.0);
  s.w_nc = rng.Uniform(-0.5, 0.5);
  s.w_cross = rng.Uniform(-0.05, 0.05);
  s.intercept = rng.Uniform(0.0, 10.0);
  // A third of the surfaces clamp aggressively => broad plateaus where
  // only the rank tie-break distinguishes winners.
  if (rng.Bernoulli(0.33)) s.clamp_floor = rng.Uniform(2.0, 8.0);
  if (rng.Bernoulli(0.3)) s.memory_cap = rng.Uniform(20.0, 200.0);
  if (rng.Bernoulli(0.25)) {
    s.infeasible_one_in = static_cast<uint32_t>(rng.UniformInt(2, 9));
  }
  return s;
}

void ExpectSameOutcome(
    const Result<core::ResourcePlanResult>& expected,
    const Result<core::ResourcePlanResult>& actual,
    const std::string& what) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << what << ": feasibility verdicts differ";
  if (!expected.ok()) return;
  EXPECT_TRUE(expected->config == actual->config)
      << what << ": " << expected->config.ToString() << " vs "
      << actual->config.ToString();
  // Bit-identical cost, not approximately equal.
  EXPECT_EQ(expected->cost, actual->cost) << what;
}

class SeededIncrementalSearchTest
    : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededIncrementalSearchTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(SeededIncrementalSearchTest,
       MatchesBruteForceUnderEveryHintCombination) {
  Rng rng(GetParam() * 977 + 13);
  core::BruteForceResourcePlanner brute;
  core::SwitchAwareGridResourcePlanner sweep(nullptr);
  std::optional<resource::ResourceConfig> previous_best;

  for (int trial = 0; trial < 25; ++trial) {
    const resource::ClusterConditions grid = RandomGrid(rng);
    const SyntheticSurface surface = RandomSurface(rng);
    const core::ResourceCostFn cost =
        [&surface](const resource::ResourceConfig& r) {
          return surface.Cost(r);
        };
    sweep.set_block_cells(rng.UniformInt(1, 40));

    const Result<core::ResourcePlanResult> expected =
        brute.PlanResources(cost, grid);

    // Hints are pure accelerators: every combination must reproduce the
    // exhaustive result exactly.
    core::ResourceSearchHints combos[4];
    combos[1].box_lower_bound =
        [&surface](const resource::ResourceConfig& lo,
                   const resource::ResourceConfig& hi) {
          return surface.BoxBound(lo, hi);
        };
    combos[2].warm_start = previous_best;
    if (rng.Bernoulli(0.3)) {
      // Off-grid / stale warm starts must be snapped, never trusted.
      combos[2].warm_start = resource::ResourceConfig(
          rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 300.0));
    }
    combos[3].box_lower_bound = combos[1].box_lower_bound;
    combos[3].warm_start = combos[2].warm_start;
    if (rng.Bernoulli(0.2)) {
      // A bound oracle may also decline ("no bound for this box"):
      // -inf disables pruning there and must change nothing.
      combos[3].box_lower_bound =
          [&surface](const resource::ResourceConfig& lo,
                     const resource::ResourceConfig& hi) {
            if (SyntheticSurface::CellHash(lo.container_size_gb(),
                                           lo.num_containers()) %
                    3 ==
                0) {
              return -kInf;
            }
            return surface.BoxBound(lo, hi);
          };
    }

    const char* names[4] = {"no hints", "bound only", "warm only",
                            "bound+warm"};
    for (int c = 0; c < 4; ++c) {
      const Result<core::ResourcePlanResult> got =
          sweep.PlanResourcesWithHints(cost, grid, combos[c]);
      ExpectSameOutcome(expected, got,
                        std::string(names[c]) + " @trial " +
                            std::to_string(trial));
      if (expected.ok()) {
        // The warm-start cell may be re-costed once on top of the sweep
        // (the honest-counter contract), hence the +1 slack.
        EXPECT_LE(got->configs_explored, expected->configs_explored + 1)
            << names[c];
      }
    }
    if (expected.ok()) previous_best = expected->config;
  }
}

TEST_P(SeededIncrementalSearchTest, ParallelPathMatchesSequentialPath) {
  ThreadPool pool(4);
  core::BruteForceResourcePlanner brute;
  core::SwitchAwareGridResourcePlanner sequential(nullptr);
  core::SwitchAwareGridResourcePlanner parallel(&pool);
  parallel.set_min_parallel_cells(0);  // force fan-out on every grid

  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 12; ++trial) {
    const resource::ClusterConditions grid = RandomGrid(rng);
    const SyntheticSurface surface = RandomSurface(rng);
    const core::ResourceCostFn cost =
        [&surface](const resource::ResourceConfig& r) {
          return surface.Cost(r);
        };
    core::ResourceSearchHints hints;
    hints.box_lower_bound =
        [&surface](const resource::ResourceConfig& lo,
                   const resource::ResourceConfig& hi) {
          return surface.BoxBound(lo, hi);
        };
    if (trial % 2 == 0) {
      hints.warm_start = resource::ResourceConfig(
          rng.Uniform(1.0, 10.0), rng.Uniform(1.0, 100.0));
    }
    const Result<core::ResourcePlanResult> expected =
        brute.PlanResources(cost, grid);
    ExpectSameOutcome(expected,
                      sequential.PlanResourcesWithHints(cost, grid, hints),
                      "sequential @trial " + std::to_string(trial));
    ExpectSameOutcome(expected,
                      parallel.PlanResourcesWithHints(cost, grid, hints),
                      "forced-parallel @trial " + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------
// Bound oracle: sound on the supported models, rejected on the probe
// set built to defeat it.

TEST(ResourceBoundOracleTest, BoundNeverExceedsPrediction) {
  Rng rng(99);
  static const cost::JoinCostModels paper = cost::PaperHiveModels();
  for (const cost::OperatorCostModel* model :
       {&HiveModels().smj, &HiveModels().bhj, &paper.smj, &paper.bhj}) {
    const Result<cost::ResourceBoundOracle> oracle =
        cost::ResourceBoundOracle::Create(*model);
    ASSERT_TRUE(oracle.ok()) << model->name() << ": "
                             << oracle.status().ToString();
    for (int trial = 0; trial < 400; ++trial) {
      cost::JoinFeatures data;
      data.smaller_gb = rng.Uniform(0.0, 300.0);
      data.larger_gb = data.smaller_gb + rng.Uniform(0.0, 300.0);
      const double cs_lo = rng.Uniform(0.5, 10.0);
      const double cs_hi = cs_lo + rng.Uniform(0.0, 10.0);
      const double nc_lo = rng.Uniform(1.0, 100.0);
      const double nc_hi = nc_lo + rng.Uniform(0.0, 100.0);
      const double bound = oracle->SecondsLowerBound(
          data, resource::ResourceConfig(cs_lo, nc_lo),
          resource::ResourceConfig(cs_hi, nc_hi));
      // Probe interior points as well as corners.
      for (double fc : {0.0, 0.37, 1.0}) {
        for (double fn : {0.0, 0.61, 1.0}) {
          cost::JoinFeatures probe = data;
          probe.container_size_gb = cs_lo + fc * (cs_hi - cs_lo);
          probe.num_containers = nc_lo + fn * (nc_hi - nc_lo);
          ASSERT_LE(bound, model->PredictSeconds(probe))
              << model->name() << " @trial " << trial;
        }
      }
    }
  }
}

cost::JoinCostModels PeakedModels() {
  // kPeakedProbe = [ss, cs*(14-cs), nc]: the middle feature peaks at
  // cs = 7, inside the paper grid, so no corner bound is sound.
  LinearModel lm;
  lm.weights = {0.5, 0.2, 0.01};
  lm.has_intercept = false;
  return cost::JoinCostModels{
      cost::OperatorCostModel("smj-peaked", lm, cost::FeatureSet::kPeakedProbe),
      cost::OperatorCostModel("bhj-peaked", lm,
                              cost::FeatureSet::kPeakedProbe)};
}

TEST(ResourceBoundOracleTest, RejectsNonMonotoneFeatureSet) {
  EXPECT_FALSE(cost::FeatureSetResourceMonotone(cost::FeatureSet::kPeakedProbe));
  const Result<cost::ResourceBoundOracle> oracle =
      cost::ResourceBoundOracle::Create(PeakedModels().smj);
  EXPECT_FALSE(oracle.ok());
}

TEST(SwitchAwareEvaluatorTest, NonMonotoneModelFallsBackToExhaustive) {
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 8;
  schema.seed = 4242;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  const std::vector<TableId> tables =
      *catalog::RandomQueryTables(cat, 6, 17);

  obs::Counter* rejected = obs::DefaultMetrics().GetCounter(
      "planner.resource.monotonicity_rejected");
  const int64_t rejected_before = rejected->Value();

  core::RaqoEvaluatorOptions switch_options;
  switch_options.search = core::ResourceSearch::kSwitchAwareGrid;
  core::RaqoCostEvaluator switch_eval(PeakedModels(), cluster,
                                      resource::PricingModel(),
                                      switch_options);
  // Both models rejected: no oracle, one counter bump each.
  EXPECT_FALSE(switch_eval.has_bound_oracle(plan::JoinImpl::kSortMergeJoin));
  EXPECT_FALSE(
      switch_eval.has_bound_oracle(plan::JoinImpl::kBroadcastHashJoin));
  EXPECT_EQ(rejected->Value(), rejected_before + 2);

  core::RaqoEvaluatorOptions brute_options;
  brute_options.search = core::ResourceSearch::kBruteForce;
  core::RaqoCostEvaluator brute_eval(PeakedModels(), cluster,
                                     resource::PricingModel(),
                                     brute_options);

  // ... and planning still agrees exactly with the exhaustive search
  // (the fallback is an exhaustive sweep, never a blind prune).
  optimizer::SelingerPlanner planner;
  const Result<optimizer::PlannedQuery> via_switch =
      planner.Plan(cat, tables, switch_eval);
  const Result<optimizer::PlannedQuery> via_brute =
      planner.Plan(cat, tables, brute_eval);
  ASSERT_TRUE(via_switch.ok()) << via_switch.status().ToString();
  ASSERT_TRUE(via_brute.ok()) << via_brute.status().ToString();
  EXPECT_EQ(via_switch->plan->ToString(), via_brute->plan->ToString());
  EXPECT_EQ(via_switch->cost.seconds, via_brute->cost.seconds);
  EXPECT_EQ(via_switch->cost.dollars, via_brute->cost.dollars);
  // With no oracle nothing is pruned: the fallback explores at least
  // every cell the brute force does (warm-start re-costs can add one
  // evaluation per search, never remove any).
  EXPECT_GE(via_switch->stats.resource_configs_explored,
            via_brute->stats.resource_configs_explored);
}

// ---------------------------------------------------------------------
// Evaluator level: full joint planning on random schemas x random grids
// must be bit-identical between the exhaustive and switch-aware
// searches — plan shape, costs, and every join's resource config.

void ExpectIdenticalJointPlans(const core::JointPlan& expected,
                               const core::JointPlan& actual,
                               const std::string& what) {
  EXPECT_EQ(expected.plan->ToString(), actual.plan->ToString()) << what;
  EXPECT_EQ(expected.cost.seconds, actual.cost.seconds) << what;
  EXPECT_EQ(expected.cost.dollars, actual.cost.dollars) << what;
  std::vector<resource::ResourceConfig> expected_res;
  std::vector<resource::ResourceConfig> actual_res;
  expected.plan->VisitJoins([&](const plan::PlanNode& j) {
    expected_res.push_back(*j.resources());
  });
  actual.plan->VisitJoins([&](const plan::PlanNode& j) {
    actual_res.push_back(*j.resources());
  });
  ASSERT_EQ(expected_res.size(), actual_res.size()) << what;
  for (size_t i = 0; i < expected_res.size(); ++i) {
    EXPECT_TRUE(expected_res[i] == actual_res[i])
        << what << " join " << i << ": " << expected_res[i].ToString()
        << " vs " << actual_res[i].ToString();
  }
}

TEST_P(SeededIncrementalSearchTest,
       JointPlansMatchAcrossRandomSchemasAndGrids) {
  Rng rng(GetParam() * 7919 + 3);
  // 8 seeds x 25 trials = 200 random schema/grid combinations.
  for (int trial = 0; trial < 25; ++trial) {
    catalog::RandomSchemaOptions schema;
    schema.num_tables = 10;
    schema.seed = GetParam() * 1000 + static_cast<uint64_t>(trial);
    catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
    const resource::ClusterConditions grid = RandomGrid(rng);
    const std::vector<TableId> tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(3, 7)),
        schema.seed * 31 + 1);

    core::RaqoPlannerOptions options;
    options.algorithm = core::PlannerAlgorithm::kSelinger;
    options.evaluator.use_cache = false;
    const double tw = rng.Bernoulli(0.7) ? 1.0 : rng.Uniform(0.0, 1.0);
    options.evaluator.time_weight = tw;
    options.selinger.time_weight = tw;
    options.evaluator.switch_block_cells = rng.UniformInt(1, 64);

    options.evaluator.search = core::ResourceSearch::kBruteForce;
    core::RaqoPlanner brute(&cat, HiveModels(), grid,
                            resource::PricingModel(), options);
    options.evaluator.search = core::ResourceSearch::kSwitchAwareGrid;
    core::RaqoPlanner incremental(&cat, HiveModels(), grid,
                                  resource::PricingModel(), options);

    const Result<core::JointPlan> expected = brute.Plan(tables);
    const Result<core::JointPlan> actual = incremental.Plan(tables);
    ASSERT_EQ(expected.ok(), actual.ok()) << "trial " << trial;
    if (!expected.ok()) continue;
    ExpectIdenticalJointPlans(
        *expected, *actual,
        "seed " + std::to_string(GetParam()) + " trial " +
            std::to_string(trial));
  }
}

TEST(SwitchAwareEvaluatorTest, TpchPlansIdenticalAndCountersMove) {
  catalog::Catalog cat = catalog::BuildTpchCatalog(100.0);
  const resource::ClusterConditions cluster =
      resource::ClusterConditions::PaperDefault();
  std::vector<core::WorkloadQuery> workload;
  for (catalog::TpchQuery q :
       {catalog::TpchQuery::kQ12, catalog::TpchQuery::kQ3,
        catalog::TpchQuery::kQ2, catalog::TpchQuery::kAll}) {
    core::WorkloadQuery query;
    query.label = catalog::TpchQueryName(q);
    query.tables = *catalog::TpchQueryTables(cat, q);
    workload.push_back(std::move(query));
  }

  core::RaqoPlannerOptions options;
  options.algorithm = core::PlannerAlgorithm::kSelinger;
  options.evaluator.use_cache = false;

  options.evaluator.search = core::ResourceSearch::kBruteForce;
  core::RaqoPlanner brute_planner(&cat, HiveModels(), cluster,
                                  resource::PricingModel(), options);
  core::WorkloadRunner brute_runner(&brute_planner);
  const Result<core::WorkloadReport> brute = brute_runner.Run(workload);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();

  obs::Counter* pruned =
      obs::DefaultMetrics().GetCounter("planner.resource.cells_pruned");
  obs::Counter* reused =
      obs::DefaultMetrics().GetCounter("planner.resource.plans_reused");
  obs::Counter* replanned =
      obs::DefaultMetrics().GetCounter("planner.resource.cells_replanned");
  const int64_t pruned_before = pruned->Value();
  const int64_t reused_before = reused->Value();
  const int64_t replanned_before = replanned->Value();

  options.evaluator.search = core::ResourceSearch::kSwitchAwareGrid;
  core::RaqoPlanner inc_planner(&cat, HiveModels(), cluster,
                                resource::PricingModel(), options);
  core::WorkloadRunner inc_runner(&inc_planner);
  const Result<core::WorkloadReport> inc = inc_runner.Run(workload);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  ASSERT_EQ(brute->queries.size(), inc->queries.size());
  for (size_t i = 0; i < brute->queries.size(); ++i) {
    EXPECT_EQ(brute->queries[i].plan, inc->queries[i].plan);
    EXPECT_EQ(brute->queries[i].cost.seconds, inc->queries[i].cost.seconds);
    EXPECT_EQ(brute->queries[i].cost.dollars, inc->queries[i].cost.dollars);
    EXPECT_TRUE(brute->queries[i].join_resources ==
                inc->queries[i].join_resources);
  }
  // The incremental search must actually be incremental on the paper
  // workload: most of the grid pruned, most searches settled by the
  // warm-started plan.
  EXPECT_LT(inc->total_resource_configs_explored,
            brute->total_resource_configs_explored / 2);
  EXPECT_GT(pruned->Value(), pruned_before);
  EXPECT_GT(reused->Value(), reused_before);
  EXPECT_GE(replanned->Value(), replanned_before);
}

// ---------------------------------------------------------------------
// DP incumbent bounds: seeding Selinger/bushy with a known upper bound
// must leave the chosen plan bit-identical (deferred evaluation keeps
// subset reachability — and the cross-product fallback — unchanged).

TEST_P(SeededIncrementalSearchTest, SelingerBoundPreservesPlanExactly) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 12;
  schema.seed = GetParam();
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  optimizer::FixedResourceEvaluator evaluator(
      HiveModels(), resource::ResourceConfig(4.0, 40.0));
  Rng rng(GetParam() * 131 + 29);

  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<TableId> tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(3, 9)),
        GetParam() * 100 + static_cast<uint64_t>(trial));
    optimizer::SelingerOptions options;
    options.time_weight = rng.Bernoulli(0.5) ? 1.0 : 0.6;

    const Result<optimizer::PlannedQuery> unbounded =
        optimizer::SelingerPlanner(options).Plan(cat, tables, evaluator);
    ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();

    // Bound exactly at the optimum (the warm-start case), slightly
    // above it, and far above it: all must reproduce the plan.
    const double optimum = unbounded->cost.Weighted(options.time_weight);
    Arena arena;
    for (double bound : {optimum, optimum * 1.0001, optimum * 1000.0}) {
      optimizer::SelingerOptions bounded = options;
      bounded.cost_upper_bound = bound;
      arena.Reset();
      bounded.arena = &arena;
      const Result<optimizer::PlannedQuery> got =
          optimizer::SelingerPlanner(bounded).Plan(cat, tables, evaluator);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->plan->ToString(), unbounded->plan->ToString())
          << "bound=" << bound;
      EXPECT_EQ(got->cost.seconds, unbounded->cost.seconds);
      EXPECT_EQ(got->cost.dollars, unbounded->cost.dollars);
      EXPECT_LE(got->stats.operator_cost_calls,
                unbounded->stats.operator_cost_calls);
    }
  }
}

TEST_P(SeededIncrementalSearchTest, BushyDpBoundPreservesPlanExactly) {
  catalog::RandomSchemaOptions schema;
  schema.num_tables = 10;
  schema.seed = GetParam() + 1000;
  catalog::Catalog cat = *catalog::BuildRandomCatalog(schema);
  optimizer::FixedResourceEvaluator evaluator(
      HiveModels(), resource::ResourceConfig(4.0, 40.0));
  Rng rng(GetParam() * 17 + 5);

  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<TableId> tables = *catalog::RandomQueryTables(
        cat, static_cast<int>(rng.UniformInt(3, 8)),
        GetParam() * 55 + static_cast<uint64_t>(trial));
    optimizer::BushyDpOptions options;

    const Result<optimizer::PlannedQuery> unbounded =
        optimizer::BushyDpPlanner(options).Plan(cat, tables, evaluator);
    ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();

    const double optimum = unbounded->cost.Weighted(options.time_weight);
    Arena arena;
    for (double bound : {optimum, optimum * 2.0}) {
      optimizer::BushyDpOptions bounded = options;
      bounded.cost_upper_bound = bound;
      arena.Reset();
      bounded.arena = &arena;
      const Result<optimizer::PlannedQuery> got =
          optimizer::BushyDpPlanner(bounded).Plan(cat, tables, evaluator);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->plan->ToString(), unbounded->plan->ToString())
          << "bound=" << bound;
      EXPECT_EQ(got->cost.seconds, unbounded->cost.seconds);
      EXPECT_EQ(got->cost.dollars, unbounded->cost.dollars);
      EXPECT_LE(got->stats.operator_cost_calls,
                unbounded->stats.operator_cost_calls);
    }
  }
}

}  // namespace
}  // namespace raqo
