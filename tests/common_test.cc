#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace raqo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad size");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  RAQO_ASSIGN_OR_RETURN(int half, Halve(x));
  RAQO_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> fail = QuarterViaMacro(6);  // 6 -> 3 -> error
  EXPECT_FALSE(fail.ok());
  EXPECT_TRUE(fail.status().IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  RAQO_RETURN_IF_ERROR(FailIfNegative(a));
  RAQO_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_TRUE(CheckBoth(1, -2).IsOutOfRange());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.Uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 2.0), 0.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

TEST(StringsTest, StrPrintfLongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StrPrintf("%s!", long_str.c_str()).size(), 501u);
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"one"}, ", "), "one");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024 * 1024), "3.50 GB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(0.0021), "2.10 ms");
  EXPECT_EQ(HumanSeconds(3e-6), "3.00 us");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100'000; ++i) sink += i;
  EXPECT_GE(w.ElapsedMillis(), 0.0);
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  const double before = w.ElapsedMillis();
  w.Restart();
  EXPECT_LE(w.ElapsedMillis(), before + 1000.0);
}

}  // namespace
}  // namespace raqo
