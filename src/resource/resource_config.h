#ifndef RAQO_RESOURCE_RESOURCE_CONFIG_H_
#define RAQO_RESOURCE_RESOURCE_CONFIG_H_

#include <array>
#include <cstddef>
#include <string>

namespace raqo::resource {

/// Indexes into the resource dimensions of a configuration. The paper's
/// resource space (Section II-B) has two planner-controlled dimensions:
/// the YARN container size (memory) and the number of concurrent
/// containers. Keeping them index-addressable lets Algorithm 1 (hill
/// climbing) step generically along any dimension.
enum ResourceDim : size_t {
  kContainerSizeGb = 0,
  kNumContainers = 1,
};

/// Number of resource dimensions a configuration carries.
inline constexpr size_t kNumResourceDims = 2;

/// A concrete resource configuration: containers of `container_size_gb`
/// memory each, `num_containers` of them running concurrently. Values are
/// stored as doubles so the hill climber can treat all dimensions
/// uniformly; the cluster grid keeps them on discrete steps.
class ResourceConfig {
 public:
  /// Zero-resource configuration (not valid for execution; use the cluster
  /// minimum as a starting point instead).
  ResourceConfig() : dims_{0.0, 0.0} {}

  ResourceConfig(double container_size_gb, double num_containers)
      : dims_{container_size_gb, num_containers} {}

  double container_size_gb() const { return dims_[kContainerSizeGb]; }
  double num_containers() const { return dims_[kNumContainers]; }

  void set_container_size_gb(double v) { dims_[kContainerSizeGb] = v; }
  void set_num_containers(double v) { dims_[kNumContainers] = v; }

  /// Generic dimension access used by the hill climber.
  double dim(size_t i) const { return dims_[i]; }
  void set_dim(size_t i, double v) { dims_[i] = v; }

  /// Total memory held by this configuration, in GB.
  double total_memory_gb() const {
    return container_size_gb() * num_containers();
  }

  bool operator==(const ResourceConfig& other) const {
    return dims_ == other.dims_;
  }

  /// e.g. "<3 GB x 40 containers>".
  std::string ToString() const;

 private:
  std::array<double, kNumResourceDims> dims_;
};

}  // namespace raqo::resource

#endif  // RAQO_RESOURCE_RESOURCE_CONFIG_H_
