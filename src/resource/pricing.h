#ifndef RAQO_RESOURCE_PRICING_H_
#define RAQO_RESOURCE_PRICING_H_

#include "resource/resource_config.h"

namespace raqo::resource {

/// Serverless-analytics pricing (Section III-C): users pay for the
/// container-hours (memory x time) their query consumes. Monetary cost is
/// a function of both the plan's execution time and its resource
/// configuration, which is exactly why the paper argues the optimizer must
/// pick them together.
class PricingModel {
 public:
  /// `dollars_per_gb_hour`: price of holding one GB of container memory for
  /// one hour. The default approximates entry-level cloud container pricing.
  explicit PricingModel(double dollars_per_gb_hour = 0.05)
      : dollars_per_gb_hour_(dollars_per_gb_hour) {}

  double dollars_per_gb_hour() const { return dollars_per_gb_hour_; }

  /// Dollar cost of running `config` for `seconds`.
  double Cost(const ResourceConfig& config, double seconds) const {
    return config.total_memory_gb() * (seconds / 3600.0) *
           dollars_per_gb_hour_;
  }

  /// The paper's Figure 2 "resources used" metric: total memory times
  /// execution time, reported in TB * seconds.
  static double TerabyteSeconds(const ResourceConfig& config,
                                double seconds) {
    return config.total_memory_gb() / 1024.0 * seconds;
  }

 private:
  double dollars_per_gb_hour_;
};

}  // namespace raqo::resource

#endif  // RAQO_RESOURCE_PRICING_H_
