#ifndef RAQO_RESOURCE_CLUSTER_CONDITIONS_H_
#define RAQO_RESOURCE_CLUSTER_CONDITIONS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "resource/resource_config.h"

namespace raqo::resource {

/// The current condition of the (shared) cluster, as the resource manager
/// would report it to the optimizer: per-dimension minimum and maximum
/// allocatable resources and the discrete step between allocatable values.
/// The paper's evaluation setup uses min = 1 container of 1 GB, max = 100
/// containers of 10 GB, step 1 on either axis (Section VII).
class ClusterConditions {
 public:
  /// Builds cluster conditions; validates min <= max and positive steps.
  static Result<ClusterConditions> Create(ResourceConfig min,
                                          ResourceConfig max,
                                          ResourceConfig step);

  /// The paper's default evaluation cluster: container size 1..10 GB step 1,
  /// containers 1..100 step 1.
  static ClusterConditions PaperDefault();

  /// A cluster with the given maxima and unit minima/steps.
  static ClusterConditions WithMax(double max_container_gb,
                                   double max_containers);

  const ResourceConfig& min() const { return min_; }
  const ResourceConfig& max() const { return max_; }
  const ResourceConfig& step() const { return step_; }

  /// True when every dimension of `config` lies within [min, max].
  bool Contains(const ResourceConfig& config) const;

  /// Clamps `config` into [min, max] per dimension.
  ResourceConfig Clamp(const ResourceConfig& config) const;

  /// Snaps `config` onto the discrete grid (nearest step from min), then
  /// clamps into range.
  ResourceConfig SnapToGrid(const ResourceConfig& config) const;

  /// Number of grid points along dimension i.
  int64_t GridPoints(size_t dim) const;

  /// Total number of distinct resource configurations in the grid
  /// (the rp * rc term of the paper's search-space formula).
  int64_t TotalGridSize() const;

  /// Invokes fn for every grid configuration, in row-major order
  /// (container size outer, container count inner). Returns the number of
  /// configurations visited; stops early if fn returns false.
  int64_t ForEachConfig(
      const std::function<bool(const ResourceConfig&)>& fn) const;

  std::string ToString() const;

 private:
  ClusterConditions(ResourceConfig min, ResourceConfig max,
                    ResourceConfig step)
      : min_(min), max_(max), step_(step) {}

  ResourceConfig min_;
  ResourceConfig max_;
  ResourceConfig step_;
};

}  // namespace raqo::resource

#endif  // RAQO_RESOURCE_CLUSTER_CONDITIONS_H_
