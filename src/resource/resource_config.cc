#include "resource/resource_config.h"

#include "common/strings.h"

namespace raqo::resource {

std::string ResourceConfig::ToString() const {
  return StrPrintf("<%.3g GB x %.4g containers>", container_size_gb(),
                   num_containers());
}

}  // namespace raqo::resource
