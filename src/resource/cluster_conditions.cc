#include "resource/cluster_conditions.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace raqo::resource {

Result<ClusterConditions> ClusterConditions::Create(ResourceConfig min,
                                                    ResourceConfig max,
                                                    ResourceConfig step) {
  for (size_t d = 0; d < kNumResourceDims; ++d) {
    if (min.dim(d) <= 0.0) {
      return Status::InvalidArgument(
          "ClusterConditions: minimum resources must be positive");
    }
    if (min.dim(d) > max.dim(d)) {
      return Status::InvalidArgument(
          "ClusterConditions: min exceeds max on dimension " +
          std::to_string(d));
    }
    if (step.dim(d) <= 0.0) {
      return Status::InvalidArgument(
          "ClusterConditions: steps must be positive");
    }
  }
  return ClusterConditions(min, max, step);
}

ClusterConditions ClusterConditions::PaperDefault() {
  return ClusterConditions(ResourceConfig(1.0, 1.0),
                           ResourceConfig(10.0, 100.0),
                           ResourceConfig(1.0, 1.0));
}

ClusterConditions ClusterConditions::WithMax(double max_container_gb,
                                             double max_containers) {
  return ClusterConditions(ResourceConfig(1.0, 1.0),
                           ResourceConfig(max_container_gb, max_containers),
                           ResourceConfig(1.0, 1.0));
}

bool ClusterConditions::Contains(const ResourceConfig& config) const {
  for (size_t d = 0; d < kNumResourceDims; ++d) {
    // Small epsilon so grid arithmetic in doubles does not reject the
    // boundary configurations.
    constexpr double kEps = 1e-9;
    if (config.dim(d) < min_.dim(d) - kEps) return false;
    if (config.dim(d) > max_.dim(d) + kEps) return false;
  }
  return true;
}

ResourceConfig ClusterConditions::Clamp(const ResourceConfig& config) const {
  ResourceConfig out = config;
  for (size_t d = 0; d < kNumResourceDims; ++d) {
    if (out.dim(d) < min_.dim(d)) out.set_dim(d, min_.dim(d));
    if (out.dim(d) > max_.dim(d)) out.set_dim(d, max_.dim(d));
  }
  return out;
}

ResourceConfig ClusterConditions::SnapToGrid(
    const ResourceConfig& config) const {
  ResourceConfig out;
  for (size_t d = 0; d < kNumResourceDims; ++d) {
    // Clamp the step *index*, not the value: the maximum itself may not
    // lie on the grid, and snapping must always return a true grid point
    // (and hence be idempotent).
    double steps = std::round((config.dim(d) - min_.dim(d)) / step_.dim(d));
    const double max_steps = static_cast<double>(GridPoints(d) - 1);
    if (steps < 0.0) steps = 0.0;
    if (steps > max_steps) steps = max_steps;
    out.set_dim(d, min_.dim(d) + steps * step_.dim(d));
  }
  return out;
}

int64_t ClusterConditions::GridPoints(size_t dim) const {
  const double points =
      std::floor((max_.dim(dim) - min_.dim(dim)) / step_.dim(dim) + 1e-9) +
      1.0;
  // Casting a double beyond int64 range is undefined behaviour; clamp
  // absurd grids (tiny steps over huge ranges) to a saturated count.
  constexpr double kMax = 9.2e18;  // just under INT64_MAX
  if (points >= kMax) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(points);
}

int64_t ClusterConditions::TotalGridSize() const {
  // Saturating product: the rp * rc grid of a pathological cluster can
  // exceed int64, and the "#Resource-Iterations" accounting built on it
  // must not wrap.
  int64_t total = 1;
  for (size_t d = 0; d < kNumResourceDims; ++d) {
    const int64_t points = GridPoints(d);
    if (total > std::numeric_limits<int64_t>::max() / points) {
      return std::numeric_limits<int64_t>::max();
    }
    total *= points;
  }
  return total;
}

int64_t ClusterConditions::ForEachConfig(
    const std::function<bool(const ResourceConfig&)>& fn) const {
  int64_t visited = 0;
  const int64_t cs_points = GridPoints(kContainerSizeGb);
  const int64_t nc_points = GridPoints(kNumContainers);
  for (int64_t i = 0; i < cs_points; ++i) {
    const double cs =
        min_.dim(kContainerSizeGb) + static_cast<double>(i) *
                                         step_.dim(kContainerSizeGb);
    for (int64_t j = 0; j < nc_points; ++j) {
      const double nc = min_.dim(kNumContainers) +
                        static_cast<double>(j) * step_.dim(kNumContainers);
      ++visited;
      if (!fn(ResourceConfig(cs, nc))) return visited;
    }
  }
  return visited;
}

std::string ClusterConditions::ToString() const {
  return StrPrintf(
      "cluster{container %.3g..%.3g GB step %.3g, count %.4g..%.4g step "
      "%.3g}",
      min_.container_size_gb(), max_.container_size_gb(),
      step_.container_size_gb(), min_.num_containers(),
      max_.num_containers(), step_.num_containers());
}

}  // namespace raqo::resource
