#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace raqo {

double Mean(const std::vector<double>& values) {
  RAQO_CHECK(!values.empty()) << "Mean of empty vector";
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  RAQO_CHECK(!values.empty()) << "StdDev of empty vector";
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  RAQO_CHECK(!values.empty()) << "Percentile of empty vector";
  RAQO_CHECK(p >= 0.0 && p <= 100.0) << "Percentile out of range: " << p;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  RAQO_CHECK(!sorted_.empty()) << "EmpiricalCdf of empty sample set";
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::FractionAtOrBelow(double v) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::FractionAtOrAbove(double v) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(sorted_.end() - it) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  RAQO_CHECK(q >= 0.0 && q <= 1.0) << "Quantile out of range: " << q;
  if (sorted_.size() == 1) return sorted_[0];
  const double idx = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::Points(size_t n) const {
  RAQO_CHECK(n >= 2) << "Points requires at least two samples";
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(q, Quantile(q));
  }
  return out;
}

}  // namespace raqo
