#ifndef RAQO_COMMON_FILEIO_H_
#define RAQO_COMMON_FILEIO_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/net.h"
#include "common/result.h"
#include "common/status.h"

namespace raqo::io {

/// ----------------------------------------------------------------------
/// Test-only file-I/O fault injection.
///
/// The durable-cache journal (src/persist/) writes and fsyncs through
/// io::Write / io::Fsync, which consult a process-wide injector before
/// touching the kernel — the file-side twin of the socket seam in
/// common/net.h, reusing its FaultAction vocabulary (pass through, short
/// write, fail with errno). The hook is compiled in always and costs one
/// relaxed atomic load when no injector is installed. Tests script it to
/// force the failures that real disks produce rarely but surely: short
/// writes, ENOSPC, EIO, and fsync errors (the write that claims success
/// and then is not durable).
/// ----------------------------------------------------------------------

/// Scripted by tests; called from whatever thread performs the I/O, so
/// implementations must be thread-safe.
class FileFaultInjector {
 public:
  virtual ~FileFaultInjector() = default;
  /// Consulted before each write(2). kShortLen caps the write, kError
  /// fails it with the given errno without touching the file.
  virtual net::FaultAction OnWrite(int fd, size_t len) = 0;
  /// Consulted before each fsync(2). kShortLen is meaningless here and
  /// treated as pass-through; kError fails the sync with its errno.
  virtual net::FaultAction OnFsync(int fd) = 0;
};

/// Installs (nullptr clears) the process-wide injector. The caller must
/// clear it before destroying the injector and before tearing down any
/// journal still doing I/O it scripted. Test-only.
void SetFileFaultInjector(FileFaultInjector* injector);

/// RAII installer: clears the injector on scope exit.
class ScopedFileFaultInjector {
 public:
  explicit ScopedFileFaultInjector(FileFaultInjector* injector) {
    SetFileFaultInjector(injector);
  }
  ~ScopedFileFaultInjector() { SetFileFaultInjector(nullptr); }
  ScopedFileFaultInjector(const ScopedFileFaultInjector&) = delete;
  ScopedFileFaultInjector& operator=(const ScopedFileFaultInjector&) = delete;
};

/// write(2) / fsync(2) with the installed fault injector applied (and
/// passed straight through when none is). All raqo durable-file I/O uses
/// these instead of the raw syscalls.
ssize_t Write(int fd, const void* data, size_t len);
int Fsync(int fd);

/// Writes all `len` bytes through io::Write, retrying short writes and
/// EINTR. Any other error aborts with the partial count already written
/// to the file — the caller must treat the tail as torn.
Status WriteAll(int fd, const void* data, size_t len);

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`, seeded so that
/// Crc32("") == 0. Journal records carry this over their payload.
uint32_t Crc32(std::string_view data);

/// Reads the whole file. NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Whether a plain file exists at `path`.
bool FileExists(const std::string& path);

/// Size in bytes of an existing file.
Result<int64_t> FileSizeBytes(const std::string& path);

/// Crash-atomic replacement of `path`: writes `content` to a sibling
/// temp file, fsyncs it, rename(2)s it over `path`, then fsyncs the
/// directory so the rename itself is durable. Readers never observe a
/// half-written file.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// Opens (creating if absent) `path` for appending durable records and
/// truncates it to `valid_bytes` first — recovery passes the byte count
/// it verified so a torn tail is cut off before new records follow it.
Result<net::UniqueFd> OpenForAppend(const std::string& path,
                                    int64_t valid_bytes);

/// Removes the file if it exists (missing is not an error).
Status RemoveFile(const std::string& path);

/// Creates the directory (and parents) if absent.
Status EnsureDirectory(const std::string& path);

}  // namespace raqo::io

#endif  // RAQO_COMMON_FILEIO_H_
