#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace raqo {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  return StrPrintf("%.2f %s", v, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return StrPrintf("%.2f s", seconds);
  if (seconds >= 1e-3) return StrPrintf("%.2f ms", seconds * 1e3);
  return StrPrintf("%.2f us", seconds * 1e6);
}

}  // namespace raqo
