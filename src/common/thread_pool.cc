#include "common/thread_pool.h"

#include <algorithm>

namespace raqo {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t chunks =
      std::min<int64_t>(n, static_cast<int64_t>(workers_.size()));
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(chunks) - 1);
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  int64_t begin = 0;
  int64_t first_end = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t end = begin + base + (c < extra ? 1 : 0);
    if (c == 0) {
      // Chunk 0 runs on the calling thread after the rest are queued.
      first_end = end;
    } else {
      futures.push_back(
          Submit([&body, begin, end] { body(begin, end); }));
    }
    begin = end;
  }
  body(0, first_end);
  for (std::future<void>& f : futures) f.get();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace raqo
