#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace raqo {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    QueuedTask queued;
    queued.own = std::move(packaged);
    queue_.push_back(std::move(queued));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::RunParallelChunks(ParallelForJob* job) {
  // Work stealing: claim the next chunk off the shared cursor until the
  // range is drained. A participant that lands on a slow chunk simply
  // claims fewer chunks; fast ones soak up the rest. The relaxed
  // fetch_add is fine — chunk ranges are disjoint by construction and
  // the latch below publishes every chunk's writes.
  while (true) {
    const int64_t begin =
        job->next.fetch_add(job->chunk, std::memory_order_relaxed);
    if (begin >= job->n) break;
    const int64_t end = std::min(begin + job->chunk, job->n);
    try {
      (*job->body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->mu);
      if (!job->error) job->error = std::current_exception();
    }
  }
  // The acq_rel decrement publishes every chunk's writes to the caller's
  // acquire read (RMWs extend the release sequence). It must happen
  // *under* the latch mutex: the caller destroys the stack-allocated job
  // the moment its predicate sees zero, so zero may only become visible
  // after this thread's last touch of the job — the unlock below.
  std::lock_guard<std::mutex> lock(job->mu);
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job->done_cv.notify_one();
  }
}

void ThreadPool::ParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t participants =
      std::min<int64_t>(n, static_cast<int64_t>(workers_.size()) + 1);
  if (participants <= 1) {
    body(0, n);
    return;
  }
  ParallelForJob job;
  job.body = &body;
  job.n = n;
  // ~8 claims per participant: fine enough that one slow chunk cannot
  // stall the call behind it, coarse enough that the cursor's cache line
  // is not the new bottleneck.
  job.chunk = std::max<int64_t>(1, n / (participants * 8));
  // Every participant — the queued records and the caller — decrements
  // the latch once in RunParallelChunks, so seed it with the full count.
  job.remaining.store(participants, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t c = 1; c < participants; ++c) {
      QueuedTask queued;
      queued.job = &job;
      queue_.push_back(std::move(queued));
    }
  }
  cv_.notify_all();

  RunParallelChunks(&job);
  std::unique_lock<std::mutex> lock(job.mu);
  job.done_cv.wait(lock, [&job] {
    return job.remaining.load(std::memory_order_acquire) <= 0;
  });
  if (job.error) std::rethrow_exception(job.error);
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.job != nullptr) {
      RunParallelChunks(task.job);
    } else {
      task.own();
    }
  }
}

}  // namespace raqo
