#include "common/regression.h"

#include <cmath>

#include "common/logging.h"
#include "common/matrix.h"

namespace raqo {

double LinearModel::Predict(const std::vector<double>& features) const {
  const size_t n_features =
      has_intercept ? weights.size() - 1 : weights.size();
  RAQO_CHECK(features.size() == n_features)
      << "Predict feature arity mismatch: " << features.size() << " vs "
      << n_features;
  double sum = has_intercept ? weights.back() : 0.0;
  for (size_t i = 0; i < n_features; ++i) sum += weights[i] * features[i];
  return sum;
}

Result<LinearModel> FitOls(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& y,
                           const OlsOptions& options) {
  if (rows.empty()) return Status::InvalidArgument("FitOls: no observations");
  if (rows.size() != y.size()) {
    return Status::InvalidArgument("FitOls: X/y size mismatch");
  }
  const size_t base_cols = rows[0].size();
  if (base_cols == 0) return Status::InvalidArgument("FitOls: empty features");
  const size_t cols = base_cols + (options.fit_intercept ? 1 : 0);
  if (rows.size() < cols) {
    return Status::InvalidArgument(
        "FitOls: fewer observations than unknowns");
  }

  Matrix x(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != base_cols) {
      return Status::InvalidArgument("FitOls: ragged feature rows");
    }
    for (size_t c = 0; c < base_cols; ++c) x.At(r, c) = rows[r][c];
    if (options.fit_intercept) x.At(r, base_cols) = 1.0;
  }

  Matrix xt = x.Transposed();
  Matrix xtx = xt.Multiply(x);
  xtx.AddToDiagonal(options.ridge_lambda);
  std::vector<double> xty = xt.MultiplyVector(y);

  RAQO_ASSIGN_OR_RETURN(std::vector<double> w, xtx.Solve(xty));
  LinearModel model;
  model.weights = std::move(w);
  model.has_intercept = options.fit_intercept;
  return model;
}

double RSquared(const LinearModel& model,
                const std::vector<std::vector<double>>& rows,
                const std::vector<double>& y) {
  RAQO_CHECK(rows.size() == y.size());
  RAQO_CHECK(!y.empty());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double pred = model.Predict(rows[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Rmse(const LinearModel& model,
            const std::vector<std::vector<double>>& rows,
            const std::vector<double>& y) {
  RAQO_CHECK(rows.size() == y.size());
  RAQO_CHECK(!y.empty());
  double ss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double err = y[i] - model.Predict(rows[i]);
    ss += err * err;
  }
  return std::sqrt(ss / static_cast<double>(y.size()));
}

}  // namespace raqo
