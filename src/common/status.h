#ifndef RAQO_COMMON_STATUS_H_
#define RAQO_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace raqo {

/// Error categories used across the RAQO library. Public APIs never throw;
/// they report failures through Status (or Result<T> for value-returning
/// calls), following the idiom of production storage/database engines.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (e.g. negative table size).
  kInvalidArgument,
  /// A referenced entity does not exist (e.g. unknown table id).
  kNotFound,
  /// A value fell outside a permitted range (e.g. resource dimension index).
  kOutOfRange,
  /// The operation cannot run in the current state (e.g. planner not
  /// configured with a cost model).
  kFailedPrecondition,
  /// The simulated execution ran out of memory (e.g. broadcast hash join
  /// build side exceeding the container budget).
  kResourceExhausted,
  /// A deadline expired before the operation completed (e.g. a blocking
  /// client call whose socket timeout fired before the response frame).
  kDeadlineExceeded,
  /// An invariant inside the library was violated; indicates a bug.
  kInternal,
  /// The requested feature is recognized but not supported (e.g. Selinger
  /// enumeration beyond its table-count limit).
  kUnsupported,
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T>.
#define RAQO_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::raqo::Status _raqo_status = (expr);         \
    if (!_raqo_status.ok()) return _raqo_status;  \
  } while (false)

}  // namespace raqo

#endif  // RAQO_COMMON_STATUS_H_
