#ifndef RAQO_COMMON_STOPWATCH_H_
#define RAQO_COMMON_STOPWATCH_H_

#include <chrono>

namespace raqo {

/// Measures wall-clock time with a monotonic clock. Used to report planner
/// runtimes (Figures 12-15 of the paper).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / Restart, in microseconds (the
  /// unit of the observability layer's latency histograms and Chrome
  /// trace timestamps).
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction / Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction / Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace raqo

#endif  // RAQO_COMMON_STOPWATCH_H_
