#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace raqo {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state would be degenerate; SplitMix64 of any seed cannot
  // produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  RAQO_CHECK(lo < hi) << "Uniform bounds inverted: " << lo << " >= " << hi;
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RAQO_CHECK(lo <= hi) << "UniformInt bounds inverted";
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  RAQO_CHECK(rate > 0.0) << "Exponential rate must be positive";
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace raqo
