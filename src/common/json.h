#ifndef RAQO_COMMON_JSON_H_
#define RAQO_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace raqo {

/// Escapes a string for embedding inside JSON double quotes.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number ("null" for non-finite values,
/// which JSON cannot represent).
std::string JsonNumber(double v);

/// Writes `content` to `path` (overwrite).
Status WriteTextFile(const std::string& path, const std::string& content);

/// A parsed JSON document: null / bool / number / string / array /
/// object. Objects keep their members in document order and look keys up
/// by linear scan — the wire messages this backs carry a handful of keys
/// each. Numbers are doubles, the only number JSON has.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// A null value.
  JsonValue() = default;

  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors CHECK the kind; test it first, or go through the
  /// Find* helpers, which return nullptr on any shape mismatch.
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key (first match); nullptr when this is not an
  /// object or the key is absent.
  const JsonValue* Find(std::string_view key) const;
  /// Find + kind filter: nullptr unless the member exists with the kind.
  const JsonValue* FindString(std::string_view key) const;
  const JsonValue* FindNumber(std::string_view key) const;
  const JsonValue* FindBool(std::string_view key) const;
  const JsonValue* FindArray(std::string_view key) const;
  const JsonValue* FindObject(std::string_view key) const;

  /// Builders used by the parser (and handy in tests): only valid on the
  /// matching kind.
  void Append(JsonValue v);                        ///< array
  void AddMember(std::string key, JsonValue v);    ///< object

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON document spanning all of `text` (surrounding
/// whitespace allowed; trailing garbage is an error). Nesting is
/// depth-limited so adversarial input from a socket cannot overflow the
/// stack. Fails with InvalidArgument describing the first syntax error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace raqo

#endif  // RAQO_COMMON_JSON_H_
