#include "common/arena.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"

namespace raqo {

void* Arena::Allocate(size_t bytes, size_t align) {
  RAQO_CHECK(align != 0 && (align & (align - 1)) == 0)
      << "arena alignment must be a power of two";
  RAQO_CHECK(align <= kMaxAlign) << "over-aligned arena request";
  if (bytes == 0) bytes = 1;  // distinct pointers for zero-byte requests

  uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
  if (cursor_ == nullptr ||
      aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
    AddBlock(bytes);
    p = reinterpret_cast<uintptr_t>(cursor_);
    aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
  }
  cursor_ = reinterpret_cast<char*>(aligned + bytes);
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::AddBlock(size_t bytes) {
  // Double the footprint each time (with room for the request plus worst
  // case alignment padding) so the block count stays logarithmic in the
  // peak allocation size.
  const size_t want = bytes + kMaxAlign;
  const size_t grown = std::max(min_block_bytes_, bytes_reserved_);
  Block block;
  block.capacity = std::max(want, grown);
  block.data = std::make_unique<char[]>(block.capacity);
  cursor_ = block.data.get();
  limit_ = cursor_ + block.capacity;
  bytes_reserved_ += block.capacity;
  blocks_.push_back(std::move(block));
}

void Arena::Reset() {
  if (blocks_.empty()) {
    bytes_allocated_ = 0;
    return;
  }
  // Keep only the largest block: after a few queries it is big enough
  // for a whole run and Reset becomes free of allocator traffic.
  size_t largest = 0;
  for (size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].capacity > blocks_[largest].capacity) largest = i;
  }
  if (largest != 0) std::swap(blocks_[0], blocks_[largest]);
  blocks_.resize(1);
  cursor_ = blocks_[0].data.get();
  limit_ = cursor_ + blocks_[0].capacity;
  bytes_reserved_ = blocks_[0].capacity;
  bytes_allocated_ = 0;
}

}  // namespace raqo
