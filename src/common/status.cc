#include "common/status.h"

namespace raqo {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace raqo
