#ifndef RAQO_COMMON_MATRIX_H_
#define RAQO_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace raqo {

/// Dense row-major matrix of doubles. Sized for the small systems that the
/// cost-model regression solves (tens of columns), not for HPC use.
class Matrix {
 public:
  /// Creates a rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// Creates a matrix from nested initializer data; all rows must have the
  /// same length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// Adds lambda to every diagonal entry (ridge regularization).
  void AddToDiagonal(double lambda);

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  /// A is this matrix (must be square, rows() == b.size()). Returns
  /// InvalidArgument for shape mismatches and FailedPrecondition when the
  /// system is (numerically) singular.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

  /// Multiplies this matrix by a vector; requires cols() == v.size().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Human-readable rendering, mainly for debugging.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace raqo

#endif  // RAQO_COMMON_MATRIX_H_
