#ifndef RAQO_COMMON_RNG_H_
#define RAQO_COMMON_RNG_H_

#include <cstdint>

namespace raqo {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**)
/// used everywhere randomness is needed so that experiments reproduce
/// bit-for-bit across runs. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(Normal(mu, sigma)). Heavy-tailed; used for job
  /// runtime distributions in the trace generator.
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (lambda). Used for Poisson arrivals.
  double Exponential(double rate);

  /// True with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  // Box-Muller produces pairs; cache the spare value.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace raqo

#endif  // RAQO_COMMON_RNG_H_
