#include "common/matrix.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace raqo {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  RAQO_CHECK(rows > 0 && cols > 0) << "Matrix dimensions must be positive";
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  RAQO_CHECK(!rows.empty()) << "FromRows requires at least one row";
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    RAQO_CHECK(rows[r].size() == m.cols_) << "ragged rows in FromRows";
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  RAQO_DCHECK(r < rows_ && c < cols_) << "Matrix index out of range";
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  RAQO_DCHECK(r < rows_ && c < cols_) << "Matrix index out of range";
  return data_[r * cols_ + c];
}

Matrix Matrix::Multiply(const Matrix& other) const {
  RAQO_CHECK(cols_ == other.rows_) << "Multiply shape mismatch";
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

void Matrix::AddToDiagonal(double lambda) {
  const size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) At(i, i) += lambda;
}

Result<std::vector<double>> Matrix::Solve(const std::vector<double>& b) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("Solve requires a square matrix");
  }
  if (b.size() != rows_) {
    return Status::InvalidArgument("Solve rhs size mismatch");
  }
  const size_t n = rows_;
  // Augmented working copy.
  std::vector<double> a = data_;
  std::vector<double> x = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: find the largest |entry| in this column.
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition(
          "Solve: matrix is singular or ill-conditioned");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(x[col], x[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      x[r] -= factor * x[col];
    }
  }
  // Back substitution.
  for (size_t ri = n; ri-- > 0;) {
    double sum = x[ri];
    for (size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * x[c];
    x[ri] = sum / a[ri * n + ri];
  }
  return x;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  RAQO_CHECK(v.size() == cols_) << "MultiplyVector shape mismatch";
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += At(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      out += StrPrintf("%s%.6g", j ? ", " : "", At(i, j));
    }
    out += "]\n";
  }
  return out;
}

}  // namespace raqo
