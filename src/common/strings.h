#ifndef RAQO_COMMON_STRINGS_H_
#define RAQO_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace raqo {

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the parts with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Renders a byte count with a binary-ish human suffix, e.g. "7.5 GB".
std::string HumanBytes(double bytes);

/// Renders a duration in seconds as "123.4 s" / "1.2 ms" as appropriate.
std::string HumanSeconds(double seconds);

}  // namespace raqo

#endif  // RAQO_COMMON_STRINGS_H_
