#ifndef RAQO_COMMON_LOGGING_H_
#define RAQO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace raqo {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only by RAQO_CHECK; library code reports recoverable errors through
/// Status, never by aborting.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed CheckFailure expression into void so both branches of
/// the RAQO_CHECK ternary have the same type. operator& binds looser than
/// operator<<, so all streamed values reach the CheckFailure first.
class Voidify {
 public:
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_logging
}  // namespace raqo

/// Aborts with a message when `condition` is false. Supports streaming
/// context: RAQO_CHECK(n > 0) << "n was " << n;
/// For programmer errors (broken invariants), not for data-dependent
/// failures — those go through Status.
#define RAQO_CHECK(condition)                                         \
  (condition) ? static_cast<void>(0)                                  \
              : ::raqo::internal_logging::Voidify() &                 \
                    ::raqo::internal_logging::CheckFailure(           \
                        __FILE__, __LINE__, #condition)

#define RAQO_DCHECK(condition) RAQO_CHECK(condition)

#endif  // RAQO_COMMON_LOGGING_H_
