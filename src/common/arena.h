#ifndef RAQO_COMMON_ARENA_H_
#define RAQO_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace raqo {

/// A bump allocator for planner scratch memory. The join-enumeration
/// inner loops (Selinger's 2^n memo, bushy DP's connectivity tables, the
/// reconstruction chain) are allocated afresh for every query; routing
/// them through the global allocator costs a malloc/free pair per
/// structure per query and scatters the memo across the heap. An Arena
/// hands out pointers by bumping a cursor through large blocks and frees
/// nothing until Reset(), which retains the largest block so a planner
/// that is reused across queries stops touching the global allocator
/// entirely once its blocks have grown to the workload's high-water mark.
///
/// Ownership/reset rules (see docs/PERF.md):
///   - one Arena per planner, owned by RaqoPlanner and reset per query;
///   - only trivially-destructible scratch goes in (DP entries, masks,
///     bitsets) — destructors are never run by the arena;
///   - returned plans (PlanNode trees) stay heap-allocated: they outlive
///     the query and their unique_ptr children run real destructors.
///
/// Not thread-safe: an arena belongs to one planner thread at a time,
/// matching the per-worker-planner design of the concurrent runner.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMaxAlign = alignof(std::max_align_t);

  explicit Arena(size_t min_block_bytes = kDefaultBlockBytes)
      : min_block_bytes_(min_block_bytes < 64 ? 64 : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two, at
  /// most kMaxAlign). Never returns nullptr; zero-byte requests get a
  /// unique valid pointer.
  void* Allocate(size_t bytes, size_t align = kMaxAlign);

  /// Typed array allocation; elements are NOT constructed.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(alignof(T) <= kMaxAlign,
                  "over-aligned types are not supported by the arena");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Drops every allocation. The largest block is kept for reuse, so a
  /// reset arena serves the next query of similar size without touching
  /// the global allocator. No destructors run — that is the contract:
  /// only trivially-destructible scratch may live here.
  void Reset();

  /// Bytes handed out since construction/Reset (before alignment pad).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Capacity currently held in blocks (survives Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  /// Grows the block list so the current block fits `bytes`.
  void AddBlock(size_t bytes);

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// A std::allocator adapter so standard containers (the DP memo vectors)
/// draw from an arena. Deallocation is a no-op — memory returns only at
/// Arena::Reset() — so containers that grow geometrically leave their old
/// buffers behind; size scratch up front (reserve/resize once) where it
/// matters. The container still runs element destructors itself, so any
/// T works, but trivially-destructible T is the intended use.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

/// The common container shape for arena-backed planner scratch.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace raqo

#endif  // RAQO_COMMON_ARENA_H_
