#ifndef RAQO_COMMON_NET_H_
#define RAQO_COMMON_NET_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace raqo::net {

/// ----------------------------------------------------------------------
/// Test-only fault injection.
///
/// Every socket read and write in raqo — the server reactors' non-blocking
/// I/O and the blocking SendAll/RecvAll helpers — goes through net::Send /
/// net::Recv, which consult a process-wide FaultInjector before touching
/// the kernel. The hook is compiled in always and costs one relaxed atomic
/// load when no injector is installed, so production builds pay nothing.
/// Tests install an injector to deterministically force the failure modes
/// that otherwise only fire under load: short writes, EAGAIN, EINTR, and
/// mid-frame connection resets.
/// ----------------------------------------------------------------------

/// What the injector wants done with one send(2)/recv(2) call.
struct FaultAction {
  enum class Kind {
    kPassThrough,  ///< perform the real syscall, untouched
    kShortLen,     ///< perform the real syscall with at most `len` bytes
    kError,        ///< skip the syscall; fail with errno = `error`
  };
  Kind kind = Kind::kPassThrough;
  size_t len = 0;
  int error = 0;

  static FaultAction PassThrough() { return {}; }
  /// Caps the syscall at `len` bytes (clamped to >= 1 so forward progress
  /// is preserved) — the short-write / short-read fault.
  static FaultAction Short(size_t len) {
    return {Kind::kShortLen, len, 0};
  }
  /// Fails the call with the given errno (EAGAIN, EINTR, ECONNRESET, ...)
  /// without performing any I/O.
  static FaultAction Fail(int error) { return {Kind::kError, 0, error}; }
};

/// Scripted by tests; called from whatever thread performs the I/O, so
/// implementations must be thread-safe.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultAction OnSend(int fd, size_t len) = 0;
  virtual FaultAction OnRecv(int fd, size_t len) = 0;
};

/// Installs (nullptr clears) the process-wide injector. The caller must
/// clear it before destroying the injector and before tearing down any
/// server still doing I/O it scripted. Test-only.
void SetFaultInjector(FaultInjector* injector);

/// RAII installer: clears the injector on scope exit.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector) {
    SetFaultInjector(injector);
  }
  ~ScopedFaultInjector() { SetFaultInjector(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
};

/// send(2) / recv(2) with the installed fault injector applied (and
/// passed straight through when none is). All raqo socket I/O uses these
/// instead of the raw syscalls.
ssize_t Send(int fd, const void* data, size_t len, int flags);
ssize_t Recv(int fd, void* data, size_t len, int flags);

/// Move-only RAII owner of a file descriptor (socket, epoll, eventfd);
/// closes on destruction. -1 means "none".
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release();
  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts the descriptor into non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle batching on a TCP socket (request/response traffic).
Status SetTcpNoDelay(int fd);

/// Arms SO_RCVTIMEO / SO_SNDTIMEO on a blocking socket (0 = no timeout,
/// negative = leave unchanged). After a timeout fires, the blocked
/// RecvAll/SendAll returns DeadlineExceeded instead of hanging forever.
Status SetSocketTimeouts(int fd, int64_t recv_timeout_ms,
                         int64_t send_timeout_ms);

/// Creates a TCP listen socket bound to host:port (port 0 picks an
/// ephemeral port; read it back with LocalPort). SO_REUSEADDR is set so
/// restarts do not trip over TIME_WAIT. With `reuse_port`, SO_REUSEPORT
/// is set before bind so several listeners (one per reactor thread) can
/// share the port and let the kernel spread accepted connections across
/// them; the call fails if the kernel refuses the option.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, bool reuse_port = false);

/// The locally bound port of a socket (after bind).
Result<uint16_t> LocalPort(int fd);

/// Opens a blocking TCP connection to host:port.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all `len` bytes (blocking socket; retries on EINTR and short
/// writes, never raises SIGPIPE).
Status SendAll(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes (blocking socket; retries on EINTR). A
/// clean peer close before any byte is FailedPrecondition with message
/// "connection closed"; a close mid-message is a short-read error.
Status RecvAll(int fd, void* data, size_t len);

}  // namespace raqo::net

#endif  // RAQO_COMMON_NET_H_
