#ifndef RAQO_COMMON_NET_H_
#define RAQO_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace raqo::net {

/// Move-only RAII owner of a file descriptor (socket, epoll, eventfd);
/// closes on destruction. -1 means "none".
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release();
  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts the descriptor into non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle batching on a TCP socket (request/response traffic).
Status SetTcpNoDelay(int fd);

/// Arms SO_RCVTIMEO / SO_SNDTIMEO on a blocking socket (0 = no timeout,
/// negative = leave unchanged). After a timeout fires, the blocked
/// RecvAll/SendAll returns DeadlineExceeded instead of hanging forever.
Status SetSocketTimeouts(int fd, int64_t recv_timeout_ms,
                         int64_t send_timeout_ms);

/// Creates a TCP listen socket bound to host:port (port 0 picks an
/// ephemeral port; read it back with LocalPort). SO_REUSEADDR is set so
/// restarts do not trip over TIME_WAIT.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog);

/// The locally bound port of a socket (after bind).
Result<uint16_t> LocalPort(int fd);

/// Opens a blocking TCP connection to host:port.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all `len` bytes (blocking socket; retries on EINTR and short
/// writes, never raises SIGPIPE).
Status SendAll(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes (blocking socket; retries on EINTR). A
/// clean peer close before any byte is FailedPrecondition with message
/// "connection closed"; a close mid-message is a short-read error.
Status RecvAll(int fd, void* data, size_t len);

}  // namespace raqo::net

#endif  // RAQO_COMMON_NET_H_
