#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace raqo::net {

namespace {

/// The installed fault injector; nullptr in production. One relaxed-ish
/// atomic load per socket call is the whole cost of the hook.
std::atomic<FaultInjector*> g_fault_injector{nullptr};

}  // namespace

void SetFaultInjector(FaultInjector* injector) {
  g_fault_injector.store(injector, std::memory_order_release);
}

ssize_t Send(int fd, const void* data, size_t len, int flags) {
  if (FaultInjector* injector =
          g_fault_injector.load(std::memory_order_acquire);
      injector != nullptr) {
    const FaultAction action = injector->OnSend(fd, len);
    if (action.kind == FaultAction::Kind::kError) {
      errno = action.error;
      return -1;
    }
    if (action.kind == FaultAction::Kind::kShortLen) {
      // Clamp to >= 1 so callers looping on "bytes left" always advance.
      len = std::max<size_t>(1, std::min(len, action.len));
    }
  }
  return ::send(fd, data, len, flags);
}

ssize_t Recv(int fd, void* data, size_t len, int flags) {
  if (FaultInjector* injector =
          g_fault_injector.load(std::memory_order_acquire);
      injector != nullptr) {
    const FaultAction action = injector->OnRecv(fd, len);
    if (action.kind == FaultAction::Kind::kError) {
      errno = action.error;
      return -1;
    }
    if (action.kind == FaultAction::Kind::kShortLen) {
      len = std::max<size_t>(1, std::min(len, action.len));
    }
  }
  return ::recv(fd, data, len, flags);
}

namespace {

Status Errno(const char* what) {
  return Status::FailedPrecondition(
      StrPrintf("%s: %s", what, std::strerror(errno)));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

int UniqueFd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetTcpNoDelay(int fd) {
  const int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status SetSocketTimeouts(int fd, int64_t recv_timeout_ms,
                         int64_t send_timeout_ms) {
  const auto arm = [fd](int option, int64_t ms, const char* what) {
    if (ms < 0) return Status::OK();
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) < 0) {
      return Errno(what);
    }
    return Status::OK();
  };
  RAQO_RETURN_IF_ERROR(
      arm(SO_RCVTIMEO, recv_timeout_ms, "setsockopt(SO_RCVTIMEO)"));
  return arm(SO_SNDTIMEO, send_timeout_ms, "setsockopt(SO_SNDTIMEO)");
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, bool reuse_port) {
  RAQO_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port &&
      setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    return Errno("setsockopt(SO_REUSEPORT)");
  }
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(fd.get(), backlog) < 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  RAQO_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  int rc;
  do {
    rc = connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect");
  return fd;
}

Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = Send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO fired on a blocking socket.
        return Status::DeadlineExceeded("send timed out");
      }
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = Recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO fired on a blocking socket.
        return Status::DeadlineExceeded(StrPrintf(
            "recv timed out (%zu of %zu bytes)", got, len));
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        return Status::FailedPrecondition("connection closed");
      }
      return Status::FailedPrecondition(StrPrintf(
          "connection closed mid-message (%zu of %zu bytes)", got, len));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace raqo::net
