#ifndef RAQO_COMMON_RESULT_H_
#define RAQO_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace raqo {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Modeled on arrow::Result / absl::StatusOr.
///
/// Typical use:
///   Result<double> r = model.Predict(features);
///   if (!r.ok()) return r.status();
///   double cost = *r;
template <typename T>
class Result {
 public:
  /// Constructs a failed result. CHECK-fails if `status` is OK, since an OK
  /// result must carry a value.
  Result(Status status)  // NOLINT: implicit by design, mirrors StatusOr.
      : status_(std::move(status)) {
    RAQO_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT: implicit by design, mirrors StatusOr.
      : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors CHECK-fail when the result is an error; callers must test
  /// ok() first (or use ValueOr).
  const T& value() const& {
    RAQO_CHECK(ok()) << "Result accessed without value: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    RAQO_CHECK(ok()) << "Result accessed without value: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RAQO_CHECK(ok()) << "Result accessed without value: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating its status on error and
/// otherwise assigning the value into `lhs`.
#define RAQO_ASSIGN_OR_RETURN(lhs, expr)                    \
  RAQO_ASSIGN_OR_RETURN_IMPL_(                              \
      RAQO_CONCAT_(_raqo_result_, __LINE__), lhs, expr)

#define RAQO_CONCAT_INNER_(a, b) a##b
#define RAQO_CONCAT_(a, b) RAQO_CONCAT_INNER_(a, b)
#define RAQO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace raqo

#endif  // RAQO_COMMON_RESULT_H_
