#ifndef RAQO_COMMON_STATS_H_
#define RAQO_COMMON_STATS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace raqo {

/// Arithmetic mean; requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; requires a non-empty input.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> values, double p);

/// An empirical CDF: sorted (value, cumulative fraction) points suitable
/// for printing a distribution like the paper's Figure 1.
class EmpiricalCdf {
 public:
  /// Builds the CDF from raw samples. Requires a non-empty input.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= v.
  double FractionAtOrBelow(double v) const;

  /// Fraction of samples >= v.
  double FractionAtOrAbove(double v) const;

  /// Value at the given cumulative fraction q in [0, 1].
  double Quantile(double q) const;

  /// Evenly spaced (fraction, value) points for plotting, `n` of them.
  std::vector<std::pair<double, double>> Points(size_t n) const;

  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace raqo

#endif  // RAQO_COMMON_STATS_H_
