#ifndef RAQO_COMMON_REGRESSION_H_
#define RAQO_COMMON_REGRESSION_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace raqo {

/// A fitted linear model y = w . x (optionally with an intercept folded in
/// as an extra trailing weight). This is the learner behind the paper's
/// cost model (Section VI-A), which regresses operator runtimes onto the
/// feature vector [ss, ss^2, cs, cs^2, nc, nc^2, cs*nc].
struct LinearModel {
  std::vector<double> weights;
  bool has_intercept = false;

  /// Predicted value for a raw feature vector (without the intercept
  /// column; it is appended internally when has_intercept is set).
  double Predict(const std::vector<double>& features) const;
};

/// Options controlling the ordinary-least-squares fit.
struct OlsOptions {
  /// Ridge regularization strength added to the normal-equation diagonal.
  /// A small positive value keeps near-collinear profiles solvable.
  double ridge_lambda = 1e-9;
  /// Whether to fit an intercept term. The paper's published coefficient
  /// vectors have no explicit intercept, so the default is off.
  bool fit_intercept = false;
};

/// Fits y ~ X via the normal equations (X^T X + lambda I) w = X^T y.
/// `rows` holds one feature vector per observation; all must be the same
/// length and there must be at least as many observations as unknowns.
Result<LinearModel> FitOls(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& y,
                           const OlsOptions& options = {});

/// Coefficient of determination of `model` on the given data (1 = perfect).
double RSquared(const LinearModel& model,
                const std::vector<std::vector<double>>& rows,
                const std::vector<double>& y);

/// Root mean squared prediction error of `model` on the given data.
double Rmse(const LinearModel& model,
            const std::vector<std::vector<double>>& rows,
            const std::vector<double>& y);

}  // namespace raqo

#endif  // RAQO_COMMON_REGRESSION_H_
