#include "common/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace raqo {

namespace {

/// Nesting bound for ParseJson; deeper documents are rejected rather
/// than recursed into (wire input is untrusted).
constexpr int kMaxParseDepth = 64;

/// Appends the UTF-8 encoding of a code point (parser-validated range).
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RAQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrPrintf("%s (at offset %zu)", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) {
      return Error("document nests deeper than the parser allows");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        RAQO_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string object key");
      }
      RAQO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      RAQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.AddMember(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      RAQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          RAQO_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by an
          // escaped low surrogate; anything else is malformed.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) {
              return Error("high surrogate without a following \\u escape");
            }
            RAQO_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unexpected low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid value");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits must follow the decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits must follow the exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number");
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips doubles; trim the common integral case for
  // readability. The magnitude guard must precede the int64_t cast:
  // casting a double at or beyond 2^63 is undefined behavior.
  if (std::fabs(v) < 1e15 &&
      v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return StrPrintf("%.17g", v);
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::FailedPrecondition("cannot open " + path +
                                      " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int closed = std::fclose(f);
  if (written != content.size() || closed != 0) {
    return Status::FailedPrecondition("short write to " + path);
  }
  return Status::OK();
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeArray() {
  JsonValue value;
  value.kind_ = Kind::kArray;
  return value;
}

JsonValue JsonValue::MakeObject() {
  JsonValue value;
  value.kind_ = Kind::kObject;
  return value;
}

bool JsonValue::bool_value() const {
  RAQO_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  RAQO_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  RAQO_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  RAQO_CHECK(is_array());
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  RAQO_CHECK(is_object());
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindString(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v : nullptr;
}

const JsonValue* JsonValue::FindNumber(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v : nullptr;
}

const JsonValue* JsonValue::FindBool(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v : nullptr;
}

const JsonValue* JsonValue::FindArray(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_array() ? v : nullptr;
}

const JsonValue* JsonValue::FindObject(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_object() ? v : nullptr;
}

void JsonValue::Append(JsonValue v) {
  RAQO_CHECK(is_array());
  items_.push_back(std::move(v));
}

void JsonValue::AddMember(std::string key, JsonValue v) {
  RAQO_CHECK(is_object());
  members_.emplace_back(std::move(key), std::move(v));
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace raqo
