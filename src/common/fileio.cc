#include "common/fileio.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace raqo::io {

namespace {

std::atomic<FileFaultInjector*> g_file_fault_injector{nullptr};

Status Errno(const char* what, const std::string& path) {
  return Status::FailedPrecondition(
      StrPrintf("%s %s: %s", what, path.c_str(), std::strerror(errno)));
}

/// The CRC-32 (IEEE) lookup table, built once on first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Directory component of `path` ("." when it has none).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsyncs a directory so a rename or create inside it is durable.
Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open(dir)", dir);
  const int rc = Fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Errno("fsync(dir)", dir);
  }
  return Status::OK();
}

}  // namespace

void SetFileFaultInjector(FileFaultInjector* injector) {
  g_file_fault_injector.store(injector, std::memory_order_release);
}

ssize_t Write(int fd, const void* data, size_t len) {
  if (FileFaultInjector* injector =
          g_file_fault_injector.load(std::memory_order_acquire);
      injector != nullptr) {
    const net::FaultAction action = injector->OnWrite(fd, len);
    if (action.kind == net::FaultAction::Kind::kError) {
      errno = action.error;
      return -1;
    }
    if (action.kind == net::FaultAction::Kind::kShortLen) {
      // Clamp to >= 1 so callers looping on "bytes left" always advance.
      len = std::max<size_t>(1, std::min(len, action.len));
    }
  }
  return ::write(fd, data, len);
}

int Fsync(int fd) {
  if (FileFaultInjector* injector =
          g_file_fault_injector.load(std::memory_order_acquire);
      injector != nullptr) {
    const net::FaultAction action = injector->OnFsync(fd);
    if (action.kind == net::FaultAction::Kind::kError) {
      errno = action.error;
      return -1;
    }
  }
  return ::fsync(fd);
}

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t left = len;
  while (left > 0) {
    const ssize_t n = Write(fd, p, left);
    if (n > 0) {
      p += static_cast<size_t>(n);
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::FailedPrecondition(
        StrPrintf("write: %s (%zu of %zu bytes written)",
                  std::strerror(errno), len - left, len));
  }
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file at " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    const Status failed = Errno("read", path);
    ::close(fd);
    return failed;
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Result<int64_t> FileSizeBytes(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<int64_t>(st.st_size);
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status written = WriteAll(fd, content.data(), content.size());
  if (written.ok() && Fsync(fd) != 0) written = Errno("fsync", tmp);
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return failed;
  }
  // The rename is only durable once the directory entry is on disk.
  return FsyncDirectory(DirName(path));
}

Result<net::UniqueFd> OpenForAppend(const std::string& path,
                                    int64_t valid_bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  net::UniqueFd owned(fd);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    return Errno("ftruncate", path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) return Errno("lseek", path);
  return owned;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    const size_t end = slash == std::string::npos ? path.size() : slash;
    partial = path.substr(0, end);
    pos = end + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
    if (slash == std::string::npos) break;
  }
  return Status::OK();
}

}  // namespace raqo::io
