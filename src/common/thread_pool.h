#ifndef RAQO_COMMON_THREAD_POOL_H_
#define RAQO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace raqo {

/// A fixed-size worker pool for the concurrent planning service. Tasks
/// are plain closures executed FIFO by `num_threads` long-lived workers;
/// Submit returns a future so callers can join on individual tasks, and
/// ParallelFor covers the common "partition [0, n) into contiguous
/// chunks" pattern used by the parallel resource planner and the
/// concurrent workload runner.
///
/// The pool itself is thread-safe: any thread may Submit. Task closures
/// must synchronize their own shared state.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(begin, end) over a partition of [0, n) into roughly equal
  /// contiguous chunks (at most one per worker), blocking until every
  /// chunk completes. The calling thread executes one chunk itself so a
  /// single-threaded pool degrades to a plain loop.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& body);

  /// A sensible worker count for this machine: hardware concurrency,
  /// with a floor of 1 when it cannot be determined.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace raqo

#endif  // RAQO_COMMON_THREAD_POOL_H_
