#ifndef RAQO_COMMON_THREAD_POOL_H_
#define RAQO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace raqo {

/// A fixed-size worker pool for the concurrent planning service. Tasks
/// are plain closures executed FIFO by `num_threads` long-lived workers;
/// Submit returns a future so callers can join on individual tasks, and
/// ParallelFor covers the common "partition [0, n) into contiguous
/// chunks" pattern used by the parallel resource planner and the
/// concurrent workload runner.
///
/// The pool itself is thread-safe: any thread may Submit, and any number
/// of threads may run ParallelFor concurrently (each call's chunks
/// interleave on the workers; each caller blocks only on its own
/// completion latch). Task closures must synchronize their own shared
/// state.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(begin, end) over contiguous chunks of [0, n), blocking
  /// until the whole range completes. The calling thread participates,
  /// so a single-threaded pool degrades to a plain loop.
  ///
  /// Chunks are *claimed dynamically* (work stealing): participants bump
  /// a shared atomic cursor and take the next chunk of roughly
  /// n / (participants * 8) indices, so a participant stuck on a slow
  /// chunk — one band of pruned-out grid rows costing nothing next to a
  /// band holding the surviving block, a worker preempted by the OS —
  /// no longer stretches the whole call the way one static
  /// range-per-worker did. Late-arriving participants that find the
  /// cursor exhausted simply leave; the range still completes because
  /// the caller itself drains the cursor.
  ///
  /// Dispatch is deliberately cheap: the participant records are queued
  /// under one lock acquisition as thin job pointers — no per-chunk
  /// std::function, packaged_task, or future shared state — and
  /// completion is signalled through a stack-allocated latch. The first
  /// exception a chunk throws is rethrown on the calling thread after
  /// the whole range has been processed (a failed chunk never aborts the
  /// others).
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& body);

  /// A sensible worker count for this machine: hardware concurrency,
  /// with a floor of 1 when it cannot be determined.
  static int DefaultThreads();

 private:
  /// Shared state of one ParallelFor call, living on the caller's stack
  /// for the duration of the call. `next` is the work-stealing cursor
  /// participants claim chunks from; `remaining` counts participants
  /// still running — the one finishing last signals `done_cv`.
  struct ParallelForJob {
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    int64_t n = 0;
    int64_t chunk = 1;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> remaining{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first chunk failure, under `mu`
  };

  /// One queue slot: either an owned Submit closure or a borrowed
  /// ParallelFor participant record (job != nullptr).
  struct QueuedTask {
    std::packaged_task<void()> own;
    ParallelForJob* job = nullptr;
  };

  /// Claims and runs chunks until the job's cursor is exhausted, then
  /// drops the participant latch.
  static void RunParallelChunks(ParallelForJob* job);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace raqo

#endif  // RAQO_COMMON_THREAD_POOL_H_
