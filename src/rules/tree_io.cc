#include "rules/tree_io.h"

#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace raqo::rules {

namespace {

constexpr const char* kHeader = "raqo-decision-tree v1";

std::string EscapePipes(const std::string& s) {
  std::string out;
  for (char c : s) {
    // Names may not contain the separator; replace defensively.
    out += (c == '|' || c == '\n') ? '_' : c;
  }
  return out;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::vector<std::string> escaped;
  escaped.reserve(names.size());
  for (const std::string& n : names) escaped.push_back(EscapePipes(n));
  return JoinStrings(escaped, "|");
}

std::vector<std::string> SplitPipes(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == '|') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

Result<double> ParseHexDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    return Status::InvalidArgument("malformed number: " + s);
  }
  return v;
}

}  // namespace

std::string SerializeTree(const DecisionTree& tree) {
  std::string out = std::string(kHeader) + "\n";
  out += "features " + JoinNames(tree.feature_names()) + "\n";
  out += "classes " + JoinNames(tree.class_names()) + "\n";
  out += StrPrintf("nodes %d\n", tree.NodeCount());
  for (const DecisionTree::Node& node : tree.nodes()) {
    out += StrPrintf("node %d %s %d %d %a %d %d %d", node.feature,
                     StrPrintf("%a", node.threshold).c_str(), node.left,
                     node.right, node.gini, node.samples, node.majority,
                     node.depth);
    for (int c : node.class_counts) out += StrPrintf(" %d", c);
    out += "\n";
  }
  return out;
}

Result<DecisionTree> DeserializeTree(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing decision-tree header");
  }
  auto expect_prefix = [&](const char* prefix) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(std::string("missing line: ") + prefix);
    }
    const std::string p = std::string(prefix) + " ";
    if (line.rfind(p, 0) != 0) {
      return Status::InvalidArgument(std::string("expected line: ") + prefix);
    }
    return line.substr(p.size());
  };

  RAQO_ASSIGN_OR_RETURN(std::string features_line,
                        expect_prefix("features"));
  RAQO_ASSIGN_OR_RETURN(std::string classes_line, expect_prefix("classes"));
  RAQO_ASSIGN_OR_RETURN(std::string nodes_line, expect_prefix("nodes"));

  const std::vector<std::string> feature_names = SplitPipes(features_line);
  const std::vector<std::string> class_names = SplitPipes(classes_line);
  int node_count = 0;
  {
    std::istringstream fields(nodes_line);
    if (!(fields >> node_count) || node_count <= 0) {
      return Status::InvalidArgument("bad node count");
    }
  }

  std::vector<DecisionTree::Node> nodes;
  nodes.reserve(static_cast<size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated node list");
    }
    std::istringstream fields(line);
    std::string keyword;
    std::string threshold_token;
    std::string gini_token;
    DecisionTree::Node node;
    fields >> keyword >> node.feature >> threshold_token >> node.left >>
        node.right >> gini_token >> node.samples >> node.majority >>
        node.depth;
    if (keyword != "node" || fields.fail()) {
      return Status::InvalidArgument("malformed node line: " + line);
    }
    RAQO_ASSIGN_OR_RETURN(node.threshold, ParseHexDouble(threshold_token));
    RAQO_ASSIGN_OR_RETURN(node.gini, ParseHexDouble(gini_token));
    int count = 0;
    while (fields >> count) node.class_counts.push_back(count);
    nodes.push_back(std::move(node));
  }
  return DecisionTree::FromParts(feature_names, class_names,
                                 std::move(nodes));
}

}  // namespace raqo::rules
