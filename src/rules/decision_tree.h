#ifndef RAQO_RULES_DECISION_TREE_H_
#define RAQO_RULES_DECISION_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rules/dataset.h"

namespace raqo::rules {

/// Learning parameters of the CART classifier.
struct TreeParams {
  int max_depth = 12;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// A split must reduce weighted gini impurity by at least this much.
  double min_impurity_decrease = 0.0;
};

/// A CART decision-tree classifier with gini impurity over numeric
/// features — the same learner (scikit-learn's DecisionTreeClassifier)
/// the paper used to build the RAQO trees of Figure 11, reimplemented in
/// C++. Splits are of the form `feature <= threshold` with the True
/// branch on the left, matching scikit-learn's rendering.
class DecisionTree {
 public:
  /// One tree node, exposed for tests and for rendering.
  struct Node {
    /// Split feature index, or -1 for leaves.
    int feature = -1;
    double threshold = 0.0;
    /// Child node indices; -1 for leaves.
    int left = -1;
    int right = -1;
    /// Per-class sample counts reaching this node (the `value=[...]` of
    /// the paper's figures).
    std::vector<int> class_counts;
    double gini = 0.0;
    int samples = 0;
    /// Majority class at this node.
    int majority = 0;
    int depth = 0;

    bool is_leaf() const { return left < 0; }
  };

  /// Learns a tree from `data`. Fails on invalid datasets or empty input.
  static Result<DecisionTree> Fit(const Dataset& data,
                                  const TreeParams& params = TreeParams());

  /// Reassembles a tree from its parts (deserialization). Node 0 is the
  /// root; children must point forward (child index > parent index), be
  /// either both set or both -1, and all indices/labels must be in
  /// range. Fails with InvalidArgument otherwise.
  static Result<DecisionTree> FromParts(
      std::vector<std::string> feature_names,
      std::vector<std::string> class_names, std::vector<Node> nodes);

  /// Predicted class id for a feature vector.
  int Predict(const std::vector<double>& features) const;

  /// Fraction of training rows classified correctly.
  double Accuracy(const Dataset& data) const;

  /// Pessimistic error pruning (bottom-up): a subtree is replaced by a
  /// leaf when the leaf's continuity-corrected error estimate does not
  /// exceed the subtree's. Mirrors the pruning the paper points to
  /// ([34], pessimistic decision tree pruning) as the remedy should the
  /// trees grow too large. Returns the number of pruned subtrees.
  int PessimisticPrune();

  int NodeCount() const { return static_cast<int>(nodes_.size()); }
  int LeafCount() const;
  /// Maximum root-to-leaf path length in edges (the paper reports a max
  /// path length of 6 for the Hive tree and 7 for the Spark tree).
  int MaxPathLength() const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Multi-line rendering in the style of the paper's tree figures, e.g.
  ///   Data Size (GB) <= 5.1 gini=0.5 samples=120 value=[60, 60] class=BHJ
  ///   |--True:  ...
  ///   |--False: ...
  std::string ToText() const;

  /// Graphviz rendering matching the paper's Figures 10/11 (each node
  /// shows the split, gini, samples, value and class; True branches go
  /// left). Render with: dot -Tsvg tree.dot -o tree.svg
  std::string ToDot() const;

 private:
  DecisionTree() = default;

  int BuildNode(const Dataset& data, const TreeParams& params,
                std::vector<int>& indices, int begin, int end, int depth);

  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

}  // namespace raqo::rules

#endif  // RAQO_RULES_DECISION_TREE_H_
