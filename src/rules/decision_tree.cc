#include "rules/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"

namespace raqo::rules {

namespace {

double GiniOfCounts(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double gini = 1.0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    gini -= p * p;
  }
  return gini;
}

struct SplitChoice {
  int feature = -1;
  double threshold = 0.0;
  double impurity_decrease = -1.0;
};

}  // namespace

Result<DecisionTree> DecisionTree::Fit(const Dataset& data,
                                       const TreeParams& params) {
  RAQO_RETURN_IF_ERROR(data.Validate());
  if (data.rows.empty()) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (params.max_depth < 0 || params.min_samples_leaf < 1 ||
      params.min_samples_split < 2) {
    return Status::InvalidArgument("invalid tree parameters");
  }
  DecisionTree tree;
  tree.feature_names_ = data.feature_names;
  tree.class_names_ = data.class_names;
  std::vector<int> indices(data.rows.size());
  std::iota(indices.begin(), indices.end(), 0);
  tree.BuildNode(data, params, indices, 0,
                 static_cast<int>(indices.size()), 0);
  return tree;
}

Result<DecisionTree> DecisionTree::FromParts(
    std::vector<std::string> feature_names,
    std::vector<std::string> class_names, std::vector<Node> nodes) {
  if (feature_names.empty() || class_names.size() < 2 || nodes.empty()) {
    return Status::InvalidArgument("tree parts incomplete");
  }
  const int n = static_cast<int>(nodes.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes[static_cast<size_t>(i)];
    if ((node.left < 0) != (node.right < 0)) {
      return Status::InvalidArgument("node with exactly one child");
    }
    if (!node.is_leaf()) {
      if (node.left <= i || node.left >= n || node.right <= i ||
          node.right >= n) {
        return Status::InvalidArgument("child indices must point forward");
      }
      if (node.feature < 0 ||
          static_cast<size_t>(node.feature) >= feature_names.size()) {
        return Status::OutOfRange("split feature out of range");
      }
    }
    if (node.majority < 0 ||
        static_cast<size_t>(node.majority) >= class_names.size()) {
      return Status::OutOfRange("majority class out of range");
    }
    if (node.class_counts.size() != class_names.size()) {
      return Status::InvalidArgument("class-count arity mismatch");
    }
  }
  DecisionTree tree;
  tree.feature_names_ = std::move(feature_names);
  tree.class_names_ = std::move(class_names);
  tree.nodes_ = std::move(nodes);
  return tree;
}

int DecisionTree::BuildNode(const Dataset& data, const TreeParams& params,
                            std::vector<int>& indices, int begin, int end,
                            int depth) {
  const int n = end - begin;
  RAQO_CHECK(n > 0) << "BuildNode on an empty range";

  Node node;
  node.depth = depth;
  node.samples = n;
  node.class_counts.assign(data.num_classes(), 0);
  for (int i = begin; i < end; ++i) {
    node.class_counts[static_cast<size_t>(
        data.labels[static_cast<size_t>(indices[static_cast<size_t>(i)])])]++;
  }
  node.gini = GiniOfCounts(node.class_counts, n);
  node.majority = static_cast<int>(
      std::max_element(node.class_counts.begin(), node.class_counts.end()) -
      node.class_counts.begin());

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  // Stop criteria: pure node, depth limit, or too few samples.
  if (node.gini == 0.0 || depth >= params.max_depth ||
      n < params.min_samples_split) {
    return node_index;
  }

  // Find the best gini split across all features.
  SplitChoice best;
  std::vector<std::pair<double, int>> values(static_cast<size_t>(n));
  for (size_t f = 0; f < data.num_features(); ++f) {
    for (int i = 0; i < n; ++i) {
      const int row = indices[static_cast<size_t>(begin + i)];
      values[static_cast<size_t>(i)] = {
          data.rows[static_cast<size_t>(row)][f],
          data.labels[static_cast<size_t>(row)]};
    }
    std::sort(values.begin(), values.end());

    std::vector<int> left_counts(data.num_classes(), 0);
    std::vector<int> right_counts = node.class_counts;
    for (int i = 0; i < n - 1; ++i) {
      const int label = values[static_cast<size_t>(i)].second;
      left_counts[static_cast<size_t>(label)]++;
      right_counts[static_cast<size_t>(label)]--;
      // Can only split between distinct feature values.
      if (values[static_cast<size_t>(i)].first ==
          values[static_cast<size_t>(i + 1)].first) {
        continue;
      }
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < params.min_samples_leaf || nr < params.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(nl) * GiniOfCounts(left_counts, nl) +
           static_cast<double>(nr) * GiniOfCounts(right_counts, nr)) /
          static_cast<double>(n);
      const double decrease = node.gini - weighted;
      if (decrease > best.impurity_decrease + 1e-12) {
        best.impurity_decrease = decrease;
        best.feature = static_cast<int>(f);
        best.threshold = (values[static_cast<size_t>(i)].first +
                          values[static_cast<size_t>(i + 1)].first) /
                         2.0;
      }
    }
  }

  if (best.feature < 0 ||
      best.impurity_decrease < params.min_impurity_decrease) {
    return node_index;  // no usable split; stay a leaf
  }

  // Partition the index range: rows with feature <= threshold go left.
  const auto mid_it = std::stable_partition(
      indices.begin() + begin, indices.begin() + end, [&](int row) {
        return data.rows[static_cast<size_t>(row)]
                   [static_cast<size_t>(best.feature)] <= best.threshold;
      });
  const int mid = static_cast<int>(mid_it - indices.begin());
  RAQO_CHECK(mid > begin && mid < end) << "degenerate partition";

  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  const int left = BuildNode(data, params, indices, begin, mid, depth + 1);
  nodes_[static_cast<size_t>(node_index)].left = left;
  const int right = BuildNode(data, params, indices, mid, end, depth + 1);
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

int DecisionTree::Predict(const std::vector<double>& features) const {
  RAQO_CHECK(features.size() == feature_names_.size())
      << "Predict feature arity mismatch";
  RAQO_CHECK(!nodes_.empty()) << "Predict on an unfitted tree";
  int idx = 0;
  while (!nodes_[static_cast<size_t>(idx)].is_leaf()) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    idx = features[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes_[static_cast<size_t>(idx)].majority;
}

double DecisionTree::Accuracy(const Dataset& data) const {
  RAQO_CHECK(!data.rows.empty());
  int correct = 0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    if (Predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.rows.size());
}

int DecisionTree::PessimisticPrune() {
  if (nodes_.empty()) return 0;
  int pruned = 0;

  // Returns the pessimistic (continuity-corrected) error count of the
  // subtree rooted at idx, pruning bottom-up as it goes.
  std::function<double(int)> visit = [&](int idx) -> double {
    Node& node = nodes_[static_cast<size_t>(idx)];
    const double leaf_errors =
        static_cast<double>(node.samples -
                            node.class_counts[static_cast<size_t>(
                                node.majority)]) +
        0.5;
    if (node.is_leaf()) return leaf_errors;
    const double subtree_errors = visit(node.left) + visit(node.right);
    if (leaf_errors <= subtree_errors) {
      node.left = -1;
      node.right = -1;
      node.feature = -1;
      ++pruned;
      return leaf_errors;
    }
    return subtree_errors;
  };
  visit(0);

  // Compact away orphaned nodes so NodeCount/iteration stay meaningful.
  std::vector<Node> compacted;
  compacted.reserve(nodes_.size());
  std::function<int(int)> copy = [&](int idx) -> int {
    const Node& src = nodes_[static_cast<size_t>(idx)];
    const int new_index = static_cast<int>(compacted.size());
    compacted.push_back(src);
    if (!src.is_leaf()) {
      const int l = copy(src.left);
      const int r = copy(src.right);
      compacted[static_cast<size_t>(new_index)].left = l;
      compacted[static_cast<size_t>(new_index)].right = r;
    }
    return new_index;
  };
  copy(0);
  nodes_ = std::move(compacted);
  return pruned;
}

int DecisionTree::LeafCount() const {
  int leaves = 0;
  for (const Node& n : nodes_) {
    if (n.is_leaf()) ++leaves;
  }
  return leaves;
}

int DecisionTree::MaxPathLength() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth_of = [&](int idx) -> int {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.is_leaf()) return 0;
    return 1 + std::max(depth_of(node.left), depth_of(node.right));
  };
  return depth_of(0);
}

std::string DecisionTree::ToText() const {
  if (nodes_.empty()) return "(unfitted tree)";
  std::string out;
  std::function<void(int, const std::string&)> render =
      [&](int idx, const std::string& prefix) {
        const Node& node = nodes_[static_cast<size_t>(idx)];
        std::vector<std::string> counts;
        for (int c : node.class_counts) counts.push_back(std::to_string(c));
        std::string line;
        if (!node.is_leaf()) {
          line += feature_names_[static_cast<size_t>(node.feature)] +
                  StrPrintf(" <= %.4g  ", node.threshold);
        }
        line += StrPrintf("gini=%.4g samples=%d value=[%s] class=%s",
                          node.gini, node.samples,
                          JoinStrings(counts, ", ").c_str(),
                          class_names_[static_cast<size_t>(node.majority)]
                              .c_str());
        out += prefix + line + "\n";
        if (!node.is_leaf()) {
          render(node.left, prefix + "|--T: ");
          render(node.right, prefix + "|--F: ");
        }
      };
  render(0, "");
  return out;
}

std::string DecisionTree::ToDot() const {
  if (nodes_.empty()) return "digraph tree {}\n";
  std::string out =
      "digraph tree {\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<std::string> counts;
    for (int c : node.class_counts) counts.push_back(std::to_string(c));
    std::string label;
    if (!node.is_leaf()) {
      label += feature_names_[static_cast<size_t>(node.feature)] +
               StrPrintf(" <= %.4g\\n", node.threshold);
    }
    label += StrPrintf("gini = %.4g\\nsamples = %d\\nvalue = [%s]\\nclass = %s",
                       node.gini, node.samples,
                       JoinStrings(counts, ", ").c_str(),
                       class_names_[static_cast<size_t>(node.majority)]
                           .c_str());
    out += StrPrintf("  n%zu [label=\"%s\"];\n", i, label.c_str());
    if (!node.is_leaf()) {
      out += StrPrintf("  n%zu -> n%d [label=\"True\"];\n", i, node.left);
      out += StrPrintf("  n%zu -> n%d [label=\"False\"];\n", i, node.right);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace raqo::rules
