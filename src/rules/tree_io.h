#ifndef RAQO_RULES_TREE_IO_H_
#define RAQO_RULES_TREE_IO_H_

#include <string>

#include "common/result.h"
#include "rules/decision_tree.h"

namespace raqo::rules {

/// Serializes a fitted decision tree to a line-based text format, so a
/// rule-based RAQO policy trained from workload traces can be shipped
/// into Hive/Spark-style engines without retraining. Thresholds
/// round-trip exactly (hex float encoding).
std::string SerializeTree(const DecisionTree& tree);

/// Parses a tree produced by SerializeTree; validates structure through
/// DecisionTree::FromParts. Fails with InvalidArgument on malformed
/// input.
Result<DecisionTree> DeserializeTree(const std::string& text);

}  // namespace raqo::rules

#endif  // RAQO_RULES_TREE_IO_H_
