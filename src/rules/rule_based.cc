#include "rules/rule_based.h"

#include <cmath>

namespace raqo::rules {

plan::JoinImpl DefaultRulePolicy::Choose(
    double smaller_gb, const resource::ResourceConfig& resources,
    int num_reducers) const {
  (void)resources;     // the default rule ignores resources entirely —
  (void)num_reducers;  // which is exactly the paper's complaint
  return smaller_gb * 1024.0 <= threshold_mb_
             ? plan::JoinImpl::kBroadcastHashJoin
             : plan::JoinImpl::kSortMergeJoin;
}

DecisionTreePolicy::DecisionTreePolicy(DecisionTree tree)
    : tree_(std::move(tree)) {}

plan::JoinImpl DecisionTreePolicy::Choose(
    double smaller_gb, const resource::ResourceConfig& resources,
    int num_reducers) const {
  std::vector<double> features(4);
  features[kFeatureDataGb] = smaller_gb;
  features[kFeatureContainerGb] = resources.container_size_gb();
  features[kFeatureConcurrentContainers] = resources.num_containers();
  features[kFeatureTotalContainers] =
      num_reducers > 0 ? static_cast<double>(num_reducers)
                       : std::max(resources.num_containers(), 1.0);
  const int label = tree_.Predict(features);
  return label == kClassBhj ? plan::JoinImpl::kBroadcastHashJoin
                            : plan::JoinImpl::kSortMergeJoin;
}

Result<DecisionTreePolicy> TrainRaqoPolicy(const sim::EngineProfile& profile,
                                           const JoinChoiceGrid& grid,
                                           const TreeParams& params) {
  RAQO_ASSIGN_OR_RETURN(Dataset data, BuildJoinChoiceDataset(profile, grid));
  RAQO_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Fit(data, params));
  return DecisionTreePolicy(std::move(tree));
}

Result<DecisionTree> BuildDefaultRuleTree(const sim::EngineProfile& profile) {
  // Two samples straddling the engine threshold reproduce the one-split
  // "default" tree of Figure 10.
  Dataset data;
  data.feature_names = {"Data Size (GB)", "Container Size (GB)",
                        "Concurrent Containers", "Total Containers"};
  data.class_names = {"BHJ", "SMJ"};
  const double threshold_gb = profile.default_bhj_threshold_mb / 1024.0;
  data.rows = {{threshold_gb * 0.5, 4.0, 10.0, 10.0},
               {threshold_gb * 1.5, 4.0, 10.0, 10.0}};
  data.labels = {kClassBhj, kClassSmj};
  return DecisionTree::Fit(data);
}

}  // namespace raqo::rules
