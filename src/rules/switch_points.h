#ifndef RAQO_RULES_SWITCH_POINTS_H_
#define RAQO_RULES_SWITCH_POINTS_H_

#include <vector>

#include "common/result.h"
#include "rules/dataset.h"
#include "sim/engine_profile.h"
#include "sim/exec_model.h"

namespace raqo::rules {

/// One resource combination for which a BHJ/SMJ switch point is computed
/// (a curve of Figure 9 is a sweep of container sizes at fixed
/// containers/reducers).
struct SwitchPointQuery {
  double container_size_gb = 3.0;
  int num_containers = 10;
  /// 0 = engine auto rule.
  int num_reducers = 0;
  /// Size of the larger join relation in GB.
  double larger_gb = 77.0;
};

/// Largest smaller-relation size (GB) at which BHJ is still at least as
/// fast as SMJ under the given resources, found by bisection over
/// [0, max_smaller_gb]. Returns 0 when BHJ never wins (e.g. it is
/// infeasible even for tiny inputs) and max_smaller_gb when it always
/// wins in the probed range.
Result<double> FindSwitchPointGb(const sim::EngineProfile& profile,
                                 const SwitchPointQuery& query,
                                 double max_smaller_gb = 12.0,
                                 double tolerance_gb = 0.01);

/// Parameters of the labeled data-resource grid behind the RAQO decision
/// trees (Figure 11): every (data size, container size, containers,
/// reducers) combination is labeled with the cheaper join implementation
/// under the simulator.
struct JoinChoiceGrid {
  std::vector<double> data_gb = {0.1, 0.25, 0.5, 1.0, 1.7,  2.5,
                                 3.4, 4.25, 5.1, 6.4, 8.0,  10.0};
  std::vector<double> container_gb = {2.0, 3.0, 4.0, 5.0, 7.0, 9.0, 11.0};
  std::vector<int> containers = {5, 10, 20, 40};
  std::vector<int> reducers = {80, 200, 540, 1000};
  double larger_gb = 77.0;
};

/// Feature order of the generated dataset (matching the features of the
/// paper's trees): Data Size (GB), Container Size (GB), Concurrent
/// Containers, Total Containers (reduce tasks).
enum JoinChoiceFeature : int {
  kFeatureDataGb = 0,
  kFeatureContainerGb = 1,
  kFeatureConcurrentContainers = 2,
  kFeatureTotalContainers = 3,
};

/// Class ids of the generated dataset.
inline constexpr int kClassBhj = 0;
inline constexpr int kClassSmj = 1;

/// Builds the labeled dataset over the grid. Points where BHJ is out of
/// memory are labeled SMJ (the only runnable choice).
Result<Dataset> BuildJoinChoiceDataset(const sim::EngineProfile& profile,
                                       const JoinChoiceGrid& grid);

}  // namespace raqo::rules

#endif  // RAQO_RULES_SWITCH_POINTS_H_
