#ifndef RAQO_RULES_DATASET_H_
#define RAQO_RULES_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace raqo::rules {

/// A labeled training set for the decision-tree learner: numeric feature
/// rows plus integer class labels.
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;

  size_t num_rows() const { return rows.size(); }
  size_t num_features() const { return feature_names.size(); }
  size_t num_classes() const { return class_names.size(); }

  /// Validates internal consistency (row widths, label range).
  Status Validate() const;
};

}  // namespace raqo::rules

#endif  // RAQO_RULES_DATASET_H_
