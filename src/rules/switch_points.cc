#include "rules/switch_points.h"

#include "catalog/table.h"
#include "plan/plan_node.h"

namespace raqo::rules {

namespace {

/// True when BHJ is feasible and at least as fast as SMJ at this point.
Result<bool> BhjWins(const sim::EngineProfile& profile,
                     const SwitchPointQuery& query, double smaller_gb) {
  sim::ExecParams params;
  params.container_size_gb = query.container_size_gb;
  params.num_containers = query.num_containers;
  params.num_reducers = query.num_reducers;

  const double small_bytes = catalog::GbToBytes(smaller_gb);
  const double large_bytes = catalog::GbToBytes(query.larger_gb);

  Result<sim::JoinRunResult> bhj =
      sim::SimulateJoin(profile, plan::JoinImpl::kBroadcastHashJoin,
                        small_bytes, large_bytes, params);
  if (!bhj.ok()) {
    if (bhj.status().IsResourceExhausted()) return false;  // OOM: SMJ wins
    return bhj.status();
  }
  RAQO_ASSIGN_OR_RETURN(
      sim::JoinRunResult smj,
      sim::SimulateJoin(profile, plan::JoinImpl::kSortMergeJoin, small_bytes,
                        large_bytes, params));
  return bhj->seconds <= smj.seconds;
}

}  // namespace

Result<double> FindSwitchPointGb(const sim::EngineProfile& profile,
                                 const SwitchPointQuery& query,
                                 double max_smaller_gb,
                                 double tolerance_gb) {
  if (max_smaller_gb <= 0.0 || tolerance_gb <= 0.0) {
    return Status::InvalidArgument("switch-point search bounds invalid");
  }
  // The win region for BHJ is a prefix [0, switch]; bisect its boundary.
  double lo = 0.0;  // BHJ assumed to win for infinitesimal inputs
  double hi = max_smaller_gb;
  RAQO_ASSIGN_OR_RETURN(bool tiny_wins,
                        BhjWins(profile, query, tolerance_gb));
  if (!tiny_wins) return 0.0;
  RAQO_ASSIGN_OR_RETURN(bool max_wins, BhjWins(profile, query, hi));
  if (max_wins) return max_smaller_gb;
  while (hi - lo > tolerance_gb) {
    const double mid = (lo + hi) / 2.0;
    RAQO_ASSIGN_OR_RETURN(bool wins, BhjWins(profile, query, mid));
    if (wins) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

Result<Dataset> BuildJoinChoiceDataset(const sim::EngineProfile& profile,
                                       const JoinChoiceGrid& grid) {
  Dataset data;
  data.feature_names = {"Data Size (GB)", "Container Size (GB)",
                        "Concurrent Containers", "Total Containers"};
  data.class_names = {"BHJ", "SMJ"};

  for (double ss : grid.data_gb) {
    for (double cs : grid.container_gb) {
      for (int nc : grid.containers) {
        for (int nr : grid.reducers) {
          SwitchPointQuery query;
          query.container_size_gb = cs;
          query.num_containers = nc;
          query.num_reducers = nr;
          query.larger_gb = grid.larger_gb;
          RAQO_ASSIGN_OR_RETURN(bool bhj_wins, BhjWins(profile, query, ss));
          data.rows.push_back({ss, cs, static_cast<double>(nc),
                               static_cast<double>(nr)});
          data.labels.push_back(bhj_wins ? kClassBhj : kClassSmj);
        }
      }
    }
  }
  return data;
}

}  // namespace raqo::rules
