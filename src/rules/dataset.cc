#include "rules/dataset.h"

namespace raqo::rules {

Status Dataset::Validate() const {
  if (feature_names.empty()) {
    return Status::InvalidArgument("dataset has no features");
  }
  if (class_names.size() < 2) {
    return Status::InvalidArgument("dataset needs at least two classes");
  }
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("dataset rows/labels size mismatch");
  }
  for (const auto& row : rows) {
    if (row.size() != feature_names.size()) {
      return Status::InvalidArgument("dataset has ragged feature rows");
    }
  }
  for (int label : labels) {
    if (label < 0 || static_cast<size_t>(label) >= class_names.size()) {
      return Status::OutOfRange("dataset label out of class range");
    }
  }
  return Status::OK();
}

}  // namespace raqo::rules
