#ifndef RAQO_RULES_RULE_BASED_H_
#define RAQO_RULES_RULE_BASED_H_

#include <memory>

#include "common/result.h"
#include "plan/plan_node.h"
#include "resource/resource_config.h"
#include "rules/decision_tree.h"
#include "rules/switch_points.h"
#include "sim/engine_profile.h"

namespace raqo::rules {

/// A policy for choosing a join operator implementation given the data
/// characteristics and the resources the query will run with. This is the
/// pluggable decision the paper replaces inside Hive/Spark (Section V-B).
class JoinImplPolicy {
 public:
  virtual ~JoinImplPolicy() = default;

  /// Chooses the implementation for one join. `smaller_gb` is the build
  /// (smaller) relation size; `resources` are the resources available for
  /// the query (from the user or the resource manager); `num_reducers`
  /// uses the engine default when zero.
  virtual plan::JoinImpl Choose(double smaller_gb,
                                const resource::ResourceConfig& resources,
                                int num_reducers) const = 0;

  /// Human-readable policy name.
  virtual const char* name() const = 0;
};

/// The *default* Hive/Spark rule: broadcast when the small relation is
/// below a fixed threshold (10 MB by default), regardless of resources.
/// This is the single-split "default decision tree" of Figure 10.
class DefaultRulePolicy : public JoinImplPolicy {
 public:
  explicit DefaultRulePolicy(double threshold_mb = 10.0)
      : threshold_mb_(threshold_mb) {}

  plan::JoinImpl Choose(double smaller_gb,
                        const resource::ResourceConfig& resources,
                        int num_reducers) const override;
  const char* name() const override { return "default-rule"; }

  double threshold_mb() const { return threshold_mb_; }

 private:
  double threshold_mb_;
};

/// Rule-based RAQO (Section V): a decision tree learned over the
/// data-resource space, traversed with the current cluster conditions /
/// per-query resources to pick the join implementation.
class DecisionTreePolicy : public JoinImplPolicy {
 public:
  /// The tree must have been fitted on a dataset with the feature order
  /// of BuildJoinChoiceDataset.
  explicit DecisionTreePolicy(DecisionTree tree);

  plan::JoinImpl Choose(double smaller_gb,
                        const resource::ResourceConfig& resources,
                        int num_reducers) const override;
  const char* name() const override { return "raqo-decision-tree"; }

  const DecisionTree& tree() const { return tree_; }

 private:
  DecisionTree tree_;
};

/// Trains the rule-based RAQO policy for an engine by labeling the
/// data-resource grid with the simulator and fitting a CART tree.
Result<DecisionTreePolicy> TrainRaqoPolicy(
    const sim::EngineProfile& profile,
    const JoinChoiceGrid& grid = JoinChoiceGrid(),
    const TreeParams& params = TreeParams());

/// Builds the engine's default decision tree (Figure 10): a single split
/// on data size at the engine's broadcast threshold. Rendered from an
/// actual fitted tree so it prints in the same format as the RAQO trees.
Result<DecisionTree> BuildDefaultRuleTree(const sim::EngineProfile& profile);

}  // namespace raqo::rules

#endif  // RAQO_RULES_RULE_BASED_H_
