#include "server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raqo::server {

namespace {

// epoll user-data slots for the two non-connection descriptors. Real
// connection ids start at (1 << 40) + 1, so they can never collide.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr int kEpollWaitMs = 50;

double ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Metric-name prefix for one tenant's server.tenant.* series. Tenant
// strings arrive from untrusted sockets, so anything outside a safe
// identifier alphabet is folded to '_' and the key is length-capped.
std::string TenantMetricPrefix(const std::string& tenant) {
  std::string key;
  key.reserve(tenant.size());
  for (char c : tenant) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    key.push_back(safe ? c : '_');
  }
  if (key.size() > 64) key.resize(64);
  return "server.tenant." + key + ".";
}

int DefaultReactors() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(4, std::max(1, static_cast<int>(hw)));
}

}  // namespace

PlanningServer::PlanningServer(const PlanningService* service,
                               ServerOptions options)
    : service_(service), options_(std::move(options)) {
  RAQO_CHECK(service != nullptr);
  if (options_.num_reactors <= 0) options_.num_reactors = DefaultReactors();
  options_.num_workers = std::max(1, options_.num_workers);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
}

PlanningServer::~PlanningServer() {
  Shutdown();
  Wait();
}

Status PlanningServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  // Durable cache: recover before the first socket is bound, so by the
  // time a client can connect the shared cache already holds its
  // pre-restart state (the warm hit rate is there from request one).
  if (!options_.persist_dir.empty() && service_->has_shared_cache()) {
    persist::PersistOptions popts;
    popts.dir = options_.persist_dir;
    popts.fsync_policy = options_.persist_fsync;
    popts.group_commit_bytes = options_.persist_group_commit_bytes;
    popts.compact_threshold_bytes = options_.persist_compact_threshold_bytes;
    RAQO_ASSIGN_OR_RETURN(
        persistence_,
        persist::CachePersistence::Open(popts, service_->shared_cache()));
  }

  // Listener plan. With several reactors, try one SO_REUSEPORT listener
  // per reactor so the kernel spreads incoming connections across them.
  // If the kernel refuses (or any shard fails to bind), fall back to a
  // single plain listener on reactor 0, which then hands accepted fds
  // round-robin to its peers. One reactor always uses the plain listener
  // — identical to the single-epoll design this replaces.
  std::vector<net::UniqueFd> listeners;
  reuseport_ = false;
  if (options_.num_reactors > 1) {
    Result<net::UniqueFd> first =
        net::ListenTcp(options_.host, options_.port, 128,
                       /*reuse_port=*/true);
    if (first.ok()) {
      Result<uint16_t> port = net::LocalPort(first->get());
      if (port.ok()) {
        std::vector<net::UniqueFd> shards;
        shards.push_back(std::move(*first));
        bool all_ok = true;
        for (int i = 1; i < options_.num_reactors; ++i) {
          Result<net::UniqueFd> shard = net::ListenTcp(
              options_.host, *port, 128, /*reuse_port=*/true);
          if (!shard.ok()) {
            all_ok = false;
            break;
          }
          shards.push_back(std::move(*shard));
        }
        if (all_ok) {
          listeners = std::move(shards);
          port_ = *port;
          reuseport_ = true;
        }
      }
    }
  }
  if (!reuseport_) {
    RAQO_ASSIGN_OR_RETURN(
        net::UniqueFd listen,
        net::ListenTcp(options_.host, options_.port, 128));
    RAQO_ASSIGN_OR_RETURN(port_, net::LocalPort(listen.get()));
    listeners.push_back(std::move(listen));
  }

  reactors_.reserve(options_.num_reactors);
  for (int i = 0; i < options_.num_reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    const int epfd = epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
      return Status::Internal(
          StrPrintf("epoll_create1: %s", strerror(errno)));
    }
    r->epoll_fd.reset(epfd);
    const int evfd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (evfd < 0) {
      return Status::Internal(StrPrintf("eventfd: %s", strerror(errno)));
    }
    r->wake_fd.reset(evfd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (epoll_ctl(r->epoll_fd.get(), EPOLL_CTL_ADD, r->wake_fd.get(),
                  &ev) != 0) {
      return Status::Internal(
          StrPrintf("epoll_ctl(eventfd): %s", strerror(errno)));
    }
    if (static_cast<size_t>(i) < listeners.size()) {
      r->listen_fd = std::move(listeners[i]);
      RAQO_RETURN_IF_ERROR(net::SetNonBlocking(r->listen_fd.get()));
      ev.events = EPOLLIN;
      ev.data.u64 = kListenTag;
      if (epoll_ctl(r->epoll_fd.get(), EPOLL_CTL_ADD, r->listen_fd.get(),
                    &ev) != 0) {
        return Status::Internal(
            StrPrintf("epoll_ctl(listen): %s", strerror(errno)));
      }
    }
    reactors_.push_back(std::move(r));
  }

  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
  for (auto& r : reactors_) {
    Reactor* reactor = r.get();
    r->thread = std::thread([this, reactor] { ReactorLoop(*reactor); });
  }
  threads_started_.store(true, std::memory_order_release);
  return Status::OK();
}

void PlanningServer::Shutdown() {
  // Async-signal-safe: one atomic store and one write(2) per reactor.
  // Each reactor notices the flag on its next wake-up and runs its share
  // of the drain.
  draining_.store(true, std::memory_order_release);
  for (const auto& r : reactors_) {
    const int fd = r->wake_fd.get();
    if (fd >= 0) {
      const uint64_t one = 1;
      ssize_t ignored = write(fd, &one, sizeof(one));
      (void)ignored;
    }
  }
}

void PlanningServer::WakeReactor(Reactor& r) {
  const int fd = r.wake_fd.get();
  if (fd >= 0) {
    const uint64_t one = 1;
    ssize_t ignored = write(fd, &one, sizeof(one));
    (void)ignored;
  }
}

void PlanningServer::Wait() {
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  // The reactors drained (every admitted request was answered before
  // they exited, unless the drain timed out); now the worker queue is
  // quiet, so stop the pool. This also covers Start() paths that created
  // workers but failed before spawning threads.
  if (workers_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      workers_stop_.store(true, std::memory_order_release);
    }
    queue_cv_.notify_all();
    workers_.reset();  // joins the pool
  }
  // Workers are gone: no insert can race the final journal sync. The
  // object stays alive (recovery stats remain readable); Close() is
  // idempotent, so the destructor's second call is a no-op.
  if (persistence_ != nullptr) {
    const Status closed = persistence_->Close();
    if (!closed.ok()) {
      std::cerr << "raqo_server: cache journal close failed: "
                << closed.ToString() << "\n";
    }
  }
  if (threads_started_.load(std::memory_order_acquire) &&
      !torn_down_.exchange(true)) {
    FlushTelemetry();
  }
}

ServerStats PlanningServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out.queue_depth = static_cast<int64_t>(total_queued_);
  }
  out.requests_executing = executing_.load(std::memory_order_relaxed);
  out.open_connections = open_conns_.load(std::memory_order_relaxed);
  return out;
}

std::map<std::string, TenantStats> PlanningServer::tenant_stats() const {
  std::map<std::string, TenantStats> out;
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (const auto& [name, state] : tenants_) {
    TenantStats stats = state.stats;
    stats.inflight = state.inflight;
    stats.queued = static_cast<int64_t>(state.queue.size());
    stats.dollars_spent = state.dollars_spent;
    out.emplace(name, stats);
  }
  return out;
}

std::vector<ReactorStats> PlanningServer::reactor_stats() const {
  std::vector<ReactorStats> out;
  out.reserve(reactors_.size());
  for (const auto& r : reactors_) {
    ReactorStats stats;
    stats.index = r->index;
    stats.connections_accepted =
        r->accepted.load(std::memory_order_relaxed);
    stats.open_connections = r->open.load(std::memory_order_relaxed);
    out.push_back(stats);
  }
  return out;
}

void PlanningServer::Bump(int64_t ServerStats::*field, int64_t delta) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += delta;
}

// ---------------------------------------------------------------------------
// Reactor threads
// ---------------------------------------------------------------------------

void PlanningServer::ReactorLoop(Reactor& r) {
  bool drain_started = false;
  std::chrono::steady_clock::time_point drain_deadline;
  std::vector<epoll_event> events(64);

  for (;;) {
    if (!drain_started && draining()) {
      drain_started = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
      // Stop accepting: deregister and close this reactor's listener so
      // new connections are refused by the kernel from here on.
      if (r.listen_fd.valid()) {
        epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, r.listen_fd.get(),
                  nullptr);
        r.listen_fd.reset();
      }
    }

    if (drain_started) {
      // fds handed over before the drain began are closed, not adopted.
      AdoptHandoffConnections(r);
      // Retire connections that are fully answered and flushed.
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : r.conns) {
        if (conn->outstanding == 0 &&
            conn->write_off >= conn->write_buf.size()) {
          idle.push_back(id);
        }
      }
      for (uint64_t id : idle) CloseConnection(r, id);
      if (r.outstanding == 0 && r.conns.empty()) break;
      if (std::chrono::steady_clock::now() >= drain_deadline) {
        // Hard cap: drop whatever is left so Shutdown always terminates.
        std::vector<uint64_t> rest;
        rest.reserve(r.conns.size());
        for (const auto& [id, conn] : r.conns) rest.push_back(id);
        for (uint64_t id : rest) CloseConnection(r, id);
        break;
      }
    }

    int n = epoll_wait(r.epoll_fd.get(), events.data(),
                       static_cast<int>(events.size()), kEpollWaitMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "raqo_server: epoll_wait: " << strerror(errno) << "\n";
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNewConnections(r);
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        ssize_t ignored = read(r.wake_fd.get(), &drained, sizeof(drained));
        (void)ignored;
        continue;  // inboxes are drained below, every iteration
      }
      // A connection may have been closed by an earlier event in this
      // same batch; look it up fresh.
      auto it = r.conns.find(tag);
      if (it == r.conns.end()) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(r, tag);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(r, it->second.get());
        it = r.conns.find(tag);
        if (it == r.conns.end()) continue;
      }
      if (events[i].events & EPOLLOUT) {
        HandleWritable(r, it->second.get());
      }
    }
    AdoptHandoffConnections(r);
    DeliverCompletions(r);
    // One flush per tick: responses buffered by the delivery (or by
    // admission rejections) above go out coalesced, one send per
    // connection instead of one per frame.
    FlushPendingWrites(r);
  }

  // This reactor is done; release whatever it still owns. (Leftovers
  // exist only when the drain timed out.)
  const int64_t leftover = static_cast<int64_t>(r.conns.size());
  if (leftover > 0) {
    open_conns_.fetch_sub(leftover, std::memory_order_relaxed);
    r.open.fetch_sub(leftover, std::memory_order_relaxed);
  }
  r.conns.clear();
  std::vector<int> orphans;
  {
    std::lock_guard<std::mutex> lock(r.handoff_mu);
    orphans.swap(r.handoff_fds);
  }
  for (int fd : orphans) {
    ::close(fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void PlanningServer::AcceptNewConnections(Reactor& r) {
  for (;;) {
    int fd = accept4(r.listen_fd.get(), nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      std::cerr << "raqo_server: accept4: " << strerror(errno) << "\n";
      return;
    }
    net::UniqueFd accepted(fd);
    if (draining()) continue;  // closing the fd is the whole answer
    // The connection limit spans all reactors, enforced on one atomic:
    // claim a slot first, release it if that oversubscribed. A burst
    // landing on several reactors at once can overshoot transiently by
    // at most num_reactors - 1.
    if (open_conns_.fetch_add(1, std::memory_order_acq_rel) >=
        static_cast<int64_t>(options_.max_connections)) {
      open_conns_.fetch_sub(1, std::memory_order_acq_rel);
      // Best effort: tell the client why before closing. The socket is
      // fresh, so a single non-blocking send almost always fits. This
      // rejection predates any request, so (unlike the admission-path
      // rejections) there is no request id to echo.
      const std::string frame = EncodeFrame(SerializePlanResponse(
          ErrorResponse(kWireUnavailable,
                        StrPrintf("connection limit (%zu) reached",
                                  options_.max_connections))));
      // Count before the frame leaves: a client that has read the
      // rejection must observe the bumped counter.
      Bump(&ServerStats::connections_rejected);
      ssize_t ignored = net::Send(fd, frame.data(), frame.size(),
                                  MSG_NOSIGNAL | MSG_DONTWAIT);
      (void)ignored;
      if (obs::MetricsOn()) {
        static obs::Counter* rejected =
            obs::DefaultMetrics().GetCounter("server.connections.rejected");
        rejected->Add();
      }
      continue;
    }
    net::SetTcpNoDelay(fd);  // request/response traffic; best effort
    if (reuseport_ || reactors_.size() == 1) {
      RegisterConnection(r, std::move(accepted));
      continue;
    }
    // Fallback sharding: this reactor is the lone acceptor; deal the
    // accepted fd round-robin across all reactors (itself included).
    Reactor& target = *reactors_[next_handoff_++ % reactors_.size()];
    if (&target == &r) {
      RegisterConnection(r, std::move(accepted));
    } else {
      {
        std::lock_guard<std::mutex> lock(target.handoff_mu);
        target.handoff_fds.push_back(accepted.release());
      }
      WakeReactor(target);
    }
  }
}

void PlanningServer::AdoptHandoffConnections(Reactor& r) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(r.handoff_mu);
    if (r.handoff_fds.empty()) return;
    fds.swap(r.handoff_fds);
  }
  for (int fd : fds) {
    net::UniqueFd owned(fd);
    if (draining()) {
      open_conns_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // closing the fd is the whole answer
    }
    RegisterConnection(r, std::move(owned));
  }
}

void PlanningServer::RegisterConnection(Reactor& r, net::UniqueFd fd) {
  auto conn = std::make_unique<Connection>();
  // Ids encode the owning reactor so they stay unique across reactors
  // without shared state; +1 keeps them clear of the epoll tags.
  conn->id = (static_cast<uint64_t>(r.index + 1) << 40) | ++r.next_conn_seq;
  conn->reactor = r.index;
  conn->fd = std::move(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->id;
  if (epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev) != 0) {
    std::cerr << "raqo_server: epoll_ctl(conn): " << strerror(errno) << "\n";
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  r.conns.emplace(conn->id, std::move(conn));
  r.open.fetch_add(1, std::memory_order_relaxed);
  r.accepted.fetch_add(1, std::memory_order_relaxed);
  Bump(&ServerStats::connections_accepted);
  if (obs::MetricsOn()) {
    static obs::Counter* accepts =
        obs::DefaultMetrics().GetCounter("server.accept");
    static obs::Gauge* open =
        obs::DefaultMetrics().GetGauge("server.connections");
    accepts->Add();
    open->Set(
        static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  }
}

void PlanningServer::HandleReadable(Reactor& r, Connection* conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = net::Recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->read_buf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(r, conn->id);
    return;
  }

  const uint64_t id = conn->id;
  ExtractFrames(r, conn);
  // ExtractFrames may have destroyed the connection (oversized frame,
  // write-buffer overflow); re-fetch by id rather than touching the
  // possibly-dangling pointer.
  auto it = r.conns.find(id);
  if (it == r.conns.end()) return;
  conn = it->second.get();

  if (conn->peer_closed && conn->outstanding == 0 &&
      conn->write_off >= conn->write_buf.size() && !conn->flush_pending) {
    CloseConnection(r, conn->id);
  }
}

void PlanningServer::ExtractFrames(Reactor& r, Connection* conn) {
  size_t consumed = 0;
  const uint64_t conn_id = conn->id;
  for (;;) {
    std::string_view rest(conn->read_buf);
    rest.remove_prefix(consumed);
    std::string_view payload;
    size_t frame_size = 0;
    FrameDecode decode = TryDecodeFrame(rest, options_.max_frame_bytes,
                                        &payload, &frame_size);
    if (decode == FrameDecode::kNeedMore) break;
    if (decode == FrameDecode::kTooLarge) {
      Bump(&ServerStats::protocol_errors);
      conn->close_after_flush = true;
      conn->read_buf.clear();
      // May close the connection; conn must not be touched after.
      QueueResponse(r, conn,
                    ErrorResponse(kWireInvalidArgument,
                                  StrPrintf("frame exceeds %zu-byte limit",
                                            options_.max_frame_bytes)));
      return;
    }
    // AdmitOrReject may append rejections to write_buf but never touches
    // read_buf, so the consumed/rest bookkeeping stays valid.
    AdmitOrReject(r, conn, std::string(payload));
    consumed += frame_size;
    if (r.conns.find(conn_id) == r.conns.end()) return;  // closed
  }
  if (consumed > 0) conn->read_buf.erase(0, consumed);
}

PlanningServer::TenantState* PlanningServer::FindOrCreateTenant(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;
  if (tenants_.size() >= options_.max_tenants) return nullptr;
  TenantState& state = tenants_[tenant];
  state.name = tenant;
  auto quota = options_.tenant_quotas.find(tenant);
  state.quota = quota != options_.tenant_quotas.end()
                    ? quota->second
                    : options_.default_tenant_quota;
  if (!tenant.empty()) {
    // Registered once per tenant; the registry keeps the objects alive,
    // so these pointers stay valid for the server's lifetime. Anonymous
    // traffic reports only through the global server.* series.
    const std::string prefix = TenantMetricPrefix(tenant);
    obs::MetricsRegistry& metrics = obs::DefaultMetrics();
    state.admitted_counter = metrics.GetCounter(prefix + "admitted");
    state.rejected_counter = metrics.GetCounter(prefix + "rejected");
    state.queue_depth_gauge = metrics.GetGauge(prefix + "queue_depth");
    state.inflight_gauge = metrics.GetGauge(prefix + "inflight");
    state.dollars_gauge = metrics.GetGauge(prefix + "dollars_spent");
  }
  return &state;
}

void PlanningServer::RejectRequest(Reactor& r, Connection* conn,
                                   const char* wire_status,
                                   std::string message, std::string id,
                                   int64_t ServerStats::*stat_field,
                                   const char* counter_name) {
  Bump(stat_field);
  if (counter_name != nullptr && obs::MetricsOn()) {
    obs::DefaultMetrics().GetCounter(counter_name)->Add();
  }
  // May close the connection; conn must not be touched after.
  QueueResponse(r, conn, ErrorResponse(wire_status, std::move(message),
                                       std::move(id)));
}

void PlanningServer::AdmitOrReject(Reactor& r, Connection* conn,
                                   std::string payload) {
  // The id is peeked (not parsed) so every admission-path rejection can
  // tell a pipelining client which request was refused.
  std::string id = PeekTopLevelString(payload, "id");
  if (draining()) {
    RejectRequest(r, conn, kWireUnavailable, "server is draining",
                  std::move(id), &ServerStats::rejected_draining, nullptr);
    return;
  }
  std::string tenant = PeekTopLevelString(payload, "tenant");

  const char* reject_status = nullptr;
  std::string reject_message;
  int64_t ServerStats::*reject_stat = nullptr;
  const char* reject_counter = nullptr;
  {
    // The one lock shared across reactors: the admission decision.
    // Everything else on this path is reactor-local.
    std::lock_guard<std::mutex> lock(queue_mu_);
    TenantState* state = FindOrCreateTenant(tenant);
    if (state == nullptr) {
      reject_status = kWireResourceExhausted;
      reject_message = StrPrintf("tenant table full (%zu tenants tracked)",
                                 options_.max_tenants);
      reject_stat = &ServerStats::rejected_tenant_table_full;
      reject_counter = "server.rejected.tenant_table_full";
    } else if (state->quota.max_inflight > 0 &&
               state->inflight >= state->quota.max_inflight) {
      state->stats.rejected_inflight++;
      reject_status = kWireResourceExhausted;
      reject_message = StrPrintf(
          "tenant '%s' is at its in-flight cap (%lld requests)",
          tenant.c_str(), static_cast<long long>(state->quota.max_inflight));
      reject_stat = &ServerStats::rejected_tenant_inflight;
      reject_counter = "server.rejected.tenant_inflight";
    } else if (state->quota.max_dollars > 0.0 &&
               state->dollars_spent >= state->quota.max_dollars) {
      state->stats.rejected_budget++;
      reject_status = kWireResourceExhausted;
      reject_message = StrPrintf(
          "tenant '%s' exhausted its $%.4f budget ($%.4f spent)",
          tenant.c_str(), state->quota.max_dollars, state->dollars_spent);
      reject_stat = &ServerStats::rejected_tenant_budget;
      reject_counter = "server.rejected.tenant_budget";
    } else if (state->queue.size() >= options_.max_queue) {
      state->stats.rejected_queue_full++;
      reject_status = kWireResourceExhausted;
      reject_message = StrPrintf(
          "admission queue full (%zu pending for tenant '%s')",
          options_.max_queue, tenant.c_str());
      reject_stat = &ServerStats::rejected_queue_full;
      reject_counter = "server.rejected.queue_full";
    } else {
      PendingRequest pending;
      pending.conn_id = conn->id;
      pending.reactor = r.index;
      pending.id = std::move(id);
      pending.tenant = tenant;
      pending.payload = std::move(payload);
      pending.admitted_at = std::chrono::steady_clock::now();
      state->queue.push_back(std::move(pending));
      ++total_queued_;
      if (!state->in_ready) {
        ready_tenants_.push_back(state);
        state->in_ready = true;
      }
      state->inflight++;
      state->stats.admitted++;
      // Gauges are written inside the critical section so a stale depth
      // can never overwrite a newer value set by WorkerLoop.
      if (obs::MetricsOn()) {
        static obs::Gauge* queue_depth =
            obs::DefaultMetrics().GetGauge("server.queue_depth");
        queue_depth->Set(static_cast<double>(total_queued_));
        if (state->admitted_counter != nullptr) {
          state->admitted_counter->Add();
          state->queue_depth_gauge->Set(
              static_cast<double>(state->queue.size()));
          state->inflight_gauge->Set(static_cast<double>(state->inflight));
        }
      }
    }
    if (reject_counter != nullptr && state != nullptr &&
        state->rejected_counter != nullptr && obs::MetricsOn()) {
      state->rejected_counter->Add();
    }
  }
  if (reject_status != nullptr) {
    RejectRequest(r, conn, reject_status, std::move(reject_message),
                  std::move(id), reject_stat, reject_counter);
    return;
  }
  conn->outstanding++;
  r.outstanding++;
  Bump(&ServerStats::requests_admitted);
  queue_cv_.notify_one();
}

void PlanningServer::SettleTenant(const std::string& tenant, bool ok,
                                  double dollars) {
  std::lock_guard<std::mutex> lock(queue_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  state.inflight--;
  if (ok) {
    state.stats.responses_ok++;
    state.dollars_spent += dollars;
  }
  if (obs::MetricsOn() && state.inflight_gauge != nullptr) {
    state.inflight_gauge->Set(static_cast<double>(state.inflight));
    state.dollars_gauge->Set(state.dollars_spent);
  }
}

void PlanningServer::QueueResponse(Reactor& r, Connection* conn,
                                   const PlanResponse& response) {
  SendRawResponse(r, conn, SerializePlanResponse(response));
}

void PlanningServer::BumpResponsesDropped() {
  Bump(&ServerStats::responses_dropped);
  if (obs::MetricsOn()) {
    static obs::Counter* dropped =
        obs::DefaultMetrics().GetCounter("server.responses.dropped");
    dropped->Add();
  }
}

void PlanningServer::SendRawResponse(Reactor& r, Connection* conn,
                                     std::string payload) {
  const size_t buffered = conn->write_buf.size() - conn->write_off;
  if (buffered + kFrameHeaderBytes + payload.size() >
      options_.max_write_buffer_bytes) {
    // The client is not reading its responses; buffering more would let
    // one slow reader hold arbitrary memory. The response is dropped,
    // not sent — count it as such.
    std::cerr << "raqo_server: dropping connection " << conn->id
              << ": write buffer over " << options_.max_write_buffer_bytes
              << " bytes\n";
    BumpResponsesDropped();
    CloseConnection(r, conn->id);
    return;
  }
  // Reclaim the consumed prefix before growing.
  if (conn->write_off > 0) {
    conn->write_buf.erase(0, conn->write_off);
    conn->write_off = 0;
  }
  conn->write_buf += EncodeFrame(payload);
  // Counted only once the frame is actually buffered for delivery;
  // drops (write-buffer cap, vanished connection) land in
  // responses_dropped instead.
  Bump(&ServerStats::responses_sent);
  // Batched: the frame goes out in this tick's flush, coalesced with any
  // other responses buffered for the same connection.
  if (!conn->flush_pending) {
    conn->flush_pending = true;
    r.flush_queue.push_back(conn->id);
  }
}

void PlanningServer::FlushPendingWrites(Reactor& r) {
  if (r.flush_queue.empty()) return;
  std::vector<uint64_t> pending;
  pending.swap(r.flush_queue);
  for (uint64_t id : pending) {
    auto it = r.conns.find(id);
    if (it == r.conns.end()) continue;  // closed since it was queued
    Connection* conn = it->second.get();
    conn->flush_pending = false;
    HandleWritable(r, conn);  // may close; conn must not be touched after
  }
}

void PlanningServer::HandleWritable(Reactor& r, Connection* conn) {
  while (conn->write_off < conn->write_buf.size()) {
    ssize_t n =
        net::Send(conn->fd.get(), conn->write_buf.data() + conn->write_off,
                  conn->write_buf.size() - conn->write_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateWriteInterest(r, conn);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(r, conn->id);
    return;
  }
  conn->write_buf.clear();
  conn->write_off = 0;
  if (conn->close_after_flush ||
      (conn->peer_closed && conn->outstanding == 0)) {
    CloseConnection(r, conn->id);
    return;
  }
  UpdateWriteInterest(r, conn);
}

void PlanningServer::UpdateWriteInterest(Reactor& r, Connection* conn) {
  const bool want_out = conn->write_off < conn->write_buf.size();
  if (want_out == conn->registered_out) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0) {
    conn->registered_out = want_out;
  }
}

void PlanningServer::DeliverCompletions(Reactor& r) {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(r.completions_mu);
    done.swap(r.completions);
  }
  for (Completion& completion : done) {
    // The admitted request is answered exactly here, even when its
    // connection is already gone (the response is then dropped).
    r.outstanding--;
    auto it = r.conns.find(completion.conn_id);
    if (it == r.conns.end()) {
      BumpResponsesDropped();
      continue;
    }
    Connection* conn = it->second.get();
    conn->outstanding--;
    SendRawResponse(r, conn, std::move(completion.payload));
  }
}

void PlanningServer::CloseConnection(Reactor& r, uint64_t conn_id) {
  auto it = r.conns.find(conn_id);
  if (it == r.conns.end()) return;
  epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, it->second->fd.get(), nullptr);
  r.conns.erase(it);  // UniqueFd closes the socket
  r.open.fetch_sub(1, std::memory_order_relaxed);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  if (obs::MetricsOn()) {
    static obs::Gauge* open =
        obs::DefaultMetrics().GetGauge("server.connections");
    open->Set(
        static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  }
}

void PlanningServer::FlushTelemetry() {
  if (options_.telemetry_dir.empty()) return;
  const std::string metrics_path = options_.telemetry_dir + "/metrics.json";
  Status status = WriteTextFile(
      metrics_path, obs::MetricsToJson(obs::DefaultMetrics().Snapshot()));
  if (!status.ok()) {
    std::cerr << "raqo_server: telemetry flush failed: "
              << status.ToString() << "\n";
  }
  const std::string trace_path = options_.telemetry_dir + "/trace.json";
  status = WriteTextFile(
      trace_path,
      obs::SpansToChromeTraceJson(obs::DefaultTracer().Snapshot()));
  if (!status.ok()) {
    std::cerr << "raqo_server: telemetry flush failed: "
              << status.ToString() << "\n";
  }
}

// ---------------------------------------------------------------------------
// Worker threads (run on the PR-1 ThreadPool)
// ---------------------------------------------------------------------------

void PlanningServer::PostCompletion(int reactor, uint64_t conn_id,
                                    std::string payload) {
  Reactor& r = *reactors_[static_cast<size_t>(reactor)];
  {
    std::lock_guard<std::mutex> lock(r.completions_mu);
    r.completions.push_back(Completion{conn_id, std::move(payload)});
  }
  WakeReactor(r);
}

void PlanningServer::WorkerLoop() {
  for (;;) {
    PendingRequest pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return workers_stop_.load(std::memory_order_acquire) ||
               !ready_tenants_.empty();
      });
      if (workers_stop_.load(std::memory_order_acquire)) return;
      // Fair dequeue: take one request from the tenant at the front of
      // the ready ring, then rotate it to the back so a tenant with a
      // deep backlog cannot starve the others.
      TenantState* state = ready_tenants_.front();
      ready_tenants_.pop_front();
      pending = std::move(state->queue.front());
      state->queue.pop_front();
      --total_queued_;
      if (!state->queue.empty()) {
        ready_tenants_.push_back(state);
      } else {
        state->in_ready = false;
      }
      if (obs::MetricsOn()) {
        static obs::Gauge* queue_depth =
            obs::DefaultMetrics().GetGauge("server.queue_depth");
        queue_depth->Set(static_cast<double>(total_queued_));
        if (state->queue_depth_gauge != nullptr) {
          state->queue_depth_gauge->Set(
              static_cast<double>(state->queue.size()));
        }
      }
    }

    executing_.fetch_add(1, std::memory_order_acq_rel);
    const double queue_wait_us = ElapsedUs(pending.admitted_at);

    obs::Span span;
    if (obs::TracingOn()) {
      span = obs::DefaultTracer().StartSpan("server.request");
      span.SetAttr("queue_wait_us", queue_wait_us);
    }
    if (obs::MetricsOn()) {
      static obs::Counter* requests =
          obs::DefaultMetrics().GetCounter("server.requests");
      static obs::Histogram* wait_hist =
          obs::DefaultMetrics().GetHistogram("server.queue_wait_us");
      requests->Add();
      wait_hist->Record(queue_wait_us);
    }

    PlanResponse response;
    Result<PlanRequest> request = ParsePlanRequest(pending.payload);
    if (!request.ok()) {
      Bump(&ServerStats::protocol_errors);
      response = ErrorResponse(kWireInvalidArgument,
                               request.status().message(), pending.id);
    } else {
      const int64_t deadline_ms = request->deadline_ms > 0
                                      ? request->deadline_ms
                                      : options_.default_deadline_ms;
      if (deadline_ms > 0 && queue_wait_us > 1000.0 * deadline_ms) {
        // Cancelled while queued: the planner never runs.
        Bump(&ServerStats::rejected_deadline);
        if (obs::MetricsOn()) {
          static obs::Counter* rejected =
              obs::DefaultMetrics().GetCounter("server.rejected.deadline");
          rejected->Add();
        }
        response = ErrorResponse(
            kWireDeadlineExceeded,
            StrPrintf("deadline of %lld ms expired after %.0f us in queue",
                      static_cast<long long>(deadline_ms), queue_wait_us),
            request->id);
      } else {
        if (options_.enable_test_hooks && request->debug_sleep_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(request->debug_sleep_ms));
        }
        response = service_->Handle(*request);
      }
    }
    response.queue_wait_us = queue_wait_us;

    const double total_us = ElapsedUs(pending.admitted_at);
    if (span.recording()) {
      span.SetAttr("id", response.id);
      span.SetAttr("status", response.status);
      span.End();
    }
    if (obs::MetricsOn()) {
      static obs::Histogram* request_hist =
          obs::DefaultMetrics().GetHistogram("server.request_us");
      static obs::Counter* ok_responses =
          obs::DefaultMetrics().GetCounter("server.responses.ok");
      request_hist->Record(total_us);
      if (response.ok()) ok_responses->Add();
    }
    executing_.fetch_sub(1, std::memory_order_acq_rel);
    // Charged against the *peeked* tenant (the one admission accounted
    // for), so in-flight and dollar bookkeeping stay self-consistent
    // even if the full parse disagrees with the cheap scan.
    SettleTenant(pending.tenant, response.ok(), response.cost.dollars);
    PostCompletion(pending.reactor, pending.conn_id,
                   SerializePlanResponse(response));
  }
}

// ---------------------------------------------------------------------------
// Signal wiring
// ---------------------------------------------------------------------------

namespace {

std::atomic<PlanningServer*> g_signal_server{nullptr};

void OnShutdownSignal(int /*signum*/) {
  PlanningServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->Shutdown();
}

}  // namespace

void InstallShutdownSignalHandlers(PlanningServer* server) {
  g_signal_server.store(server, std::memory_order_release);
  if (server != nullptr) {
    std::signal(SIGTERM, OnShutdownSignal);
    std::signal(SIGINT, OnShutdownSignal);
  } else {
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
  }
}

}  // namespace raqo::server
