#include "server/protocol.h"

#include <cmath>
#include <utility>

#include "common/json.h"
#include "common/net.h"
#include "common/strings.h"
#include "persist/cache_persist.h"

namespace raqo::server {

namespace {

std::string Quoted(std::string_view s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += '"';
  return out;
}

std::string ResourceConfigJson(const resource::ResourceConfig& config) {
  return StrPrintf("{\"container_size_gb\": %s, \"num_containers\": %s}",
                   JsonNumber(config.container_size_gb()).c_str(),
                   JsonNumber(config.num_containers()).c_str());
}

Result<resource::ResourceConfig> ParseResourceConfig(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("resource configuration must be an "
                                   "object");
  }
  const JsonValue* size = v.FindNumber("container_size_gb");
  const JsonValue* count = v.FindNumber("num_containers");
  if (size == nullptr || count == nullptr) {
    return Status::InvalidArgument(
        "resource configuration needs numeric container_size_gb and "
        "num_containers");
  }
  return resource::ResourceConfig(size->number_value(),
                                  count->number_value());
}

// 2^63 as a double; doubles at or beyond this magnitude cannot be cast to
// int64_t without undefined behavior ([conv.fpint]).
constexpr double kInt64Bound = 9223372036854775808.0;

int64_t IntMember(const JsonValue& object, const char* key,
                  int64_t fallback) {
  const JsonValue* v = object.FindNumber(key);
  if (v == nullptr) return fallback;
  const double d = v->number_value();
  if (!std::isfinite(d) || d < -kInt64Bound || d >= kInt64Bound) {
    return fallback;
  }
  return static_cast<int64_t>(d);
}

double NumberMember(const JsonValue& object, const char* key,
                    double fallback) {
  const JsonValue* v = object.FindNumber(key);
  return v != nullptr ? v->number_value() : fallback;
}

std::string StringMember(const JsonValue& object, const char* key) {
  const JsonValue* v = object.FindString(key);
  return v != nullptr ? v->string_value() : std::string();
}

// Strict readers for request parsing: requests come from untrusted
// sockets, so a present-but-mistyped field is an error, never a silent
// default.
Status ReadString(const JsonValue& object, const char* key,
                  std::string* out) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) {
    return Status::InvalidArgument(StrPrintf("\"%s\" must be a string", key));
  }
  *out = v->string_value();
  return Status::OK();
}

Status ReadInt(const JsonValue& object, const char* key, int64_t* out) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) {
    return Status::InvalidArgument(StrPrintf("\"%s\" must be a number", key));
  }
  const double d = v->number_value();
  if (!std::isfinite(d) || d < 0.0 || d >= kInt64Bound) {
    return Status::InvalidArgument(StrPrintf(
        "\"%s\" must be a non-negative integer below 2^63", key));
  }
  *out = static_cast<int64_t>(d);
  return Status::OK();
}

// Advances *pos (pointing at an opening quote) past the end of the JSON
// string token, honoring backslash escapes. False on unterminated input.
bool SkipJsonString(std::string_view text, size_t* pos) {
  for (size_t i = *pos + 1; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;  // the escaped character can never close the string
      continue;
    }
    if (text[i] == '"') {
      *pos = i + 1;
      return true;
    }
  }
  return false;
}

// Decodes one raw string token (quotes included). The common escape-free
// case is a plain copy; tokens with escapes go through the real parser,
// which handles \uXXXX and surrogate pairs.
std::string DecodeStringToken(std::string_view token) {
  std::string_view raw = token.substr(1, token.size() - 2);
  if (raw.find('\\') == std::string_view::npos) return std::string(raw);
  Result<JsonValue> decoded = ParseJson(token);
  return decoded.ok() && decoded->is_string() ? decoded->string_value()
                                              : std::string();
}

}  // namespace

std::string PeekTopLevelString(std::string_view json, std::string_view key) {
  size_t i = 0;
  const size_t n = json.size();
  const auto skip_ws = [&] {
    while (i < n && (json[i] == ' ' || json[i] == '\t' || json[i] == '\n' ||
                     json[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= n || json[i] != '{') return std::string();
  ++i;
  int depth = 1;
  while (i < n && depth > 0) {
    const char c = json[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      ++i;
      continue;
    }
    if (c != '"') {
      ++i;
      continue;
    }
    // A string token. At depth 1 it is either an object key or a string
    // value; only a following ':' makes it a key.
    const size_t start = i;
    if (!SkipJsonString(json, &i)) return std::string();
    const size_t end = i;
    if (depth != 1) continue;
    skip_ws();
    if (i >= n || json[i] != ':') continue;
    ++i;  // consume ':'
    skip_ws();
    if (DecodeStringToken(json.substr(start, end - start)) != key) {
      continue;  // the value is skipped by the main loop
    }
    if (i >= n || json[i] != '"') return std::string();  // not a string
    const size_t value_start = i;
    if (!SkipJsonString(json, &i)) return std::string();
    return DecodeStringToken(json.substr(value_start, i - value_start));
  }
  return std::string();
}

std::string WireStatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kWireOk;
    case StatusCode::kInvalidArgument:
      return kWireInvalidArgument;
    case StatusCode::kNotFound:
      return kWireNotFound;
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return kWireFailedPrecondition;
    case StatusCode::kResourceExhausted:
      return kWireResourceExhausted;
    case StatusCode::kDeadlineExceeded:
      return kWireDeadlineExceeded;
    case StatusCode::kInternal:
      return kWireInternal;
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
  }
  return kWireInternal;
}

PlanResponse ErrorResponse(std::string wire_status, std::string message,
                           std::string id) {
  PlanResponse response;
  response.id = std::move(id);
  response.status = std::move(wire_status);
  response.error = std::move(message);
  return response;
}

namespace {

/// Renders the `entries` array of a cache message from the shared
/// per-entry serializer (the same bytes the journal stores).
std::string CacheEntriesJson(
    const std::vector<core::CacheEntryRecord>& entries) {
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ", ";
    out += persist::SerializeCacheEntry(entries[i].model, entries[i].plan);
  }
  out += "]";
  return out;
}

/// Parses the `entries` array of a cache message; the chunk cap bounds
/// allocation against hostile frames.
Status ParseCacheEntries(const JsonValue& cache,
                         std::vector<core::CacheEntryRecord>* out) {
  const JsonValue* entries = cache.Find("entries");
  if (entries == nullptr) return Status::OK();
  if (!entries->is_array()) {
    return Status::InvalidArgument("\"cache.entries\" must be an array");
  }
  if (entries->items().size() > kMaxCacheChunkEntries) {
    return Status::InvalidArgument(StrPrintf(
        "cache chunk of %zu entries exceeds the %zu-entry cap",
        entries->items().size(), kMaxCacheChunkEntries));
  }
  out->reserve(entries->items().size());
  for (const JsonValue& item : entries->items()) {
    RAQO_ASSIGN_OR_RETURN(core::CacheEntryRecord record,
                          persist::ParseCacheEntry(item));
    out->push_back(std::move(record));
  }
  return Status::OK();
}

}  // namespace

std::string SerializePlanRequest(const PlanRequest& request) {
  std::string out = "{";
  bool first = true;
  auto field = [&](const std::string& rendered) {
    if (!first) out += ", ";
    first = false;
    out += rendered;
  };
  if (!request.type.empty()) field("\"type\": " + Quoted(request.type));
  if (!request.id.empty()) field("\"id\": " + Quoted(request.id));
  if (!request.tenant.empty()) {
    field("\"tenant\": " + Quoted(request.tenant));
  }
  if (!request.sql.empty()) field("\"sql\": " + Quoted(request.sql));
  if (!request.tables.empty()) {
    std::string tables = "\"tables\": [";
    for (size_t i = 0; i < request.tables.size(); ++i) {
      if (i > 0) tables += ", ";
      tables += Quoted(request.tables[i]);
    }
    tables += "]";
    field(tables);
  }
  if (request.has_resources) {
    field("\"resources\": " + ResourceConfigJson(request.resources));
  }
  if (request.has_max_dollars) {
    field(StrPrintf("\"max_dollars\": %s",
                    JsonNumber(request.max_dollars).c_str()));
  }
  std::string knobs;
  auto knob = [&](const std::string& rendered) {
    if (!knobs.empty()) knobs += ", ";
    knobs += rendered;
  };
  if (!request.algorithm.empty()) {
    knob("\"algorithm\": " + Quoted(request.algorithm));
  }
  if (!request.search.empty()) knob("\"search\": " + Quoted(request.search));
  if (request.has_use_cache) {
    knob(StrPrintf("\"use_cache\": %s",
                   request.use_cache ? "true" : "false"));
  }
  if (request.has_time_weight) {
    knob(StrPrintf("\"time_weight\": %s",
                   JsonNumber(request.time_weight).c_str()));
  }
  if (!knobs.empty()) field("\"knobs\": {" + knobs + "}");
  if (request.deadline_ms > 0) {
    field(StrPrintf("\"deadline_ms\": %lld",
                    static_cast<long long>(request.deadline_ms)));
  }
  if (request.debug_sleep_ms > 0) {
    field(StrPrintf("\"debug_sleep_ms\": %lld",
                    static_cast<long long>(request.debug_sleep_ms)));
  }
  if (request.type == "cache_dump" || request.type == "cache_load") {
    std::string cache = StrPrintf(
        "\"cache\": {\"version\": %lld",
        static_cast<long long>(request.cache_version));
    if (request.type == "cache_dump") {
      cache += StrPrintf(", \"offset\": %lld, \"limit\": %lld",
                         static_cast<long long>(request.cache_offset),
                         static_cast<long long>(request.cache_limit));
    } else {
      cache += ", \"entries\": " + CacheEntriesJson(request.cache_entries);
    }
    cache += "}";
    field(cache);
  }
  out += "}";
  return out;
}

Result<PlanRequest> ParsePlanRequest(std::string_view json) {
  RAQO_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  PlanRequest request;
  RAQO_RETURN_IF_ERROR(ReadString(root, "type", &request.type));
  RAQO_RETURN_IF_ERROR(ReadString(root, "id", &request.id));
  RAQO_RETURN_IF_ERROR(ReadString(root, "tenant", &request.tenant));
  RAQO_RETURN_IF_ERROR(ReadString(root, "sql", &request.sql));
  if (const JsonValue* tables = root.Find("tables"); tables != nullptr) {
    if (!tables->is_array()) {
      return Status::InvalidArgument("\"tables\" must be an array of "
                                     "table names");
    }
    for (const JsonValue& item : tables->items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("\"tables\" must contain only "
                                       "strings");
      }
      request.tables.push_back(item.string_value());
    }
  }
  if (const JsonValue* resources = root.Find("resources");
      resources != nullptr) {
    RAQO_ASSIGN_OR_RETURN(request.resources,
                          ParseResourceConfig(*resources));
    request.has_resources = true;
  }
  if (const JsonValue* budget = root.Find("max_dollars");
      budget != nullptr) {
    if (!budget->is_number()) {
      return Status::InvalidArgument("\"max_dollars\" must be a number");
    }
    request.max_dollars = budget->number_value();
    request.has_max_dollars = true;
  }
  if (const JsonValue* knobs_value = root.Find("knobs");
      knobs_value != nullptr) {
    if (!knobs_value->is_object()) {
      return Status::InvalidArgument("\"knobs\" must be an object");
    }
    const JsonValue& knobs = *knobs_value;
    RAQO_RETURN_IF_ERROR(ReadString(knobs, "algorithm", &request.algorithm));
    RAQO_RETURN_IF_ERROR(ReadString(knobs, "search", &request.search));
    if (const JsonValue* use_cache = knobs.Find("use_cache");
        use_cache != nullptr) {
      if (!use_cache->is_bool()) {
        return Status::InvalidArgument("\"use_cache\" must be a boolean");
      }
      request.has_use_cache = true;
      request.use_cache = use_cache->bool_value();
    }
    if (const JsonValue* weight = knobs.Find("time_weight");
        weight != nullptr) {
      if (!weight->is_number()) {
        return Status::InvalidArgument("\"time_weight\" must be a number");
      }
      request.has_time_weight = true;
      request.time_weight = weight->number_value();
    }
  }
  RAQO_RETURN_IF_ERROR(ReadInt(root, "deadline_ms", &request.deadline_ms));
  RAQO_RETURN_IF_ERROR(
      ReadInt(root, "debug_sleep_ms", &request.debug_sleep_ms));
  if (const JsonValue* cache = root.Find("cache"); cache != nullptr) {
    if (!cache->is_object()) {
      return Status::InvalidArgument("\"cache\" must be an object");
    }
    // A missing version parses as 0, which no server speaks — the
    // mismatch is then rejected at the service layer with
    // FAILED_PRECONDITION (a protocol-level negotiation failure, not a
    // malformed frame).
    request.cache_version = IntMember(*cache, "version", 0);
    RAQO_RETURN_IF_ERROR(ReadInt(*cache, "offset", &request.cache_offset));
    RAQO_RETURN_IF_ERROR(ReadInt(*cache, "limit", &request.cache_limit));
    RAQO_RETURN_IF_ERROR(ParseCacheEntries(*cache, &request.cache_entries));
  }
  return request;
}

std::string SerializePlanResponse(const PlanResponse& response) {
  std::string out = "{\"status\": " + Quoted(response.status);
  if (!response.id.empty()) out += ", \"id\": " + Quoted(response.id);
  if (!response.error.empty()) {
    out += ", \"error\": " + Quoted(response.error);
  }
  if (response.ok() && response.has_cache) {
    out += StrPrintf(
        ", \"cache\": {\"version\": %lld, \"total\": %lld, "
        "\"offset\": %lld, \"loaded\": %lld, \"entries\": ",
        static_cast<long long>(response.cache_version),
        static_cast<long long>(response.cache_total),
        static_cast<long long>(response.cache_offset),
        static_cast<long long>(response.cache_loaded));
    out += CacheEntriesJson(response.cache_entries);
    out += "}";
  } else if (response.ok()) {
    out += ", \"plan\": " + Quoted(response.plan);
    out += StrPrintf(", \"cost\": {\"seconds\": %s, \"dollars\": %s}",
                     JsonNumber(response.cost.seconds).c_str(),
                     JsonNumber(response.cost.dollars).c_str());
    out += ", \"joins\": [";
    for (size_t i = 0; i < response.join_resources.size(); ++i) {
      if (i > 0) out += ", ";
      out += ResourceConfigJson(response.join_resources[i]);
    }
    out += "]";
    out += StrPrintf(
        ", \"stats\": {\"wall_ms\": %s, \"plans_considered\": %lld, "
        "\"resource_configs_explored\": %lld, \"cache_hits\": %lld, "
        "\"cache_misses\": %lld}",
        JsonNumber(response.stats.wall_ms).c_str(),
        static_cast<long long>(response.stats.plans_considered),
        static_cast<long long>(response.stats.resource_configs_explored),
        static_cast<long long>(response.stats.cache_hits),
        static_cast<long long>(response.stats.cache_misses));
  }
  out += StrPrintf(", \"server\": {\"queue_wait_us\": %s}}",
                   JsonNumber(response.queue_wait_us).c_str());
  return out;
}

Result<PlanResponse> ParsePlanResponse(std::string_view json) {
  RAQO_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  PlanResponse response;
  response.status = StringMember(root, "status");
  if (response.status.empty()) {
    return Status::InvalidArgument("response carries no \"status\"");
  }
  response.id = StringMember(root, "id");
  response.error = StringMember(root, "error");
  response.plan = StringMember(root, "plan");
  if (const JsonValue* cost = root.FindObject("cost"); cost != nullptr) {
    response.cost.seconds = NumberMember(*cost, "seconds", 0.0);
    response.cost.dollars = NumberMember(*cost, "dollars", 0.0);
  }
  if (const JsonValue* joins = root.FindArray("joins"); joins != nullptr) {
    for (const JsonValue& join : joins->items()) {
      RAQO_ASSIGN_OR_RETURN(resource::ResourceConfig config,
                            ParseResourceConfig(join));
      response.join_resources.push_back(config);
    }
  }
  if (const JsonValue* stats = root.FindObject("stats"); stats != nullptr) {
    response.stats.wall_ms = NumberMember(*stats, "wall_ms", 0.0);
    response.stats.plans_considered =
        IntMember(*stats, "plans_considered", 0);
    response.stats.resource_configs_explored =
        IntMember(*stats, "resource_configs_explored", 0);
    response.stats.cache_hits = IntMember(*stats, "cache_hits", 0);
    response.stats.cache_misses = IntMember(*stats, "cache_misses", 0);
  }
  if (const JsonValue* server = root.FindObject("server");
      server != nullptr) {
    response.queue_wait_us = NumberMember(*server, "queue_wait_us", 0.0);
  }
  if (const JsonValue* cache = root.FindObject("cache"); cache != nullptr) {
    response.has_cache = true;
    response.cache_version = IntMember(*cache, "version", 0);
    response.cache_total = IntMember(*cache, "total", 0);
    response.cache_offset = IntMember(*cache, "offset", 0);
    response.cache_loaded = IntMember(*cache, "loaded", 0);
    RAQO_RETURN_IF_ERROR(
        ParseCacheEntries(*cache, &response.cache_entries));
  }
  return response;
}

std::string EncodeFrame(std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((len >> 24) & 0xFF));
  frame.push_back(static_cast<char>((len >> 16) & 0xFF));
  frame.push_back(static_cast<char>((len >> 8) & 0xFF));
  frame.push_back(static_cast<char>(len & 0xFF));
  frame.append(payload.data(), payload.size());
  return frame;
}

FrameDecode TryDecodeFrame(std::string_view buffer, size_t max_frame_bytes,
                           std::string_view* payload, size_t* frame_size) {
  if (buffer.size() < kFrameHeaderBytes) return FrameDecode::kNeedMore;
  const auto* b = reinterpret_cast<const unsigned char*>(buffer.data());
  const uint32_t len = (static_cast<uint32_t>(b[0]) << 24) |
                       (static_cast<uint32_t>(b[1]) << 16) |
                       (static_cast<uint32_t>(b[2]) << 8) |
                       static_cast<uint32_t>(b[3]);
  if (len > max_frame_bytes) return FrameDecode::kTooLarge;
  if (buffer.size() < kFrameHeaderBytes + len) return FrameDecode::kNeedMore;
  *payload = buffer.substr(kFrameHeaderBytes, len);
  *frame_size = kFrameHeaderBytes + len;
  return FrameDecode::kComplete;
}

Status WriteFrame(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  return net::SendAll(fd, frame.data(), frame.size());
}

Result<std::string> ReadFrame(int fd, size_t max_frame_bytes) {
  unsigned char header[kFrameHeaderBytes];
  RAQO_RETURN_IF_ERROR(net::RecvAll(fd, header, sizeof(header)));
  const uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                       (static_cast<uint32_t>(header[1]) << 16) |
                       (static_cast<uint32_t>(header[2]) << 8) |
                       static_cast<uint32_t>(header[3]);
  if (len > max_frame_bytes) {
    return Status::InvalidArgument(StrPrintf(
        "frame of %u bytes exceeds the %zu-byte limit", len,
        max_frame_bytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    RAQO_RETURN_IF_ERROR(net::RecvAll(fd, payload.data(), payload.size()));
  }
  return payload;
}

}  // namespace raqo::server
