#ifndef RAQO_SERVER_CLIENT_H_
#define RAQO_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/net.h"
#include "common/result.h"
#include "server/protocol.h"

namespace raqo::server {

/// Knobs of one client connection. The defaults match the server's
/// defaults and never time out, preserving the plain Connect(host, port)
/// behavior.
struct ClientOptions {
  /// Largest response frame accepted before the call fails (a malicious
  /// or corrupted length header must not drive an allocation).
  size_t max_frame_bytes = 64u << 20;
  /// Wall-clock cap on waiting for the response frame (SO_RCVTIMEO); a
  /// hung server surfaces as a DeadlineExceeded status instead of
  /// blocking the caller forever. 0 = wait indefinitely.
  int64_t recv_timeout_ms = 0;
  /// Same cap for writing the request frame (SO_SNDTIMEO). 0 = none.
  int64_t send_timeout_ms = 0;
  /// When non-empty, stamped as the `tenant` of every request sent
  /// through Call() that does not already name one.
  std::string tenant;
};

/// A blocking planning-server client over one TCP connection: Call()
/// writes a request frame and waits for the matching response frame
/// (strict request/response — no pipelining, so responses need no id
/// correlation). Not thread-safe; open one client per thread.
class PlanningClient {
 public:
  /// Connects to a running planning server.
  static Result<PlanningClient> Connect(const std::string& host,
                                        uint16_t port,
                                        ClientOptions options = {});

  PlanningClient(PlanningClient&&) = default;
  PlanningClient& operator=(PlanningClient&&) = default;

  /// One round trip. A non-OK result means the conversation itself
  /// failed (connection dropped, malformed frame, or a DeadlineExceeded
  /// socket timeout); a planner- or admission-level failure comes back
  /// as an OK result whose response carries the wire status
  /// ("RESOURCE_EXHAUSTED", ...).
  Result<PlanResponse> Call(const PlanRequest& request);

  /// Requests one chunk of the server's shared plan cache, starting at
  /// `offset` of its canonical dump order. `limit` of 0 (or anything
  /// above kMaxCacheChunkEntries) means a full chunk. In-band failures
  /// (no shared cache, version mismatch) come back as wire statuses on
  /// the response, like Call().
  Result<PlanResponse> DumpCache(int64_t offset = 0, int64_t limit = 0);

  /// Pushes up to kMaxCacheChunkEntries entries into the server's
  /// shared cache (InvalidArgument on more — chunk at the call site).
  Result<PlanResponse> LoadCache(
      const std::vector<core::CacheEntryRecord>& entries);

  /// Closes the connection (destruction does too).
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  PlanningClient(net::UniqueFd fd, ClientOptions options)
      : fd_(std::move(fd)), options_(std::move(options)) {}

  net::UniqueFd fd_;
  ClientOptions options_;
};

/// Warms `target`'s shared cache from `source`'s over the wire: dumps
/// the source cache chunk by chunk (each bounded by
/// kMaxCacheChunkEntries, so no frame or write buffer grows with cache
/// size) and loads every chunk into the target. Both ends see ordinary
/// admitted requests — quotas, deadlines, and admission limits apply.
/// Entries inserted into the source *during* the copy may be missed;
/// run warm-up before opening the replica to traffic. Returns the
/// number of entries copied; a wire-status rejection on either side
/// surfaces as a FailedPrecondition carrying the server's error.
Result<int64_t> WarmCacheFromPeer(PlanningClient& source,
                                  PlanningClient& target,
                                  int64_t chunk_entries = 0);

}  // namespace raqo::server

#endif  // RAQO_SERVER_CLIENT_H_
