#ifndef RAQO_SERVER_CLIENT_H_
#define RAQO_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/net.h"
#include "common/result.h"
#include "server/protocol.h"

namespace raqo::server {

/// A blocking planning-server client over one TCP connection: Call()
/// writes a request frame and waits for the matching response frame
/// (strict request/response — no pipelining, so responses need no id
/// correlation). Not thread-safe; open one client per thread.
class PlanningClient {
 public:
  /// Connects to a running planning server.
  static Result<PlanningClient> Connect(const std::string& host,
                                        uint16_t port);

  PlanningClient(PlanningClient&&) = default;
  PlanningClient& operator=(PlanningClient&&) = default;

  /// One round trip. A non-OK result means the conversation itself
  /// failed (connection dropped, malformed frame); a planner- or
  /// admission-level failure comes back as an OK result whose response
  /// carries the wire status ("RESOURCE_EXHAUSTED", ...).
  Result<PlanResponse> Call(const PlanRequest& request);

  /// Closes the connection (destruction does too).
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  explicit PlanningClient(net::UniqueFd fd) : fd_(std::move(fd)) {}

  net::UniqueFd fd_;
};

}  // namespace raqo::server

#endif  // RAQO_SERVER_CLIENT_H_
