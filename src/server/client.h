#ifndef RAQO_SERVER_CLIENT_H_
#define RAQO_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/net.h"
#include "common/result.h"
#include "server/protocol.h"

namespace raqo::server {

/// Knobs of one client connection. The defaults match the server's
/// defaults and never time out, preserving the plain Connect(host, port)
/// behavior.
struct ClientOptions {
  /// Largest response frame accepted before the call fails (a malicious
  /// or corrupted length header must not drive an allocation).
  size_t max_frame_bytes = 64u << 20;
  /// Wall-clock cap on waiting for the response frame (SO_RCVTIMEO); a
  /// hung server surfaces as a DeadlineExceeded status instead of
  /// blocking the caller forever. 0 = wait indefinitely.
  int64_t recv_timeout_ms = 0;
  /// Same cap for writing the request frame (SO_SNDTIMEO). 0 = none.
  int64_t send_timeout_ms = 0;
  /// When non-empty, stamped as the `tenant` of every request sent
  /// through Call() that does not already name one.
  std::string tenant;
};

/// A blocking planning-server client over one TCP connection: Call()
/// writes a request frame and waits for the matching response frame
/// (strict request/response — no pipelining, so responses need no id
/// correlation). Not thread-safe; open one client per thread.
class PlanningClient {
 public:
  /// Connects to a running planning server.
  static Result<PlanningClient> Connect(const std::string& host,
                                        uint16_t port,
                                        ClientOptions options = {});

  PlanningClient(PlanningClient&&) = default;
  PlanningClient& operator=(PlanningClient&&) = default;

  /// One round trip. A non-OK result means the conversation itself
  /// failed (connection dropped, malformed frame, or a DeadlineExceeded
  /// socket timeout); a planner- or admission-level failure comes back
  /// as an OK result whose response carries the wire status
  /// ("RESOURCE_EXHAUSTED", ...).
  Result<PlanResponse> Call(const PlanRequest& request);

  /// Closes the connection (destruction does too).
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  PlanningClient(net::UniqueFd fd, ClientOptions options)
      : fd_(std::move(fd)), options_(std::move(options)) {}

  net::UniqueFd fd_;
  ClientOptions options_;
};

}  // namespace raqo::server

#endif  // RAQO_SERVER_CLIENT_H_
