#include "server/service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "query/sql_parser.h"

namespace raqo::server {

namespace {

PlanResponse FromStatus(const Status& status, const std::string& id) {
  return ErrorResponse(WireStatusName(status.code()), status.message(), id);
}

Status ApplyKnobs(const PlanRequest& request,
                  core::RaqoPlannerOptions* options) {
  if (request.algorithm == "selinger") {
    options->algorithm = core::PlannerAlgorithm::kSelinger;
  } else if (request.algorithm == "randomized") {
    options->algorithm = core::PlannerAlgorithm::kFastRandomized;
  } else if (!request.algorithm.empty()) {
    return Status::InvalidArgument("unknown algorithm knob '" +
                                   request.algorithm +
                                   "' (selinger | randomized)");
  }
  if (request.search == "grid") {
    options->evaluator.search = core::ResourceSearch::kBruteForce;
  } else if (request.search == "hillclimb") {
    options->evaluator.search = core::ResourceSearch::kHillClimb;
  } else if (request.search == "accelerated") {
    options->evaluator.search = core::ResourceSearch::kAcceleratedHillClimb;
  } else if (request.search == "parallel") {
    options->evaluator.search = core::ResourceSearch::kParallelBruteForce;
  } else if (!request.search.empty()) {
    return Status::InvalidArgument(
        "unknown search knob '" + request.search +
        "' (grid | hillclimb | accelerated | parallel)");
  }
  if (request.has_use_cache) {
    options->evaluator.use_cache = request.use_cache;
  }
  if (request.has_time_weight) {
    if (request.time_weight < 0.0 || request.time_weight > 1.0) {
      return Status::InvalidArgument("time_weight must be in [0, 1]");
    }
    options->evaluator.time_weight = request.time_weight;
  }
  return Status::OK();
}

}  // namespace

PlanningService::PlanningService(const catalog::Catalog* catalog,
                                 cost::JoinCostModels models,
                                 resource::ClusterConditions cluster,
                                 resource::PricingModel pricing,
                                 PlanningServiceOptions options)
    : catalog_(catalog),
      models_(std::move(models)),
      cluster_(cluster),
      pricing_(pricing),
      options_(std::move(options)) {
  RAQO_CHECK(catalog != nullptr);
  if (options_.share_cache) {
    // Built eagerly (not only when the base options cache) so a request
    // flipping use_cache on still lands in one service-wide cache.
    shared_cache_ = std::make_shared<core::ResourcePlanCache>(
        options_.planner.evaluator.cache_mode,
        options_.planner.evaluator.cache_threshold_gb,
        options_.planner.evaluator.cache_index,
        std::max<size_t>(1, options_.cache_shards));
  }
}

ThreadPool* PlanningService::SearchPool() const {
  std::call_once(search_pool_once_, [this] {
    search_pool_ = std::make_unique<ThreadPool>(std::max(
        1, options_.planner.evaluator.parallel_search_threads));
  });
  return search_pool_.get();
}

PlanResponse PlanningService::Handle(const PlanRequest& request) const {
  if (request.type == "cache_dump") return HandleCacheDump(request);
  if (request.type == "cache_load") return HandleCacheLoad(request);
  if (!request.type.empty() && request.type != "plan") {
    return ErrorResponse(
        kWireInvalidArgument,
        "unknown request type '" + request.type +
            "' (plan | cache_dump | cache_load)",
        request.id);
  }
  if (request.sql.empty() == request.tables.empty()) {
    return ErrorResponse(
        kWireInvalidArgument,
        "request must carry exactly one of \"sql\" or \"tables\"",
        request.id);
  }
  if (request.has_resources && request.has_max_dollars) {
    return ErrorResponse(
        kWireInvalidArgument,
        "\"resources\" and \"max_dollars\" are mutually exclusive",
        request.id);
  }

  // Resolve the query: SQL through the parser (filters scale a private
  // catalog copy), or a plain table-name list.
  const catalog::Catalog* catalog = catalog_;
  catalog::Catalog filtered;
  std::vector<catalog::TableId> tables;
  if (!request.sql.empty()) {
    if (request.sql.size() > kMaxSqlBytes) {
      return ErrorResponse(
          kWireInvalidArgument,
          StrPrintf("sql of %zu bytes exceeds the %zu-byte limit",
                    request.sql.size(), kMaxSqlBytes),
          request.id);
    }
    Result<query::ParsedQuery> parsed =
        query::ParseJoinQuery(*catalog_, request.sql);
    if (!parsed.ok()) return FromStatus(parsed.status(), request.id);
    tables = parsed->tables;
    if (!parsed->filters.empty()) {
      Result<catalog::Catalog> scaled =
          query::ApplyFilters(*catalog_, *parsed);
      if (!scaled.ok()) return FromStatus(scaled.status(), request.id);
      filtered = std::move(*scaled);
      catalog = &filtered;
    }
  } else {
    for (const std::string& name : request.tables) {
      Result<catalog::TableId> id = catalog_->FindTable(name);
      if (!id.ok()) return FromStatus(id.status(), request.id);
      tables.push_back(*id);
    }
  }

  core::RaqoPlannerOptions planner_options = options_.planner;
  if (Status knobs = ApplyKnobs(request, &planner_options); !knobs.ok()) {
    return FromStatus(knobs, request.id);
  }
  if (planner_options.evaluator.search ==
          core::ResourceSearch::kParallelBruteForce &&
      planner_options.evaluator.search_pool == nullptr) {
    // All "parallel" requests share the service's search pool instead of
    // spawning (and joining) a private one per request.
    planner_options.evaluator.search_pool = SearchPool();
  }

  core::RaqoPlanner planner(catalog, models_, cluster_, pricing_,
                            planner_options);
  if (shared_cache_ != nullptr && planner_options.evaluator.use_cache) {
    planner.evaluator().ShareCache(shared_cache_);
  }

  Result<core::JointPlan> plan =
      request.has_resources
          ? planner.PlanForResources(tables, request.resources)
      : request.has_max_dollars
          ? planner.PlanForMoneyBudget(tables, request.max_dollars)
          : planner.Plan(tables);
  if (!plan.ok()) return FromStatus(plan.status(), request.id);

  PlanResponse response;
  response.id = request.id;
  response.plan = plan->plan->ToString(catalog);
  response.cost = plan->cost;
  plan->plan->VisitJoins([&](const plan::PlanNode& join) {
    response.join_resources.push_back(
        join.resources().value_or(resource::ResourceConfig()));
  });
  response.stats.wall_ms = plan->stats.wall_ms;
  response.stats.plans_considered = plan->stats.plans_considered;
  response.stats.resource_configs_explored =
      plan->stats.resource_configs_explored;
  response.stats.cache_hits = plan->stats.cache_hits;
  response.stats.cache_misses = plan->stats.cache_misses;
  return response;
}

core::CacheStats PlanningService::shared_cache_stats() const {
  return shared_cache_ != nullptr ? shared_cache_->stats()
                                  : core::CacheStats{};
}

namespace {

/// Shared validation of the two cache operations: a cache to serve from
/// and a matching frame version. Returns true when `out` was filled
/// with a rejection.
bool RejectCacheOp(const PlanRequest& request,
                   const core::ResourcePlanCache* cache,
                   PlanResponse* out) {
  if (cache == nullptr) {
    *out = ErrorResponse(kWireFailedPrecondition,
                         "server shares no plan cache", request.id);
    return true;
  }
  if (request.cache_version != kCacheWireVersion) {
    *out = ErrorResponse(
        kWireFailedPrecondition,
        StrPrintf("cache wire version %lld unsupported (server speaks "
                  "version %lld)",
                  static_cast<long long>(request.cache_version),
                  static_cast<long long>(kCacheWireVersion)),
        request.id);
    return true;
  }
  return false;
}

}  // namespace

PlanResponse PlanningService::HandleCacheDump(
    const PlanRequest& request) const {
  PlanResponse response;
  if (RejectCacheOp(request, shared_cache_.get(), &response)) {
    return response;
  }
  // O(cache) per chunk: the dump is rebuilt for every request so a
  // chunk never serves stale pages of a mutating cache. Replication is
  // rare (replica start-up) and the cache is planner-metadata sized, so
  // simplicity wins over a cursor protocol.
  const std::vector<core::CacheEntryRecord> all =
      shared_cache_->DumpEntries();
  const int64_t total = static_cast<int64_t>(all.size());
  const int64_t offset = std::min(request.cache_offset, total);
  const int64_t limit =
      request.cache_limit > 0
          ? std::min<int64_t>(request.cache_limit,
                              static_cast<int64_t>(kMaxCacheChunkEntries))
          : static_cast<int64_t>(kMaxCacheChunkEntries);
  const int64_t end = std::min(offset + limit, total);
  response.id = request.id;
  response.has_cache = true;
  response.cache_version = kCacheWireVersion;
  response.cache_total = total;
  response.cache_offset = offset;
  response.cache_entries.assign(all.begin() + offset, all.begin() + end);
  return response;
}

PlanResponse PlanningService::HandleCacheLoad(
    const PlanRequest& request) const {
  PlanResponse response;
  if (RejectCacheOp(request, shared_cache_.get(), &response)) {
    return response;
  }
  // The parse layer already enforced the chunk cap; entries flow through
  // the normal Insert path, so a persistence listener journals them and
  // exact-mode keys re-derive identically to the peer's.
  for (const core::CacheEntryRecord& entry : request.cache_entries) {
    shared_cache_->Insert(entry.model, entry.plan);
  }
  response.id = request.id;
  response.has_cache = true;
  response.cache_version = kCacheWireVersion;
  response.cache_loaded =
      static_cast<int64_t>(request.cache_entries.size());
  return response;
}

}  // namespace raqo::server
