#ifndef RAQO_SERVER_PROTOCOL_H_
#define RAQO_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/plan_cache.h"
#include "cost/cost_vector.h"
#include "resource/resource_config.h"

namespace raqo::server {

/// Wire status strings. The first block mirrors raqo::StatusCode; the
/// server adds three service-level conditions that no library call
/// produces: a queued request whose deadline passed before a worker
/// picked it up (DEADLINE_EXCEEDED) and a request or connection that
/// arrived while the server was draining or full (UNAVAILABLE).
inline constexpr const char kWireOk[] = "OK";
inline constexpr const char kWireInvalidArgument[] = "INVALID_ARGUMENT";
inline constexpr const char kWireNotFound[] = "NOT_FOUND";
inline constexpr const char kWireResourceExhausted[] = "RESOURCE_EXHAUSTED";
inline constexpr const char kWireDeadlineExceeded[] = "DEADLINE_EXCEEDED";
inline constexpr const char kWireUnavailable[] = "UNAVAILABLE";
inline constexpr const char kWireInternal[] = "INTERNAL";
inline constexpr const char kWireFailedPrecondition[] = "FAILED_PRECONDITION";

/// Wire rendering of a library status code ("OK", "NOT_FOUND", ...).
std::string WireStatusName(StatusCode code);

/// Upper bound on the SQL text of one request; longer statements are
/// rejected before the parser sees them (they arrive from untrusted
/// sockets).
inline constexpr size_t kMaxSqlBytes = 64 * 1024;

/// Version of the cache replication frames (the `cache` member of
/// cache_dump / cache_load messages). A peer speaking a different
/// version is answered FAILED_PRECONDITION — never a silently
/// misinterpreted entry.
inline constexpr int64_t kCacheWireVersion = 1;

/// Most cache entries one dump response or load request may carry.
/// Bounds every frame (entries serialize to ~100 bytes each, so a full
/// chunk stays far under the server's default 1 MiB request-frame cap
/// and the connection's write-buffer cap); a longer `entries` array is
/// rejected INVALID_ARGUMENT at parse time.
inline constexpr size_t kMaxCacheChunkEntries = 512;

/// One planning request. Exactly one of `sql` / `tables` names the
/// query; the optional resource envelope / money budget select the
/// planner use case (Section IV): none -> Plan, `resources` ->
/// PlanForResources, `max_dollars` -> PlanForMoneyBudget.
struct PlanRequest {
  /// Message kind: "" or "plan" plans a query (every field below
  /// applies); "cache_dump" asks for one chunk of the server's shared
  /// plan cache; "cache_load" pushes a chunk of entries into it. The
  /// cache kinds ride the same frames, admission queue, tenant quotas,
  /// and deadlines as planning — replication traffic cannot bypass the
  /// server's protections.
  std::string type;

  /// Caller-chosen identifier, echoed verbatim in the response.
  std::string id;

  /// Tenant this request is billed to. Admission control keys its
  /// in-flight and dollar quotas (and the fair per-tenant dequeue) on
  /// this string; empty means the shared anonymous tenant. The server
  /// reads it with a cheap pre-parse scan (PeekTopLevelString), so it
  /// must be a top-level member of the request object.
  std::string tenant;

  /// "select * from orders, lineitem where ..." (see query/sql_parser.h).
  std::string sql;
  /// Alternative join-graph spec: catalog table names, FROM-clause order.
  std::vector<std::string> tables;

  /// Fixed resource envelope (r => p planning).
  bool has_resources = false;
  resource::ResourceConfig resources;

  /// Monetary budget (c => (p, r) planning).
  bool has_max_dollars = false;
  double max_dollars = 0.0;

  /// Planner knobs; empty/unset fields keep the server defaults.
  std::string algorithm;  ///< "", "selinger", or "randomized"
  std::string search;     ///< "", "grid", "hillclimb", "accelerated", "parallel"
  bool has_use_cache = false;
  bool use_cache = false;
  bool has_time_weight = false;
  double time_weight = 1.0;

  /// Admission-to-execution deadline; a request still queued when it
  /// expires is cancelled with DEADLINE_EXCEEDED. 0 = server default.
  int64_t deadline_ms = 0;

  /// Test hook: hold the worker for this long before planning. Ignored
  /// unless the server enables test hooks.
  int64_t debug_sleep_ms = 0;

  /// --- cache_dump / cache_load members (the wire `cache` object) ---
  /// Frame-format version; a mismatch is rejected FAILED_PRECONDITION.
  int64_t cache_version = kCacheWireVersion;
  /// cache_dump: first entry (in the server's canonical dump order) of
  /// the requested chunk.
  int64_t cache_offset = 0;
  /// cache_dump: entries requested; 0 or anything above
  /// kMaxCacheChunkEntries means kMaxCacheChunkEntries.
  int64_t cache_limit = 0;
  /// cache_load: the entries to insert, at most kMaxCacheChunkEntries.
  std::vector<core::CacheEntryRecord> cache_entries;
};

/// Planning statistics carried back over the wire (the subset of
/// optimizer::PlanningStats that the bench and clients consume).
struct WireStats {
  double wall_ms = 0.0;
  int64_t plans_considered = 0;
  int64_t resource_configs_explored = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// One planning response. On success `plan` is the chosen operator tree
/// rendered with catalog table names and `join_resources` holds the
/// per-join resource configuration in the plan's post-order (VisitJoins
/// order) — together the joint (p, r) of Figure 8(b).
struct PlanResponse {
  std::string id;
  std::string status = kWireOk;
  std::string error;

  std::string plan;
  cost::CostVector cost;
  std::vector<resource::ResourceConfig> join_resources;
  WireStats stats;

  /// How long the request sat in the admission queue before a worker
  /// picked it up.
  double queue_wait_us = 0.0;

  /// --- cache_dump / cache_load members (the wire `cache` object) ---
  /// True when this response answers a cache operation; the plan fields
  /// above are then absent from the wire form.
  bool has_cache = false;
  int64_t cache_version = 0;
  /// cache_dump: total entries the server held when it built the chunk
  /// (pagination cursor: keep requesting until offset reaches this).
  int64_t cache_total = 0;
  /// cache_dump: offset this chunk starts at (echo of the request).
  int64_t cache_offset = 0;
  /// cache_load: entries actually inserted.
  int64_t cache_loaded = 0;
  /// cache_dump: the chunk, in the server's canonical (model, smaller,
  /// larger) order — the same entries serialize to the same bytes, so
  /// dumps of equal caches are byte-identical (exact-mode determinism
  /// extends over the wire).
  std::vector<core::CacheEntryRecord> cache_entries;

  bool ok() const { return status == kWireOk; }
};

/// Builds an error response (no plan payload).
PlanResponse ErrorResponse(std::string wire_status, std::string message,
                           std::string id = "");

std::string SerializePlanRequest(const PlanRequest& request);
Result<PlanRequest> ParsePlanRequest(std::string_view json);

/// Best-effort extraction of one top-level string member from a JSON
/// object without building a document: a linear scan that honors string
/// escapes and brace/bracket nesting, so a key occurring inside another
/// string ("sql": "... \"id\" ...") or in a nested object is never
/// matched. Returns the decoded value, or "" when the key is absent,
/// not a string, or the text is malformed. The admission path uses this
/// to learn `id` and `tenant` before (or instead of) a full parse.
std::string PeekTopLevelString(std::string_view json, std::string_view key);

std::string SerializePlanResponse(const PlanResponse& response);
Result<PlanResponse> ParsePlanResponse(std::string_view json);

/// Framing: every message is a 4-byte big-endian payload length followed
/// by that many bytes of UTF-8 JSON.
inline constexpr size_t kFrameHeaderBytes = 4;

std::string EncodeFrame(std::string_view payload);

enum class FrameDecode {
  kNeedMore,   ///< fewer bytes buffered than one complete frame
  kComplete,   ///< *payload/*frame_size describe the first frame
  kTooLarge,   ///< advertised length exceeds max_frame_bytes
};

/// Inspects `buffer` for one complete frame without copying. On
/// kComplete, `*payload` aliases `buffer` and `*frame_size` is the total
/// bytes to consume (header + payload).
FrameDecode TryDecodeFrame(std::string_view buffer, size_t max_frame_bytes,
                           std::string_view* payload, size_t* frame_size);

/// Blocking framed I/O for clients (and tests): one frame per call.
Status WriteFrame(int fd, std::string_view payload);
Result<std::string> ReadFrame(int fd, size_t max_frame_bytes);

}  // namespace raqo::server

#endif  // RAQO_SERVER_PROTOCOL_H_
