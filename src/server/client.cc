#include "server/client.h"

#include <utility>

namespace raqo::server {

Result<PlanningClient> PlanningClient::Connect(const std::string& host,
                                               uint16_t port,
                                               ClientOptions options) {
  RAQO_ASSIGN_OR_RETURN(net::UniqueFd fd, net::ConnectTcp(host, port));
  RAQO_RETURN_IF_ERROR(net::SetSocketTimeouts(fd.get(),
                                              options.recv_timeout_ms,
                                              options.send_timeout_ms));
  return PlanningClient(std::move(fd), std::move(options));
}

Result<PlanResponse> PlanningClient::Call(const PlanRequest& request) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::string payload_out;
  if (request.tenant.empty() && !options_.tenant.empty()) {
    PlanRequest stamped = request;
    stamped.tenant = options_.tenant;
    payload_out = SerializePlanRequest(stamped);
  } else {
    payload_out = SerializePlanRequest(request);
  }
  Status sent = WriteFrame(fd_.get(), payload_out);
  if (!sent.ok()) {
    fd_.reset();
    return sent;
  }
  Result<std::string> payload = ReadFrame(fd_.get(), options_.max_frame_bytes);
  if (!payload.ok()) {
    // The connection is closed even on a timeout: a late response frame
    // arriving after the caller gave up must not be mistaken for the
    // answer to the *next* Call().
    fd_.reset();
    return payload.status();
  }
  return ParsePlanResponse(*payload);
}

}  // namespace raqo::server
