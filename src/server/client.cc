#include "server/client.h"

#include <utility>

#include "common/strings.h"

namespace raqo::server {

Result<PlanningClient> PlanningClient::Connect(const std::string& host,
                                               uint16_t port,
                                               ClientOptions options) {
  RAQO_ASSIGN_OR_RETURN(net::UniqueFd fd, net::ConnectTcp(host, port));
  RAQO_RETURN_IF_ERROR(net::SetSocketTimeouts(fd.get(),
                                              options.recv_timeout_ms,
                                              options.send_timeout_ms));
  return PlanningClient(std::move(fd), std::move(options));
}

Result<PlanResponse> PlanningClient::Call(const PlanRequest& request) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::string payload_out;
  if (request.tenant.empty() && !options_.tenant.empty()) {
    PlanRequest stamped = request;
    stamped.tenant = options_.tenant;
    payload_out = SerializePlanRequest(stamped);
  } else {
    payload_out = SerializePlanRequest(request);
  }
  Status sent = WriteFrame(fd_.get(), payload_out);
  if (!sent.ok()) {
    fd_.reset();
    return sent;
  }
  Result<std::string> payload = ReadFrame(fd_.get(), options_.max_frame_bytes);
  if (!payload.ok()) {
    // The connection is closed even on a timeout: a late response frame
    // arriving after the caller gave up must not be mistaken for the
    // answer to the *next* Call().
    fd_.reset();
    return payload.status();
  }
  return ParsePlanResponse(*payload);
}

Result<PlanResponse> PlanningClient::DumpCache(int64_t offset,
                                               int64_t limit) {
  PlanRequest request;
  request.type = "cache_dump";
  request.cache_offset = offset;
  request.cache_limit = limit;
  return Call(request);
}

Result<PlanResponse> PlanningClient::LoadCache(
    const std::vector<core::CacheEntryRecord>& entries) {
  if (entries.size() > kMaxCacheChunkEntries) {
    return Status::InvalidArgument(StrPrintf(
        "cache chunk of %zu entries exceeds the %zu-entry cap",
        entries.size(), kMaxCacheChunkEntries));
  }
  PlanRequest request;
  request.type = "cache_load";
  request.cache_entries = entries;
  return Call(request);
}

Result<int64_t> WarmCacheFromPeer(PlanningClient& source,
                                  PlanningClient& target,
                                  int64_t chunk_entries) {
  int64_t chunk = chunk_entries;
  if (chunk <= 0 || chunk > static_cast<int64_t>(kMaxCacheChunkEntries)) {
    chunk = static_cast<int64_t>(kMaxCacheChunkEntries);
  }
  int64_t copied = 0;
  int64_t offset = 0;
  for (;;) {
    RAQO_ASSIGN_OR_RETURN(PlanResponse dump,
                          source.DumpCache(offset, chunk));
    if (!dump.ok()) {
      return Status::FailedPrecondition(StrPrintf(
          "cache_dump rejected %s: %s", dump.status.c_str(),
          dump.error.c_str()));
    }
    if (dump.cache_entries.empty()) break;
    RAQO_ASSIGN_OR_RETURN(PlanResponse load,
                          target.LoadCache(dump.cache_entries));
    if (!load.ok()) {
      return Status::FailedPrecondition(StrPrintf(
          "cache_load rejected %s: %s", load.status.c_str(),
          load.error.c_str()));
    }
    const int64_t got = static_cast<int64_t>(dump.cache_entries.size());
    copied += got;
    offset += got;
    // A short chunk means the dump order is exhausted; cache_total can
    // have grown since the first chunk, so the byte count, not the
    // original total, terminates the loop.
    if (got < chunk) break;
  }
  return copied;
}

}  // namespace raqo::server
