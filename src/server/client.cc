#include "server/client.h"

#include <utility>

namespace raqo::server {

Result<PlanningClient> PlanningClient::Connect(const std::string& host,
                                               uint16_t port) {
  RAQO_ASSIGN_OR_RETURN(net::UniqueFd fd, net::ConnectTcp(host, port));
  return PlanningClient(std::move(fd));
}

Result<PlanResponse> PlanningClient::Call(const PlanRequest& request) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  Status sent = WriteFrame(fd_.get(), SerializePlanRequest(request));
  if (!sent.ok()) {
    fd_.reset();
    return sent;
  }
  Result<std::string> payload = ReadFrame(fd_.get(), 64u << 20);
  if (!payload.ok()) {
    fd_.reset();
    return payload.status();
  }
  return ParsePlanResponse(*payload);
}

}  // namespace raqo::server
