#ifndef RAQO_SERVER_SERVER_H_
#define RAQO_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "persist/cache_persist.h"
#include "server/service.h"

namespace raqo::obs {
class Counter;
class Gauge;
}  // namespace raqo::obs

namespace raqo::server {

/// Admission quota of one tenant. Zero means unlimited, so a
/// default-constructed quota preserves the quota-free behavior.
struct TenantQuota {
  /// Max admitted-but-unanswered requests (queued + executing) the
  /// tenant may hold at once; one more is rejected RESOURCE_EXHAUSTED.
  int64_t max_inflight = 0;
  /// Cumulative dollar budget. Every successful response's
  /// `cost.dollars` is charged against it; once spending reaches the
  /// budget, further requests are rejected RESOURCE_EXHAUSTED. The
  /// budget gates admission, so requests already in flight may finish
  /// and overshoot it by their own cost.
  double max_dollars = 0.0;
};

/// Configuration of the network server.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the chosen one with port().
  uint16_t port = 0;
  /// Reactor (I/O event loop) threads. Each reactor runs its own epoll
  /// instance and owns the connections pinned to it — read buffers,
  /// frame reassembly, and write buffers are all single-threaded per
  /// connection, so the hot read/decode/admit path takes no lock beyond
  /// the shared admission mutex. With more than one reactor each binds
  /// its own SO_REUSEPORT listener and the kernel spreads incoming
  /// connections across them; when SO_REUSEPORT is unavailable, reactor
  /// 0 accepts alone and hands accepted fds round-robin to its peers
  /// over their wakeup eventfds. 0 = min(4, hardware threads).
  int num_reactors = 0;
  /// Planner worker threads (one PR-1 ThreadPool).
  int num_workers = 4;
  /// Admission control: requests admitted but not yet picked up by a
  /// worker, bounded per tenant (traffic without a `tenant` field shares
  /// one anonymous tenant, so the single-tenant behavior is unchanged).
  /// One more request is rejected with RESOURCE_EXHAUSTED instead of
  /// growing memory without bound.
  size_t max_queue = 64;
  /// Quota applied to tenants without an explicit entry in
  /// `tenant_quotas`. The default (all zero) is unlimited.
  TenantQuota default_tenant_quota;
  /// Per-tenant quota overrides, keyed by the wire `tenant` string ("" =
  /// the anonymous tenant).
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Distinct tenants tracked at once; requests naming a new tenant
  /// beyond this are rejected RESOURCE_EXHAUSTED (admission state and
  /// per-tenant metrics stay bounded against tenant-name floods).
  size_t max_tenants = 1024;
  /// Beyond this, new connections get an UNAVAILABLE frame and a close.
  /// Enforced across all reactors with an atomic counter, so a burst
  /// arriving on several reactors at once can transiently overshoot by
  /// at most num_reactors - 1 before settling.
  size_t max_connections = 256;
  /// Largest acceptable request frame; the connection is closed after an
  /// INVALID_ARGUMENT response when a header advertises more.
  size_t max_frame_bytes = 1 << 20;
  /// Response backlog buffered per slow-reading client before the
  /// connection is dropped (backpressure, never unbounded memory).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Deadline applied to requests that carry none (0 = unlimited).
  int64_t default_deadline_ms = 0;
  /// Hard cap on the graceful drain; connections still unflushed after
  /// this are dropped so Shutdown always terminates.
  int64_t drain_timeout_ms = 30000;
  /// Honor the `debug_sleep_ms` request field (tests and load harnesses
  /// only; never enable when serving real clients).
  bool enable_test_hooks = false;
  /// When non-empty, the graceful drain flushes the default metrics
  /// registry and tracer as metrics.json / trace.json into this
  /// directory before the server stops.
  std::string telemetry_dir;
  /// When non-empty (and the service shares a cache), the shared plan
  /// cache is durable: Start() replays `persist_dir`'s snapshot and
  /// journal into it before serving — a restarted node answers its
  /// first request at the pre-restart hit rate — and every insert is
  /// journaled while serving (docs/PERSISTENCE.md).
  std::string persist_dir;
  /// Journal fsync policy (persist/journal.h).
  persist::FsyncPolicy persist_fsync = persist::FsyncPolicy::kGroupCommit;
  /// Group-commit granularity in journal bytes.
  size_t persist_group_commit_bytes = 64 * 1024;
  /// Journal size that triggers snapshot + truncation; 0 disables
  /// automatic compaction.
  int64_t persist_compact_threshold_bytes = 4 << 20;
};

/// Point-in-time counters of server activity (also exported as
/// server.* metrics in the default registry).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  int64_t requests_admitted = 0;
  /// Responses actually buffered for delivery on a live connection.
  int64_t responses_sent = 0;
  /// Completed responses that never reached the client: the connection
  /// closed first, or the write-buffer cap dropped it.
  int64_t responses_dropped = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_deadline = 0;
  int64_t rejected_draining = 0;
  /// Rejections from per-tenant quotas (in-flight cap / dollar budget /
  /// tenant-table overflow).
  int64_t rejected_tenant_inflight = 0;
  int64_t rejected_tenant_budget = 0;
  int64_t rejected_tenant_table_full = 0;
  int64_t protocol_errors = 0;
  int64_t queue_depth = 0;
  int64_t requests_executing = 0;
  int64_t open_connections = 0;
};

/// Point-in-time admission state of one tenant (see tenant_stats()).
struct TenantStats {
  int64_t admitted = 0;
  int64_t responses_ok = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_inflight = 0;
  int64_t rejected_budget = 0;
  int64_t inflight = 0;
  int64_t queued = 0;
  double dollars_spent = 0.0;
};

/// Point-in-time view of one reactor's share of the I/O plane (see
/// reactor_stats()).
struct ReactorStats {
  int index = 0;
  int64_t connections_accepted = 0;
  int64_t open_connections = 0;
};

/// The RAQO planning server: N reactor threads, each running its own
/// epoll loop over the connections pinned to it, feeding a PR-1
/// ThreadPool of planner workers that execute length-prefixed JSON
/// request frames (server/protocol.h) against the shared
/// PlanningService. Production behaviors, not demo ones:
///
///  - sharded I/O plane: each reactor owns its own listening socket
///    (SO_REUSEPORT; single-acceptor fd handoff as the fallback), epoll
///    instance, and wakeup eventfd. A connection's read buffer, frame
///    reassembly, and write buffer live on exactly one reactor for the
///    connection's whole life, so the hot read/decode/enqueue path is
///    single-threaded and lock-free; worker completions are routed back
///    to the owning reactor and writes are batched per event-loop tick,
///  - admission control: bounded per-tenant queues; overflow answers
///    RESOURCE_EXHAUSTED immediately instead of buffering,
///  - multi-tenant quotas: per-tenant in-flight caps and cumulative
///    dollar budgets (charged from each successful response's cost),
///    with per-tenant sub-queues drained round-robin so one flooding
///    tenant cannot starve the queue-wait of the others (cross-reactor:
///    admission state lives behind one mutex shared by all reactors),
///  - per-request deadlines: a request still queued past its deadline is
///    cancelled with DEADLINE_EXCEEDED, never planned,
///  - connection limits and per-connection write buffering for slow
///    readers, with a byte cap that drops abusive clients,
///  - graceful drain on Shutdown()/SIGTERM: stop accepting, answer new
///    frames UNAVAILABLE, finish every admitted request, flush all
///    responses, then export telemetry and stop.
///
/// Thread model: Start() spawns num_reactors I/O threads and
/// `num_workers` planner workers; Shutdown() is async-signal-safe (an
/// atomic flag plus one eventfd write per reactor) so a SIGTERM handler
/// may call it directly; Wait() joins the drained server. With
/// num_reactors = 1 the server behaves exactly like the single-epoll
/// design it replaces (one acceptor, no SO_REUSEPORT, one I/O thread).
class PlanningServer {
 public:
  /// `service` must outlive the server.
  PlanningServer(const PlanningService* service, ServerOptions options);
  ~PlanningServer();

  PlanningServer(const PlanningServer&) = delete;
  PlanningServer& operator=(const PlanningServer&) = delete;

  /// Binds, listens, and spawns the reactor and worker threads.
  Status Start();

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Resolved reactor count (after construction; 0 in options means
  /// min(4, hardware threads)).
  int num_reactors() const { return options_.num_reactors; }

  /// True when every reactor accepts on its own SO_REUSEPORT listener;
  /// false with one reactor (plain single listener) or when the kernel
  /// refused SO_REUSEPORT and reactor 0 hands accepted fds to its peers.
  bool reuseport_sharding() const { return reuseport_; }

  /// Begins the graceful drain. Async-signal-safe and idempotent.
  void Shutdown();

  /// Blocks until the drain completes and all threads have exited.
  void Wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

  /// The durable-cache layer (nullptr unless options.persist_dir was
  /// set and the service shares a cache). Valid after Start() until
  /// destruction; what recovery found is in recovery_stats().
  const persist::CachePersistence* persistence() const {
    return persistence_.get();
  }

  /// Admission state of every tenant seen so far, sorted by name (the
  /// anonymous tenant appears as "").
  std::map<std::string, TenantStats> tenant_stats() const;

  /// Per-reactor accept/open counts, in reactor order. Useful to observe
  /// how SO_REUSEPORT (or the handoff fallback) spread connections.
  std::vector<ReactorStats> reactor_stats() const;

 private:
  /// Per-connection state, owned by exactly one reactor for the whole
  /// connection lifetime.
  struct Connection {
    uint64_t id = 0;
    int reactor = 0;         ///< owning reactor index
    net::UniqueFd fd;
    std::string read_buf;
    std::string write_buf;   ///< unsent response bytes (slow clients)
    size_t write_off = 0;    ///< consumed prefix of write_buf
    int outstanding = 0;     ///< admitted requests not yet answered
    bool peer_closed = false;
    bool close_after_flush = false;
    bool registered_out = false;  ///< EPOLLOUT currently armed
    bool flush_pending = false;   ///< queued in the reactor's tick flush
  };

  /// One admitted request waiting for (or held by) a worker. The
  /// deadline is evaluated by the worker that picks it up — the wire
  /// deadline_ms bounds the admission-to-pickup wait, so the request
  /// itself need not be parsed on the reactor thread (id and tenant come
  /// from the cheap pre-parse peek).
  struct PendingRequest {
    uint64_t conn_id = 0;
    int reactor = 0;     ///< reactor the completion must route back to
    std::string id;      ///< peeked wire id (echoed in rejections)
    std::string tenant;  ///< peeked tenant key the request is billed to
    std::string payload;
    std::chrono::steady_clock::time_point admitted_at;
  };

  /// A response travelling from a worker back to its owning reactor.
  struct Completion {
    uint64_t conn_id = 0;
    std::string payload;
  };

  /// One I/O shard: epoll loop, wakeup eventfd, optionally a listener,
  /// and the connections pinned to it. Everything except the two
  /// mutex-guarded inboxes (completions from workers, handed-off fds
  /// from the acceptor) is touched only by this reactor's thread.
  struct Reactor {
    int index = 0;
    net::UniqueFd listen_fd;  ///< invalid on non-acceptors in handoff mode
    net::UniqueFd epoll_fd;
    net::UniqueFd wake_fd;    ///< eventfd: completions, handoffs, Shutdown
    std::thread thread;

    // Reactor-thread-only state.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    uint64_t next_conn_seq = 0;
    std::vector<uint64_t> flush_queue;  ///< conns with writes this tick
    int64_t outstanding = 0;  ///< admitted on this reactor, unanswered

    // Cross-thread counters (read by reactor_stats()).
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> open{0};

    // Inbox: responses posted by workers.
    std::mutex completions_mu;
    std::deque<Completion> completions;

    // Inbox: accepted fds handed over by reactor 0 (fallback mode only).
    std::mutex handoff_mu;
    std::vector<int> handoff_fds;
  };

  struct TenantState;

  void ReactorLoop(Reactor& r);
  void WorkerLoop();

  /// Looks up (or creates) the tenant's admission state. Caller holds
  /// queue_mu_. Returns nullptr when the tenant table is full.
  TenantState* FindOrCreateTenant(const std::string& tenant);
  /// Charges a finished request back to its tenant: in-flight drops, a
  /// successful response's dollars accrue against the budget.
  void SettleTenant(const std::string& tenant, bool ok, double dollars);

  // Reactor-thread helpers (all touch only reactor-owned state plus the
  // shared admission/stats mutexes).
  void AcceptNewConnections(Reactor& r);
  void AdoptHandoffConnections(Reactor& r);
  void RegisterConnection(Reactor& r, net::UniqueFd fd);
  void HandleReadable(Reactor& r, Connection* conn);
  void HandleWritable(Reactor& r, Connection* conn);
  void ExtractFrames(Reactor& r, Connection* conn);
  void AdmitOrReject(Reactor& r, Connection* conn, std::string payload);
  void RejectRequest(Reactor& r, Connection* conn, const char* wire_status,
                     std::string message, std::string id,
                     int64_t ServerStats::*stat_field,
                     const char* counter_name);
  void QueueResponse(Reactor& r, Connection* conn,
                     const PlanResponse& response);
  void SendRawResponse(Reactor& r, Connection* conn, std::string payload);
  void DeliverCompletions(Reactor& r);
  void FlushPendingWrites(Reactor& r);
  void UpdateWriteInterest(Reactor& r, Connection* conn);
  void CloseConnection(Reactor& r, uint64_t conn_id);
  void FlushTelemetry();
  void PostCompletion(int reactor, uint64_t conn_id, std::string payload);
  static void WakeReactor(Reactor& r);
  void Bump(int64_t ServerStats::*field, int64_t delta = 1);
  void BumpResponsesDropped();

  const PlanningService* service_;
  ServerOptions options_;
  uint16_t port_ = 0;

  /// Durable-cache layer; attached to the service's shared cache
  /// between Start() and the end of Wait()'s drain.
  std::unique_ptr<persist::CachePersistence> persistence_;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  bool reuseport_ = false;
  /// Round-robin cursor of the fd-handoff fallback; touched only by the
  /// accepting reactor's thread (reactor 0).
  size_t next_handoff_ = 0;

  std::unique_ptr<ThreadPool> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> threads_started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<bool> torn_down_{false};
  std::atomic<int64_t> executing_{0};
  std::atomic<int64_t> open_conns_{0};

  /// Guards the tenant table, the per-tenant sub-queues, the round-robin
  /// ready ring, and every tenant's quota accounting — the one lock
  /// boundary shared by all reactors and workers. The per-connection hot
  /// path (read, frame reassembly, write batching) never takes it except
  /// for the admission decision itself.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::unordered_map<std::string, TenantState> tenants_;
  /// Tenants with a non-empty sub-queue, in round-robin order: workers
  /// pop the front tenant, take one request, and rotate it to the back
  /// while its queue stays non-empty — so K active tenants each get
  /// every K-th dequeue regardless of how deep any one backlog is.
  std::deque<TenantState*> ready_tenants_;
  size_t total_queued_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

/// Admission state of one tenant, guarded by queue_mu_. Values live in
/// an unordered_map (node-based, reference-stable), so the ready ring
/// and workers may hold pointers across rehashes.
struct PlanningServer::TenantState {
  std::string name;
  TenantQuota quota;
  std::deque<PendingRequest> queue;  ///< this tenant's admission queue
  bool in_ready = false;             ///< queued in the round-robin ring
  int64_t inflight = 0;              ///< admitted, not yet answered
  double dollars_spent = 0.0;
  TenantStats stats;
  /// Per-tenant metrics (null for the anonymous tenant, which reports
  /// only through the global server.* series).
  obs::Counter* admitted_counter = nullptr;
  obs::Counter* rejected_counter = nullptr;
  obs::Gauge* queue_depth_gauge = nullptr;
  obs::Gauge* inflight_gauge = nullptr;
  obs::Gauge* dollars_gauge = nullptr;
};

/// Installs SIGTERM + SIGINT handlers that trigger `server->Shutdown()`
/// (the handler only flips an atomic and writes the reactors' eventfds).
/// Pass nullptr to uninstall. One server per process can be wired this
/// way.
void InstallShutdownSignalHandlers(PlanningServer* server);

}  // namespace raqo::server

#endif  // RAQO_SERVER_SERVER_H_
