#ifndef RAQO_SERVER_SERVER_H_
#define RAQO_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/net.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/service.h"

namespace raqo::server {

/// Configuration of the network server.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the chosen one with port().
  uint16_t port = 0;
  /// Planner worker threads (one PR-1 ThreadPool).
  int num_workers = 4;
  /// Admission control: requests admitted but not yet picked up by a
  /// worker. One more request is rejected with RESOURCE_EXHAUSTED
  /// instead of growing memory without bound.
  size_t max_queue = 64;
  /// Beyond this, new connections get an UNAVAILABLE frame and a close.
  size_t max_connections = 256;
  /// Largest acceptable request frame; the connection is closed after an
  /// INVALID_ARGUMENT response when a header advertises more.
  size_t max_frame_bytes = 1 << 20;
  /// Response backlog buffered per slow-reading client before the
  /// connection is dropped (backpressure, never unbounded memory).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Deadline applied to requests that carry none (0 = unlimited).
  int64_t default_deadline_ms = 0;
  /// Hard cap on the graceful drain; connections still unflushed after
  /// this are dropped so Shutdown always terminates.
  int64_t drain_timeout_ms = 30000;
  /// Honor the `debug_sleep_ms` request field (tests and load harnesses
  /// only; never enable when serving real clients).
  bool enable_test_hooks = false;
  /// When non-empty, the graceful drain flushes the default metrics
  /// registry and tracer as metrics.json / trace.json into this
  /// directory before the server stops.
  std::string telemetry_dir;
};

/// Point-in-time counters of server activity (also exported as
/// server.* metrics in the default registry).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  int64_t requests_admitted = 0;
  int64_t responses_sent = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_deadline = 0;
  int64_t rejected_draining = 0;
  int64_t protocol_errors = 0;
  int64_t queue_depth = 0;
  int64_t requests_executing = 0;
  int64_t open_connections = 0;
};

/// The RAQO planning server: one epoll I/O thread accepting
/// length-prefixed JSON request frames (server/protocol.h) and a PR-1
/// ThreadPool of planner workers executing them against the shared
/// PlanningService. Production behaviors, not demo ones:
///
///  - admission control: a bounded queue; overflow answers
///    RESOURCE_EXHAUSTED immediately instead of buffering,
///  - per-request deadlines: a request still queued past its deadline is
///    cancelled with DEADLINE_EXCEEDED, never planned,
///  - connection limits and per-connection write buffering for slow
///    readers, with a byte cap that drops abusive clients,
///  - graceful drain on Shutdown()/SIGTERM: stop accepting, answer new
///    frames UNAVAILABLE, finish every admitted request, flush all
///    responses, then export telemetry and stop.
///
/// Thread model: Start() spawns the I/O thread and `num_workers` planner
/// workers; Shutdown() is async-signal-safe (an atomic flag plus one
/// eventfd write) so a SIGTERM handler may call it directly; Wait()
/// joins the drained server.
class PlanningServer {
 public:
  /// `service` must outlive the server.
  PlanningServer(const PlanningService* service, ServerOptions options);
  ~PlanningServer();

  PlanningServer(const PlanningServer&) = delete;
  PlanningServer& operator=(const PlanningServer&) = delete;

  /// Binds, listens, and spawns the I/O and worker threads.
  Status Start();

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Begins the graceful drain. Async-signal-safe and idempotent.
  void Shutdown();

  /// Blocks until the drain completes and all threads have exited.
  void Wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

 private:
  /// Per-connection state owned by the I/O thread.
  struct Connection {
    uint64_t id = 0;
    net::UniqueFd fd;
    std::string read_buf;
    std::string write_buf;   ///< unsent response bytes (slow clients)
    size_t write_off = 0;    ///< consumed prefix of write_buf
    int outstanding = 0;     ///< admitted requests not yet answered
    bool peer_closed = false;
    bool close_after_flush = false;
    bool registered_out = false;  ///< EPOLLOUT currently armed
  };

  /// One admitted request waiting for (or held by) a worker. The
  /// deadline is evaluated by the worker that picks it up — the wire
  /// deadline_ms bounds the admission-to-pickup wait, so the request
  /// itself need not be parsed on the I/O thread.
  struct PendingRequest {
    uint64_t conn_id = 0;
    std::string payload;
    std::chrono::steady_clock::time_point admitted_at;
  };

  /// A response travelling from a worker back to the I/O thread.
  struct Completion {
    uint64_t conn_id = 0;
    std::string payload;
  };

  void IoLoop();
  void WorkerLoop();

  // I/O-thread helpers.
  void AcceptNewConnections();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void ExtractFrames(Connection* conn);
  void AdmitOrReject(Connection* conn, std::string payload);
  void QueueResponse(Connection* conn, const PlanResponse& response);
  void SendRawResponse(Connection* conn, std::string payload);
  void DeliverCompletions();
  void UpdateWriteInterest(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void FlushTelemetry();
  void PostCompletion(uint64_t conn_id, std::string payload);
  void Bump(int64_t ServerStats::*field, int64_t delta = 1);

  const PlanningService* service_;
  ServerOptions options_;
  uint16_t port_ = 0;

  net::UniqueFd listen_fd_;
  net::UniqueFd epoll_fd_;
  net::UniqueFd wake_fd_;  ///< eventfd: worker completions + Shutdown()

  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> workers_stop_{false};
  /// Admitted requests not yet answered on their connection (queued,
  /// executing, or response in flight back to the I/O thread).
  std::atomic<int64_t> outstanding_{0};
  std::atomic<int64_t> executing_{0};
  std::atomic<int64_t> open_conns_{0};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;

  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  ///< 0 = listen socket, 1 = eventfd

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

/// Installs SIGTERM + SIGINT handlers that trigger `server->Shutdown()`
/// (the handler only flips an atomic and writes an eventfd). Pass
/// nullptr to uninstall. One server per process can be wired this way.
void InstallShutdownSignalHandlers(PlanningServer* server);

}  // namespace raqo::server

#endif  // RAQO_SERVER_SERVER_H_
