#ifndef RAQO_SERVER_SERVICE_H_
#define RAQO_SERVER_SERVICE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "core/plan_cache.h"
#include "core/raqo_planner.h"
#include "server/protocol.h"

namespace raqo::server {

/// Configuration of the planning service backing the network server.
struct PlanningServiceOptions {
  /// Base planner configuration; per-request knobs override a copy.
  core::RaqoPlannerOptions planner;
  /// Share one thread-safe resource-plan cache across all requests (the
  /// across-query caching of Figure 15(b), served to remote clients).
  /// Only effective when caching is on — via the base options or a
  /// request knob.
  bool share_cache = true;
  /// Lock stripes of the shared cache.
  size_t cache_shards = 8;
};

/// The request handler of the planning server: resolves a PlanRequest
/// against the catalog, runs the RAQO planner, and renders a
/// PlanResponse. Handle() is const and thread-safe — any number of
/// worker threads may call it concurrently; each call plans on a private
/// RaqoPlanner attached to the service-wide shared cache, exactly the
/// shape of the PR-1 concurrent runner (N planners, one sharded cache).
/// With exact-mode caching (or caching off) responses are deterministic:
/// bit-identical to a direct RaqoPlanner call with the same options.
class PlanningService {
 public:
  /// `catalog` must outlive the service.
  PlanningService(const catalog::Catalog* catalog,
                  cost::JoinCostModels models,
                  resource::ClusterConditions cluster,
                  resource::PricingModel pricing = resource::PricingModel(),
                  PlanningServiceOptions options = PlanningServiceOptions());

  /// Plans one request. Never fails out-of-band: every error is encoded
  /// in the response's status/error fields.
  PlanResponse Handle(const PlanRequest& request) const;

  /// Cumulative hit/miss counters of the shared cache (zeros when no
  /// cache is shared).
  core::CacheStats shared_cache_stats() const;
  bool has_shared_cache() const { return shared_cache_ != nullptr; }

  /// The service-wide shared cache (nullptr when share_cache is off).
  /// The persistence layer attaches here; the pointee is thread-safe.
  core::ResourcePlanCache* shared_cache() const {
    return shared_cache_.get();
  }

  const catalog::Catalog& catalog() const { return *catalog_; }
  const PlanningServiceOptions& options() const { return options_; }

 private:
  /// cache_dump: renders one chunk of the shared cache.
  PlanResponse HandleCacheDump(const PlanRequest& request) const;
  /// cache_load: inserts a peer's chunk into the shared cache.
  PlanResponse HandleCacheLoad(const PlanRequest& request) const;

  /// The service-wide resource-search pool, built lazily by the first
  /// request whose search resolves to kParallelBruteForce (Handle is
  /// const and concurrent, hence call_once). Every request-scoped
  /// planner borrows this one pool: without it, each "parallel" request
  /// would spawn and join a private pool — per request, on top of the
  /// server's reactor threads.
  ThreadPool* SearchPool() const;

  const catalog::Catalog* catalog_;
  cost::JoinCostModels models_;
  resource::ClusterConditions cluster_;
  resource::PricingModel pricing_;
  PlanningServiceOptions options_;
  std::shared_ptr<core::ResourcePlanCache> shared_cache_;
  mutable std::once_flag search_pool_once_;
  mutable std::unique_ptr<ThreadPool> search_pool_;
};

}  // namespace raqo::server

#endif  // RAQO_SERVER_SERVICE_H_
