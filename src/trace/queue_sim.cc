#include "trace/queue_sim.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace raqo::trace {

namespace {

struct RunningJob {
  double finish_s;
  int containers;
  bool operator>(const RunningJob& o) const { return finish_s > o.finish_s; }
};

}  // namespace

Result<std::vector<JobOutcome>> SimulateFifoQueue(
    const std::vector<JobSpec>& jobs, int cluster_capacity) {
  if (cluster_capacity <= 0) {
    return Status::InvalidArgument("cluster capacity must be positive");
  }
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(jobs.size());

  std::priority_queue<RunningJob, std::vector<RunningJob>,
                      std::greater<RunningJob>>
      running;
  int used = 0;
  double prev_arrival = 0.0;
  double prev_start = 0.0;

  for (const JobSpec& job : jobs) {
    if (job.arrival_s < prev_arrival) {
      return Status::InvalidArgument("jobs must be sorted by arrival time");
    }
    if (job.runtime_s <= 0.0) {
      return Status::InvalidArgument("job runtime must be positive");
    }
    if (job.containers <= 0 || job.containers > cluster_capacity) {
      return Status::InvalidArgument(
          "job container demand must fit the cluster");
    }
    prev_arrival = job.arrival_s;

    // FIFO: this job cannot start before the previous one started.
    double t = std::max(job.arrival_s, prev_start);
    // Free completed jobs; wait for more completions until it fits.
    while (true) {
      while (!running.empty() && running.top().finish_s <= t) {
        used -= running.top().containers;
        running.pop();
      }
      if (used + job.containers <= cluster_capacity) break;
      // Not enough capacity: advance to the next completion.
      t = running.top().finish_s;
    }

    JobOutcome outcome;
    outcome.arrival_s = job.arrival_s;
    outcome.start_s = t;
    outcome.runtime_s = job.runtime_s;
    outcomes.push_back(outcome);

    running.push(RunningJob{t + job.runtime_s, job.containers});
    used += job.containers;
    prev_start = t;
  }
  return outcomes;
}

namespace {

/// Event-driven greedy-backfill simulation: at every arrival/completion
/// instant, queued jobs are scanned in arrival order and every one that
/// fits the free capacity starts.
Result<std::vector<JobOutcome>> SimulateBackfillQueue(
    const std::vector<JobSpec>& jobs, int cluster_capacity) {
  std::vector<JobOutcome> outcomes(jobs.size());
  std::priority_queue<RunningJob, std::vector<RunningJob>,
                      std::greater<RunningJob>>
      running;
  std::vector<size_t> pending;  // indices, arrival order
  int used = 0;
  size_t next_arrival = 0;
  double prev_arrival = 0.0;

  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].arrival_s < prev_arrival) {
      return Status::InvalidArgument("jobs must be sorted by arrival time");
    }
    prev_arrival = jobs[i].arrival_s;
    if (jobs[i].runtime_s <= 0.0) {
      return Status::InvalidArgument("job runtime must be positive");
    }
    if (jobs[i].containers <= 0 || jobs[i].containers > cluster_capacity) {
      return Status::InvalidArgument(
          "job container demand must fit the cluster");
    }
  }

  auto try_start = [&](double now) {
    for (auto it = pending.begin(); it != pending.end();) {
      const JobSpec& job = jobs[*it];
      if (used + job.containers <= cluster_capacity) {
        outcomes[*it].arrival_s = job.arrival_s;
        outcomes[*it].start_s = now;
        outcomes[*it].runtime_s = job.runtime_s;
        running.push(RunningJob{now + job.runtime_s, job.containers});
        used += job.containers;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (next_arrival < jobs.size() || !pending.empty()) {
    // The next event: an arrival or a completion, whichever is earlier.
    const double arrival_t = next_arrival < jobs.size()
                                 ? jobs[next_arrival].arrival_s
                                 : std::numeric_limits<double>::infinity();
    const double completion_t =
        !running.empty() ? running.top().finish_s
                         : std::numeric_limits<double>::infinity();
    if (!pending.empty() && completion_t <= arrival_t) {
      const double now = completion_t;
      while (!running.empty() && running.top().finish_s <= now) {
        used -= running.top().containers;
        running.pop();
      }
      try_start(now);
      continue;
    }
    if (next_arrival >= jobs.size()) {
      // Pending jobs but no arrivals and no completions can only happen
      // on an empty cluster, where try_start would have admitted them.
      return Status::Internal("backfill simulation deadlocked");
    }
    const double now = arrival_t;
    while (!running.empty() && running.top().finish_s <= now) {
      used -= running.top().containers;
      running.pop();
    }
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival_s <= now) {
      pending.push_back(next_arrival);
      ++next_arrival;
    }
    try_start(now);
  }
  return outcomes;
}

}  // namespace

Result<std::vector<JobOutcome>> SimulateQueue(
    const std::vector<JobSpec>& jobs, int cluster_capacity,
    QueuePolicy policy) {
  if (cluster_capacity <= 0) {
    return Status::InvalidArgument("cluster capacity must be positive");
  }
  switch (policy) {
    case QueuePolicy::kFifo:
      return SimulateFifoQueue(jobs, cluster_capacity);
    case QueuePolicy::kBackfill:
      return SimulateBackfillQueue(jobs, cluster_capacity);
  }
  return Status::InvalidArgument("unknown queue policy");
}

Result<EmpiricalCdf> QueueRuntimeRatioCdf(const WorkloadOptions& options) {
  RAQO_ASSIGN_OR_RETURN(std::vector<JobSpec> jobs, GenerateWorkload(options));
  RAQO_ASSIGN_OR_RETURN(std::vector<JobOutcome> outcomes,
                        SimulateFifoQueue(jobs, options.cluster_capacity));
  std::vector<double> ratios;
  ratios.reserve(outcomes.size());
  for (const JobOutcome& o : outcomes) {
    ratios.push_back(o.queue_to_runtime_ratio());
  }
  return EmpiricalCdf(std::move(ratios));
}

}  // namespace raqo::trace
