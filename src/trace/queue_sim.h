#ifndef RAQO_TRACE_QUEUE_SIM_H_
#define RAQO_TRACE_QUEUE_SIM_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "trace/workload.h"

namespace raqo::trace {

/// Per-job outcome of the queueing simulation.
struct JobOutcome {
  double arrival_s = 0.0;
  double start_s = 0.0;
  double runtime_s = 0.0;

  double queue_time_s() const { return start_s - arrival_s; }
  /// The Figure 1 metric.
  double queue_to_runtime_ratio() const {
    return queue_time_s() / runtime_s;
  }
};

/// Queueing disciplines of the simulated resource manager.
enum class QueuePolicy {
  /// Strict arrival order: a job starts only once everything before it
  /// has started (YARN FIFO scheduler).
  kFifo,
  /// Greedy backfill: whenever capacity frees, any queued job that fits
  /// may start, in arrival order. Improves utilization; can delay jobs
  /// with large requests (the trade-off the paper's scheduler discussion
  /// raises for jobs with precise RAQO resource requests).
  kBackfill,
};

/// Simulates a FIFO capacity queue, the simplest model of a YARN queue:
/// jobs start strictly in arrival order, each when the cluster has enough
/// free containers for its request. Jobs must be sorted by arrival.
Result<std::vector<JobOutcome>> SimulateFifoQueue(
    const std::vector<JobSpec>& jobs, int cluster_capacity);

/// Simulates the queue under the given policy. Jobs must be sorted by
/// arrival; outcomes are returned in the input order.
Result<std::vector<JobOutcome>> SimulateQueue(
    const std::vector<JobSpec>& jobs, int cluster_capacity,
    QueuePolicy policy);

/// Convenience: runs the generator + queue and returns the empirical CDF
/// of queue-time/runtime ratios (the paper's Figure 1 distribution).
Result<EmpiricalCdf> QueueRuntimeRatioCdf(const WorkloadOptions& options);

}  // namespace raqo::trace

#endif  // RAQO_TRACE_QUEUE_SIM_H_
