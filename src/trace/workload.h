#ifndef RAQO_TRACE_WORKLOAD_H_
#define RAQO_TRACE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace raqo::trace {

/// One job of a synthetic production trace: when it was submitted, how
/// long it runs once started, and how many containers it holds while
/// running. Stands in for the Microsoft production traces behind the
/// paper's Figure 1.
struct JobSpec {
  double arrival_s = 0.0;
  double runtime_s = 0.0;
  int containers = 1;
};

/// Parameters of the synthetic workload. Runtimes are log-normal
/// (heavy-tailed, as real analytics jobs are) and arrivals Poisson.
struct WorkloadOptions {
  int num_jobs = 20'000;
  uint64_t seed = 7;
  /// Log-normal runtime parameters: median exp(mu) seconds. Calibrated
  /// (together with offered_load) so the queue simulation reproduces the
  /// paper's Figure 1 headline statistics: >80% of jobs wait at least
  /// their runtime, >20% wait at least 4x their runtime.
  double runtime_log_mu = 4.5;     // median ~90 s
  double runtime_log_sigma = 0.6;  // long tail
  /// Log-normal container demand (rounded, clamped to [1, max]).
  double containers_log_mu = 2.3;  // median ~10 containers
  double containers_log_sigma = 0.8;
  int max_containers = 400;
  /// Offered load relative to cluster capacity: the arrival rate is set
  /// so that (mean runtime x mean containers x rate) = load x capacity.
  /// Shared production clusters run near (or transiently above)
  /// saturation, which is what makes jobs queue.
  double offered_load = 1.045;
  /// Cluster capacity in containers.
  int cluster_capacity = 2'000;
};

/// Generates the job trace; arrival times are sorted. Fails on
/// non-positive parameters.
Result<std::vector<JobSpec>> GenerateWorkload(const WorkloadOptions& options);

}  // namespace raqo::trace

#endif  // RAQO_TRACE_WORKLOAD_H_
