#include "trace/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace raqo::trace {

Result<std::vector<JobSpec>> GenerateWorkload(const WorkloadOptions& options) {
  if (options.num_jobs <= 0) {
    return Status::InvalidArgument("workload needs at least one job");
  }
  if (options.cluster_capacity <= 0 || options.max_containers <= 0) {
    return Status::InvalidArgument("capacities must be positive");
  }
  if (options.offered_load <= 0.0) {
    return Status::InvalidArgument("offered load must be positive");
  }

  Rng rng(options.seed);

  // Mean of a log-normal is exp(mu + sigma^2 / 2).
  const double mean_runtime = std::exp(
      options.runtime_log_mu +
      options.runtime_log_sigma * options.runtime_log_sigma / 2.0);
  const double mean_containers = std::exp(
      options.containers_log_mu +
      options.containers_log_sigma * options.containers_log_sigma / 2.0);
  // offered_load = rate * mean_runtime * mean_containers / capacity.
  const double rate = options.offered_load *
                      static_cast<double>(options.cluster_capacity) /
                      (mean_runtime * mean_containers);

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(options.num_jobs));
  double now = 0.0;
  for (int i = 0; i < options.num_jobs; ++i) {
    now += rng.Exponential(rate);
    JobSpec job;
    job.arrival_s = now;
    job.runtime_s =
        rng.LogNormal(options.runtime_log_mu, options.runtime_log_sigma);
    const double c =
        rng.LogNormal(options.containers_log_mu, options.containers_log_sigma);
    job.containers = std::clamp(static_cast<int>(std::lround(c)), 1,
                                std::min(options.max_containers,
                                         options.cluster_capacity));
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace raqo::trace
