#include "query/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace raqo::query {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kStar,
  kComma,
  kEquals,
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kDot,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

/// Splits the input into tokens; fails on any unexpected character.
Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '.')) {
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.text = sql.substr(i, j - i);
      char* end = nullptr;
      token.number = std::strtod(token.text.c_str(), &end);
      if (end != token.text.c_str() + token.text.size()) {
        return Status::InvalidArgument(
            StrPrintf("malformed number at offset %zu", i));
      }
      i = j;
    } else if (c == '*') {
      token.kind = TokenKind::kStar;
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '=') {
      token.kind = TokenKind::kEquals;
      ++i;
    } else if (c == '<') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        token.kind = TokenKind::kLessEquals;
        i += 2;
      } else {
        token.kind = TokenKind::kLess;
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        token.kind = TokenKind::kGreaterEquals;
        i += 2;
      } else {
        token.kind = TokenKind::kGreater;
        ++i;
      }
    } else if (c == '.') {
      token.kind = TokenKind::kDot;
      ++i;
    } else if (c == ';') {
      token.kind = TokenKind::kSemicolon;
      ++i;
    } else {
      return Status::InvalidArgument(StrPrintf(
          "unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(token));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0.0, sql.size()});
  return tokens;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool IsKeyword(const Token& token, const char* keyword) {
  return token.kind == TokenKind::kIdentifier &&
         Lower(token.text) == keyword;
}

bool IsComparison(TokenKind kind) {
  return kind == TokenKind::kEquals || kind == TokenKind::kLess ||
         kind == TokenKind::kLessEquals || kind == TokenKind::kGreater ||
         kind == TokenKind::kGreaterEquals;
}

FilterOp ToFilterOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEquals:
      return FilterOp::kEq;
    case TokenKind::kLess:
      return FilterOp::kLt;
    case TokenKind::kLessEquals:
      return FilterOp::kLe;
    case TokenKind::kGreater:
      return FilterOp::kGt;
    default:
      return FilterOp::kGe;
  }
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const catalog::Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    RAQO_RETURN_IF_ERROR(ExpectKeyword("select"));
    if (Peek().kind != TokenKind::kStar) {
      return Error("only 'select *' projections are supported");
    }
    Advance();
    RAQO_RETURN_IF_ERROR(ExpectKeyword("from"));
    RAQO_RETURN_IF_ERROR(ParseFromList());
    if (IsKeyword(Peek(), "where")) {
      Advance();
      RAQO_RETURN_IF_ERROR(ParsePredicates());
    }
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after the query");
    }
    RAQO_RETURN_IF_ERROR(ValidatePredicates());
    return std::move(query_);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrPrintf(
        "%s (at offset %zu)", message.c_str(), Peek().offset));
  }

  Status ExpectKeyword(const char* keyword) {
    if (!IsKeyword(Peek(), keyword)) {
      return Error(StrPrintf("expected '%s'", keyword));
    }
    Advance();
    return Status::OK();
  }

  Status ParseFromList() {
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a table name");
      }
      const std::string name = Peek().text;
      Result<catalog::TableId> id = catalog_.FindTable(name);
      if (!id.ok()) return id.status();
      if (std::find(query_.tables.begin(), query_.tables.end(), *id) !=
          query_.tables.end()) {
        return Error("table '" + name + "' appears twice (self-joins are "
                     "not supported)");
      }
      query_.tables.push_back(*id);
      from_names_.push_back(Lower(name));
      Advance();
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  /// Parses `[tbl .] col` into (table, column); table empty if
  /// unqualified.
  Status ParseColumnRef(std::string* table, std::string* column) {
    if (Peek().kind != TokenKind::kIdentifier ||
        IsKeyword(Peek(), "and") || IsKeyword(Peek(), "where")) {
      return Error("expected a column reference");
    }
    const std::string first = Peek().text;
    Advance();
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a column name after '.'");
      }
      *table = Lower(first);
      *column = Peek().text;
      Advance();
    } else {
      table->clear();
      *column = first;
    }
    return Status::OK();
  }

  Status ParsePredicates() {
    while (true) {
      std::string table;
      std::string column;
      RAQO_RETURN_IF_ERROR(ParseColumnRef(&table, &column));
      if (!IsComparison(Peek().kind)) {
        return Error("expected a comparison operator");
      }
      const TokenKind op = Peek().kind;
      Advance();
      if (Peek().kind == TokenKind::kNumber) {
        // Filter: column <cmp> constant.
        FilterPredicate filter;
        filter.table = table;
        filter.column = column;
        filter.op = ToFilterOp(op);
        filter.value = Peek().number;
        Advance();
        query_.filters.push_back(std::move(filter));
      } else {
        // Join: column = column (only equality joins are meaningful).
        if (op != TokenKind::kEquals) {
          return Error("join predicates must use '='");
        }
        JoinPredicate predicate;
        predicate.left_table = std::move(table);
        predicate.left_column = std::move(column);
        RAQO_RETURN_IF_ERROR(ParseColumnRef(&predicate.right_table,
                                            &predicate.right_column));
        query_.predicates.push_back(std::move(predicate));
      }
      if (!IsKeyword(Peek(), "and")) break;
      Advance();
    }
    return Status::OK();
  }

  int FromPosition(const std::string& lowered_name) const {
    for (size_t i = 0; i < from_names_.size(); ++i) {
      if (from_names_[i] == lowered_name) return static_cast<int>(i);
    }
    return -1;
  }

  Status ValidatePredicates() const {
    for (const JoinPredicate& p : query_.predicates) {
      if (p.left_table.empty() || p.right_table.empty()) {
        continue;  // unresolved TPC-H style columns: nothing to check
      }
      const int left = FromPosition(p.left_table);
      const int right = FromPosition(p.right_table);
      if (left < 0 || right < 0) {
        return Status::InvalidArgument(
            "predicate " + p.ToString() +
            " references a table missing from the FROM clause");
      }
      if (left == right) {
        return Status::InvalidArgument("predicate " + p.ToString() +
                                       " joins a table with itself");
      }
      if (!catalog_.join_graph().HasEdge(
              query_.tables[static_cast<size_t>(left)],
              query_.tables[static_cast<size_t>(right)])) {
        return Status::InvalidArgument(
            "predicate " + p.ToString() +
            " has no join edge (and thus no selectivity) in the catalog");
      }
    }
    for (const FilterPredicate& f : query_.filters) {
      if (!f.table.empty() && FromPosition(f.table) < 0) {
        return Status::InvalidArgument(
            "filter " + f.ToString() +
            " references a table missing from the FROM clause");
      }
    }
    return Status::OK();
  }

  const catalog::Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ParsedQuery query_;
  std::vector<std::string> from_names_;
};

/// Resolves a filter to (table id, column stats) within the query's
/// tables: by qualified name, or by unique column-name match.
Result<std::pair<catalog::TableId, const catalog::ColumnDef*>>
ResolveFilterColumn(const catalog::Catalog& catalog,
                    const ParsedQuery& query, const FilterPredicate& f) {
  if (!f.table.empty()) {
    for (catalog::TableId id : query.tables) {
      if (Lower(catalog.table(id).name) == f.table) {
        const catalog::ColumnDef* column =
            catalog.table(id).FindColumn(f.column);
        if (column == nullptr) {
          return Status::NotFound("no statistics for column " +
                                  f.ToString());
        }
        return std::make_pair(id, column);
      }
    }
    return Status::NotFound("filter table not in query: " + f.table);
  }
  // Unqualified: the column name must be unique across the query.
  std::pair<catalog::TableId, const catalog::ColumnDef*> found = {
      catalog::kInvalidTableId, nullptr};
  for (catalog::TableId id : query.tables) {
    const catalog::ColumnDef* column =
        catalog.table(id).FindColumn(f.column);
    if (column == nullptr) continue;
    if (found.second != nullptr) {
      return Status::InvalidArgument("ambiguous filter column: " +
                                     f.column);
    }
    found = {id, column};
  }
  if (found.second == nullptr) {
    return Status::NotFound("no statistics for column " + f.column);
  }
  return found;
}

/// Selectivity of one filter against its column's statistics.
Result<double> FilterSelectivity(const FilterPredicate& f,
                                 const catalog::ColumnDef& column) {
  if (f.op == FilterOp::kEq) {
    if (column.distinct_values <= 0.0) {
      return Status::InvalidArgument(
          "equality filter needs a distinct count: " + f.ToString());
    }
    return 1.0 / column.distinct_values;
  }
  if (!column.has_range || column.max_value <= column.min_value) {
    return Status::InvalidArgument(
        "range filter needs column min/max statistics: " + f.ToString());
  }
  const double span = column.max_value - column.min_value;
  double below = (f.value - column.min_value) / span;  // fraction < value
  below = std::clamp(below, 0.0, 1.0);
  switch (f.op) {
    case FilterOp::kLt:
    case FilterOp::kLe:
      return below;
    case FilterOp::kGt:
    case FilterOp::kGe:
      return 1.0 - below;
    case FilterOp::kEq:
      break;
  }
  return Status::Internal("unhandled filter operator");
}

}  // namespace

std::string JoinPredicate::ToString() const {
  std::string out;
  if (!left_table.empty()) out += left_table + ".";
  out += left_column + " = ";
  if (!right_table.empty()) out += right_table + ".";
  out += right_column;
  return out;
}

const char* FilterOpName(FilterOp op) {
  switch (op) {
    case FilterOp::kEq:
      return "=";
    case FilterOp::kLt:
      return "<";
    case FilterOp::kLe:
      return "<=";
    case FilterOp::kGt:
      return ">";
    case FilterOp::kGe:
      return ">=";
  }
  return "?";
}

std::string FilterPredicate::ToString() const {
  std::string out;
  if (!table.empty()) out += table + ".";
  out += column;
  out += " ";
  out += FilterOpName(op);
  out += StrPrintf(" %g", value);
  return out;
}

Result<ParsedQuery> ParseJoinQuery(const catalog::Catalog& catalog,
                                   const std::string& sql) {
  RAQO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(catalog, std::move(tokens)).Parse();
}

Result<std::vector<std::pair<catalog::TableId, double>>>
DeriveFilterSelectivities(const catalog::Catalog& catalog,
                          const ParsedQuery& query) {
  std::vector<std::pair<catalog::TableId, double>> out;
  for (const FilterPredicate& f : query.filters) {
    RAQO_ASSIGN_OR_RETURN(auto resolved,
                          ResolveFilterColumn(catalog, query, f));
    RAQO_ASSIGN_OR_RETURN(double selectivity,
                          FilterSelectivity(f, *resolved.second));
    bool merged = false;
    for (auto& [table, combined] : out) {
      if (table == resolved.first) {
        combined *= selectivity;  // independence assumption
        merged = true;
        break;
      }
    }
    if (!merged) out.emplace_back(resolved.first, selectivity);
  }
  return out;
}

Result<catalog::Catalog> ApplyFilters(const catalog::Catalog& catalog,
                                      const ParsedQuery& query) {
  RAQO_ASSIGN_OR_RETURN(auto selectivities,
                        DeriveFilterSelectivities(catalog, query));
  catalog::Catalog filtered;
  for (catalog::TableId id : catalog.AllTableIds()) {
    catalog::TableDef def = catalog.table(id);
    for (const auto& [table, selectivity] : selectivities) {
      if (table == id) {
        // Keep at least one row so downstream math stays well-defined.
        def.row_count = std::max(1.0, def.row_count * selectivity);
      }
    }
    RAQO_ASSIGN_OR_RETURN(catalog::TableId new_id,
                          filtered.AddTable(std::move(def)));
    RAQO_CHECK(new_id == id) << "table ids must be preserved";
  }
  for (const catalog::JoinEdge& e : catalog.join_graph().edges()) {
    RAQO_RETURN_IF_ERROR(
        filtered.AddJoin(e.left, e.right, e.selectivity, e.predicate));
  }
  return filtered;
}

}  // namespace raqo::query
