#ifndef RAQO_QUERY_SQL_PARSER_H_
#define RAQO_QUERY_SQL_PARSER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace raqo::query {

/// One equi-join predicate of the WHERE clause.
struct JoinPredicate {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;

  /// "a.x = b.y"
  std::string ToString() const;
};

/// Comparison operators supported in filter predicates.
enum class FilterOp {
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* FilterOpName(FilterOp op);

/// One column-vs-constant filter of the WHERE clause.
struct FilterPredicate {
  std::string table;  // empty when unqualified
  std::string column;
  FilterOp op = FilterOp::kEq;
  double value = 0.0;

  /// "lineitem.l_quantity < 25"
  std::string ToString() const;
};

/// A parsed join query: the relation set RAQO plans, the equi-join
/// predicates that connect it, and the filter predicates on base tables.
struct ParsedQuery {
  /// Table ids, resolved against the catalog, in FROM-clause order.
  std::vector<catalog::TableId> tables;
  std::vector<JoinPredicate> predicates;
  std::vector<FilterPredicate> filters;
};

/// Parses the declarative join queries the paper's experiments are built
/// from (the shape of its running example,
///   select * from orders, lineitem where o_orderkey = l_orderkey):
///
///   SELECT * FROM <table> [, <table>]...
///   [WHERE <pred> [AND <pred>]...] [;]
///   <pred> := <colref> = <colref>            (equi-join)
///           | <colref> <cmp> <number>        (filter)
///   <colref> := [table .] column
///   <cmp> := = | < | <= | > | >=
///
/// Keywords are case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*.
/// Column-only join predicates (the TPC-H style "o_orderkey =
/// l_orderkey") are accepted and left unresolved to tables.
///
/// Validation against the catalog:
///  - every FROM table must exist (NotFound otherwise),
///  - duplicate tables are rejected (no self-joins; the planner's table
///    sets cannot express them),
///  - qualified predicate tables must appear in the FROM clause,
///  - every pair of tables qualified in some join predicate must have a
///    join edge in the catalog (the parser does not invent
///    selectivities).
Result<ParsedQuery> ParseJoinQuery(const catalog::Catalog& catalog,
                                   const std::string& sql);

/// Per-table combined filter selectivity derived from column statistics:
/// range predicates use the uniformity assumption over the column's
/// [min, max] range, equality uses 1/ndv, and multiple filters on one
/// table multiply (independence). Unqualified filter columns are
/// resolved by unique column name across the query's tables. Fails when
/// a filtered column is unknown or lacks the needed statistics.
/// Returns one (table id, selectivity) pair per *filtered* table.
Result<std::vector<std::pair<catalog::TableId, double>>>
DeriveFilterSelectivities(const catalog::Catalog& catalog,
                          const ParsedQuery& query);

/// Convenience: a copy of the catalog with each filtered table's row
/// count scaled by its derived filter selectivity, so the existing
/// planners price the filtered query with no API changes. Join edges and
/// their selectivities carry over unchanged.
Result<catalog::Catalog> ApplyFilters(const catalog::Catalog& catalog,
                                      const ParsedQuery& query);

}  // namespace raqo::query

#endif  // RAQO_QUERY_SQL_PARSER_H_
