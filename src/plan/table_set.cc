#include "plan/table_set.h"

#include "common/strings.h"

namespace raqo::plan {

std::vector<catalog::TableId> TableSet::ToVector() const {
  std::vector<catalog::TableId> out;
  out.reserve(static_cast<size_t>(Count()));
  for (int id = 0; id < kMaxTables; ++id) {
    if (Contains(static_cast<catalog::TableId>(id))) {
      out.push_back(static_cast<catalog::TableId>(id));
    }
  }
  return out;
}

std::string TableSet::ToString() const {
  std::vector<std::string> parts;
  for (catalog::TableId id : ToVector()) {
    parts.push_back(std::to_string(id));
  }
  return "{" + JoinStrings(parts, ", ") + "}";
}

}  // namespace raqo::plan
