#ifndef RAQO_PLAN_PLAN_BUILDER_H_
#define RAQO_PLAN_PLAN_BUILDER_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "plan/plan_node.h"

namespace raqo::plan {

/// Builds a left-deep plan joining the tables in the given order:
/// (((t0 x t1) x t2) x ...). `impls[i]` is the implementation of the join
/// that adds table order[i + 1]; impls must have order.size() - 1 entries.
/// Fails when order has fewer than two tables or repeats a table.
Result<std::unique_ptr<PlanNode>> BuildLeftDeep(
    const std::vector<catalog::TableId>& order,
    const std::vector<JoinImpl>& impls);

/// Convenience: left-deep with the same implementation at every join.
Result<std::unique_ptr<PlanNode>> BuildLeftDeep(
    const std::vector<catalog::TableId>& order, JoinImpl impl);

/// Builds a random (possibly bushy) join tree over `tables`, preferring
/// joins along the catalog's join graph edges: at each step two connected
/// fragments are merged where possible, so cross products only appear when
/// the query itself is disconnected. Join implementations are chosen
/// uniformly at random. Used to seed the randomized planner.
Result<std::unique_ptr<PlanNode>> BuildRandomPlan(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables, Rng& rng);

/// Checks that `plan` covers exactly `tables` (no duplicates, no extras)
/// and, when `require_connected_joins` is set, that every join has at least
/// one join-graph edge between its two sides (i.e. no hidden cross
/// products).
Status ValidatePlan(const catalog::Catalog& catalog, const PlanNode& plan,
                    const std::vector<catalog::TableId>& tables,
                    bool require_connected_joins = false);

}  // namespace raqo::plan

#endif  // RAQO_PLAN_PLAN_BUILDER_H_
