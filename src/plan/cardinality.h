#ifndef RAQO_PLAN_CARDINALITY_H_
#define RAQO_PLAN_CARDINALITY_H_

#include <unordered_map>

#include "catalog/catalog.h"
#include "plan/plan_node.h"
#include "plan/table_set.h"

namespace raqo::plan {

/// Estimated statistics of an intermediate result.
struct RelationStats {
  double rows = 0.0;
  double row_bytes = 0.0;
  double bytes() const { return rows * row_bytes; }
  double gb() const { return bytes() / (1024.0 * 1024.0 * 1024.0); }
};

/// Statistics of one join operator's two inputs, used to derive the cost
/// model's "smaller input size" feature and the simulator's shuffle sizes.
struct JoinInputStats {
  RelationStats left;
  RelationStats right;
  RelationStats output;

  double smaller_bytes() const {
    return left.bytes() < right.bytes() ? left.bytes() : right.bytes();
  }
  double larger_bytes() const {
    return left.bytes() < right.bytes() ? right.bytes() : left.bytes();
  }
  double smaller_gb() const {
    return smaller_bytes() / (1024.0 * 1024.0 * 1024.0);
  }
  double larger_gb() const {
    return larger_bytes() / (1024.0 * 1024.0 * 1024.0);
  }
};

/// Textbook cardinality estimation over the catalog's join graph:
/// |S| = prod(rows of tables in S) * prod(selectivity of edges inside S).
/// Row widths add up across a join (concatenated tuples). Memoized per
/// table set, so repeated planner probes are cheap.
class CardinalityEstimator {
 public:
  /// The estimator keeps a pointer to `catalog`; it must outlive this.
  explicit CardinalityEstimator(const catalog::Catalog* catalog);

  /// Estimated stats of joining exactly the given table set.
  RelationStats Estimate(const TableSet& tables);

  /// Estimated stats of a plan subtree's output.
  RelationStats EstimateNode(const PlanNode& node);

  /// Input/output statistics of a join node.
  JoinInputStats JoinStats(const PlanNode& join);

  /// Number of memoized entries (for tests).
  size_t cache_size() const { return cache_.size(); }

 private:
  const catalog::Catalog* catalog_;
  std::unordered_map<TableSet, RelationStats, TableSetHash> cache_;
};

}  // namespace raqo::plan

#endif  // RAQO_PLAN_CARDINALITY_H_
