#include "plan/plan_dot.h"

#include <functional>

#include "common/strings.h"

namespace raqo::plan {

std::string PlanToDot(const PlanNode& plan,
                      const catalog::Catalog* catalog) {
  std::string out = "digraph plan {\n  node [shape=box, fontname=\"Helvetica\"];\n";
  int counter = 0;
  std::function<int(const PlanNode&)> emit =
      [&](const PlanNode& node) -> int {
    const int id = counter++;
    if (node.is_scan()) {
      const std::string name =
          catalog != nullptr ? catalog->table(node.table()).name
                             : "t" + std::to_string(node.table());
      out += StrPrintf("  n%d [label=\"%s\", style=rounded];\n", id,
                       name.c_str());
      return id;
    }
    std::string label = JoinImplName(node.impl());
    if (node.resources().has_value()) {
      label += StrPrintf("\\n%.3g GB x %.4g",
                         node.resources()->container_size_gb(),
                         node.resources()->num_containers());
    }
    out += StrPrintf("  n%d [label=\"%s\"];\n", id, label.c_str());
    const int left = emit(*node.left());
    const int right = emit(*node.right());
    out += StrPrintf("  n%d -> n%d;\n  n%d -> n%d;\n", id, left, id, right);
    return id;
  };
  emit(plan);
  out += "}\n";
  return out;
}

}  // namespace raqo::plan
