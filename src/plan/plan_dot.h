#ifndef RAQO_PLAN_PLAN_DOT_H_
#define RAQO_PLAN_PLAN_DOT_H_

#include <string>

#include "catalog/catalog.h"
#include "plan/plan_node.h"

namespace raqo::plan {

/// Renders a physical plan tree as a Graphviz digraph. Join nodes show
/// the implementation and, when present, the per-operator resource
/// request — i.e. the joint query/resource plan, visualized. Pass the
/// catalog for table names or nullptr for ids.
///
/// Render with: dot -Tsvg plan.dot -o plan.svg
std::string PlanToDot(const PlanNode& plan,
                      const catalog::Catalog* catalog = nullptr);

}  // namespace raqo::plan

#endif  // RAQO_PLAN_PLAN_DOT_H_
