#ifndef RAQO_PLAN_TABLE_SET_H_
#define RAQO_PLAN_TABLE_SET_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/logging.h"

namespace raqo::plan {

/// A compact set of table ids, supporting up to kMaxTables tables (enough
/// for the paper's largest experiment: 100-table join queries). Used as the
/// DP key in the Selinger enumerator and for plan validity checks.
class TableSet {
 public:
  static constexpr int kMaxTables = 128;

  TableSet() : words_{0, 0} {}

  /// Singleton set {id}.
  static TableSet Of(catalog::TableId id) {
    TableSet s;
    s.Add(id);
    return s;
  }

  /// Set from a list of ids.
  static TableSet FromVector(const std::vector<catalog::TableId>& ids) {
    TableSet s;
    for (catalog::TableId id : ids) s.Add(id);
    return s;
  }

  void Add(catalog::TableId id) {
    RAQO_DCHECK(id >= 0 && id < kMaxTables) << "table id out of range";
    words_[static_cast<size_t>(id) / 64] |= uint64_t{1} << (id % 64);
  }

  void Remove(catalog::TableId id) {
    RAQO_DCHECK(id >= 0 && id < kMaxTables) << "table id out of range";
    words_[static_cast<size_t>(id) / 64] &= ~(uint64_t{1} << (id % 64));
  }

  bool Contains(catalog::TableId id) const {
    RAQO_DCHECK(id >= 0 && id < kMaxTables) << "table id out of range";
    return (words_[static_cast<size_t>(id) / 64] >> (id % 64)) & 1;
  }

  int Count() const {
    return __builtin_popcountll(words_[0]) + __builtin_popcountll(words_[1]);
  }

  bool Empty() const { return words_[0] == 0 && words_[1] == 0; }

  TableSet Union(const TableSet& o) const {
    TableSet s;
    s.words_[0] = words_[0] | o.words_[0];
    s.words_[1] = words_[1] | o.words_[1];
    return s;
  }

  TableSet Intersect(const TableSet& o) const {
    TableSet s;
    s.words_[0] = words_[0] & o.words_[0];
    s.words_[1] = words_[1] & o.words_[1];
    return s;
  }

  TableSet Minus(const TableSet& o) const {
    TableSet s;
    s.words_[0] = words_[0] & ~o.words_[0];
    s.words_[1] = words_[1] & ~o.words_[1];
    return s;
  }

  bool IsSubsetOf(const TableSet& o) const {
    return (words_[0] & ~o.words_[0]) == 0 && (words_[1] & ~o.words_[1]) == 0;
  }

  bool Intersects(const TableSet& o) const {
    return (words_[0] & o.words_[0]) != 0 || (words_[1] & o.words_[1]) != 0;
  }

  bool operator==(const TableSet& o) const { return words_ == o.words_; }
  bool operator!=(const TableSet& o) const { return !(*this == o); }
  bool operator<(const TableSet& o) const {
    return words_[1] != o.words_[1] ? words_[1] < o.words_[1]
                                    : words_[0] < o.words_[0];
  }

  /// Member ids in increasing order.
  std::vector<catalog::TableId> ToVector() const;

  /// Stable hash usable as an unordered_map key.
  size_t Hash() const {
    // Mix the two words (splitmix-style finalizer).
    uint64_t h = words_[0] * 0x9E3779B97F4A7C15ULL + words_[1];
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }

  /// e.g. "{0, 3, 7}".
  std::string ToString() const;

 private:
  std::array<uint64_t, 2> words_;
};

struct TableSetHash {
  size_t operator()(const TableSet& s) const { return s.Hash(); }
};

}  // namespace raqo::plan

#endif  // RAQO_PLAN_TABLE_SET_H_
