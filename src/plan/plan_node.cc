#include "plan/plan_node.h"

#include "common/logging.h"

namespace raqo::plan {

const char* JoinImplName(JoinImpl impl) {
  switch (impl) {
    case JoinImpl::kSortMergeJoin:
      return "SMJ";
    case JoinImpl::kBroadcastHashJoin:
      return "BHJ";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::MakeScan(catalog::TableId table) {
  RAQO_CHECK(table >= 0) << "scan over invalid table id";
  auto node = std::unique_ptr<PlanNode>(new PlanNode());
  node->kind_ = NodeKind::kScan;
  node->table_ = table;
  node->tables_ = TableSet::Of(table);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::MakeJoin(JoinImpl impl,
                                             std::unique_ptr<PlanNode> left,
                                             std::unique_ptr<PlanNode> right) {
  RAQO_CHECK(left != nullptr && right != nullptr)
      << "join children must be non-null";
  RAQO_CHECK(!left->tables_.Intersects(right->tables_))
      << "join children must cover disjoint tables";
  auto node = std::unique_ptr<PlanNode>(new PlanNode());
  node->kind_ = NodeKind::kJoin;
  node->impl_ = impl;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->RecomputeTables();
  return node;
}

catalog::TableId PlanNode::table() const {
  RAQO_CHECK(is_scan()) << "table() on a join node";
  return table_;
}

JoinImpl PlanNode::impl() const {
  RAQO_CHECK(is_join()) << "impl() on a scan node";
  return impl_;
}

void PlanNode::set_impl(JoinImpl impl) {
  RAQO_CHECK(is_join()) << "set_impl() on a scan node";
  impl_ = impl;
}

const PlanNode* PlanNode::left() const {
  RAQO_CHECK(is_join()) << "left() on a scan node";
  return left_.get();
}

const PlanNode* PlanNode::right() const {
  RAQO_CHECK(is_join()) << "right() on a scan node";
  return right_.get();
}

PlanNode* PlanNode::mutable_left() {
  RAQO_CHECK(is_join()) << "mutable_left() on a scan node";
  return left_.get();
}

PlanNode* PlanNode::mutable_right() {
  RAQO_CHECK(is_join()) << "mutable_right() on a scan node";
  return right_.get();
}

void PlanNode::ReplaceLeft(std::unique_ptr<PlanNode> child) {
  RAQO_CHECK(is_join() && child != nullptr);
  left_ = std::move(child);
  RecomputeTables();
}

void PlanNode::ReplaceRight(std::unique_ptr<PlanNode> child) {
  RAQO_CHECK(is_join() && child != nullptr);
  right_ = std::move(child);
  RecomputeTables();
}

std::unique_ptr<PlanNode> PlanNode::TakeLeft() {
  RAQO_CHECK(is_join());
  return std::move(left_);
}

std::unique_ptr<PlanNode> PlanNode::TakeRight() {
  RAQO_CHECK(is_join());
  return std::move(right_);
}

void PlanNode::RecomputeTables() {
  if (is_scan()) {
    tables_ = TableSet::Of(table_);
    return;
  }
  tables_ = TableSet();
  if (left_ != nullptr) tables_ = tables_.Union(left_->tables_);
  if (right_ != nullptr) tables_ = tables_.Union(right_->tables_);
}

int PlanNode::NumJoins() const {
  if (is_scan()) return 0;
  return 1 + left_->NumJoins() + right_->NumJoins();
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  if (is_scan()) {
    auto copy = MakeScan(table_);
    copy->resources_ = resources_;
    return copy;
  }
  auto copy = MakeJoin(impl_, left_->Clone(), right_->Clone());
  copy->resources_ = resources_;
  return copy;
}

void PlanNode::VisitJoins(const std::function<void(PlanNode&)>& fn) {
  if (is_scan()) return;
  left_->VisitJoins(fn);
  right_->VisitJoins(fn);
  fn(*this);
}

void PlanNode::VisitJoins(const std::function<void(const PlanNode&)>& fn)
    const {
  if (is_scan()) return;
  // Call through const references so overload resolution unambiguously
  // picks this const overload for the children.
  const PlanNode& left = *left_;
  const PlanNode& right = *right_;
  left.VisitJoins(fn);
  right.VisitJoins(fn);
  fn(*this);
}

std::vector<catalog::TableId> PlanNode::LeafOrder() const {
  std::vector<catalog::TableId> out;
  if (is_scan()) {
    out.push_back(table_);
    return out;
  }
  for (catalog::TableId t : left_->LeafOrder()) out.push_back(t);
  for (catalog::TableId t : right_->LeafOrder()) out.push_back(t);
  return out;
}

bool PlanNode::StructurallyEquals(const PlanNode& other) const {
  if (kind_ != other.kind_) return false;
  if (is_scan()) return table_ == other.table_;
  return impl_ == other.impl_ && left_->StructurallyEquals(*other.left_) &&
         right_->StructurallyEquals(*other.right_);
}

std::string PlanNode::ToString(const catalog::Catalog* catalog) const {
  if (is_scan()) {
    if (catalog != nullptr) return catalog->table(table_).name;
    return "t" + std::to_string(table_);
  }
  std::string out = JoinImplName(impl_);
  out += "(";
  out += left_->ToString(catalog);
  out += ", ";
  out += right_->ToString(catalog);
  out += ")";
  if (resources_.has_value()) {
    out += resources_->ToString();
  }
  return out;
}

}  // namespace raqo::plan
