#include "plan/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace raqo::plan {

CardinalityEstimator::CardinalityEstimator(const catalog::Catalog* catalog)
    : catalog_(catalog) {
  RAQO_CHECK(catalog != nullptr);
}

RelationStats CardinalityEstimator::Estimate(const TableSet& tables) {
  RAQO_CHECK(!tables.Empty()) << "cannot estimate the empty relation";
  auto it = cache_.find(tables);
  if (it != cache_.end()) return it->second;

  RelationStats stats;
  stats.rows = 1.0;
  stats.row_bytes = 0.0;
  // Wide joins (the paper evaluates up to 100-way) can overflow a plain
  // product of row counts to +inf before the selectivities pull it back
  // down (and inf * 0 is NaN); track the log alongside and fall back to
  // it when the direct product leaves the finite range.
  double log_rows = 0.0;
  const std::vector<catalog::TableId> ids = tables.ToVector();
  for (catalog::TableId id : ids) {
    const catalog::TableDef& t = catalog_->table(id);
    stats.rows *= t.row_count;
    log_rows += std::log(t.row_count);
    stats.row_bytes += t.row_bytes;
  }
  for (const catalog::JoinEdge& e : catalog_->join_graph().edges()) {
    if (tables.Contains(e.left) && tables.Contains(e.right)) {
      stats.rows *= e.selectivity;
      log_rows += std::log(e.selectivity);
    }
  }
  if (!std::isfinite(stats.rows) || stats.rows <= 0.0) {
    stats.rows = std::exp(std::clamp(log_rows, -700.0, 700.0));
  }
  cache_.emplace(tables, stats);
  return stats;
}

RelationStats CardinalityEstimator::EstimateNode(const PlanNode& node) {
  return Estimate(node.tables());
}

JoinInputStats CardinalityEstimator::JoinStats(const PlanNode& join) {
  RAQO_CHECK(join.is_join()) << "JoinStats on a scan node";
  JoinInputStats stats;
  stats.left = Estimate(join.left()->tables());
  stats.right = Estimate(join.right()->tables());
  stats.output = Estimate(join.tables());
  return stats;
}

}  // namespace raqo::plan
