#ifndef RAQO_PLAN_PLAN_NODE_H_
#define RAQO_PLAN_PLAN_NODE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "plan/table_set.h"
#include "resource/resource_config.h"

namespace raqo::plan {

/// Physical join operator implementations considered by the paper
/// (Section III-A): shuffle sort-merge join and broadcast hash join.
enum class JoinImpl {
  kSortMergeJoin,
  kBroadcastHashJoin,
};

/// Short label: "SMJ" / "BHJ".
const char* JoinImplName(JoinImpl impl);

/// Number of join implementations (the `a` in the paper's search-space
/// formula n! * (a * rp * rc)^n).
inline constexpr int kNumJoinImpls = 2;

/// Node kinds of a physical plan tree.
enum class NodeKind {
  kScan,
  kJoin,
};

/// A physical plan tree node. Scans are leaves; joins are inner nodes with
/// an operator implementation and, once resource planning has run, a
/// per-operator resource configuration (the paper plans resources
/// independently per join because joins sit at shuffle boundaries,
/// Section VI-B).
class PlanNode {
 public:
  /// Creates a scan leaf over `table`.
  static std::unique_ptr<PlanNode> MakeScan(catalog::TableId table);

  /// Creates a join over two subtrees. Both children must be non-null and
  /// must cover disjoint table sets (checked).
  static std::unique_ptr<PlanNode> MakeJoin(JoinImpl impl,
                                            std::unique_ptr<PlanNode> left,
                                            std::unique_ptr<PlanNode> right);

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_join() const { return kind_ == NodeKind::kJoin; }
  bool is_scan() const { return kind_ == NodeKind::kScan; }

  /// Scan accessors; only valid on scan nodes.
  catalog::TableId table() const;

  /// Join accessors; only valid on join nodes.
  JoinImpl impl() const;
  void set_impl(JoinImpl impl);
  const PlanNode* left() const;
  const PlanNode* right() const;
  PlanNode* mutable_left();
  PlanNode* mutable_right();

  /// Replaces a child subtree; only valid on join nodes. Recomputes the
  /// cached table set bottom-up for this node.
  void ReplaceLeft(std::unique_ptr<PlanNode> child);
  void ReplaceRight(std::unique_ptr<PlanNode> child);
  std::unique_ptr<PlanNode> TakeLeft();
  std::unique_ptr<PlanNode> TakeRight();

  /// The set of base tables under this node.
  const TableSet& tables() const { return tables_; }

  /// The per-operator resource configuration chosen by resource planning,
  /// if any. Scans may carry one too (one cost-model per sub-plan kind in
  /// the paper), but the default RAQO pipeline assigns them to joins.
  const std::optional<resource::ResourceConfig>& resources() const {
    return resources_;
  }
  void set_resources(const resource::ResourceConfig& config) {
    resources_ = config;
  }
  void clear_resources() { resources_.reset(); }

  /// Number of join operators in this subtree.
  int NumJoins() const;

  /// Deep copy (including implementations and resource assignments).
  std::unique_ptr<PlanNode> Clone() const;

  /// Post-order traversal over join nodes only.
  void VisitJoins(const std::function<void(PlanNode&)>& fn);
  void VisitJoins(const std::function<void(const PlanNode&)>& fn) const;

  /// Leaf tables left-to-right.
  std::vector<catalog::TableId> LeafOrder() const;

  /// Structural equality: same shape, implementations, and tables
  /// (resource assignments are not compared).
  bool StructurallyEquals(const PlanNode& other) const;

  /// Compact rendering like "SMJ(BHJ(orders, customer), lineitem)"; pass
  /// the catalog for table names, or nullptr to print table ids.
  std::string ToString(const catalog::Catalog* catalog = nullptr) const;

 private:
  PlanNode() = default;

  void RecomputeTables();

  NodeKind kind_ = NodeKind::kScan;
  catalog::TableId table_ = catalog::kInvalidTableId;
  JoinImpl impl_ = JoinImpl::kSortMergeJoin;
  std::unique_ptr<PlanNode> left_;
  std::unique_ptr<PlanNode> right_;
  TableSet tables_;
  std::optional<resource::ResourceConfig> resources_;
};

}  // namespace raqo::plan

#endif  // RAQO_PLAN_PLAN_NODE_H_
