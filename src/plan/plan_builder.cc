#include "plan/plan_builder.h"

#include <algorithm>

namespace raqo::plan {

Result<std::unique_ptr<PlanNode>> BuildLeftDeep(
    const std::vector<catalog::TableId>& order,
    const std::vector<JoinImpl>& impls) {
  if (order.size() < 2) {
    return Status::InvalidArgument("left-deep plan needs at least 2 tables");
  }
  if (impls.size() != order.size() - 1) {
    return Status::InvalidArgument(
        "left-deep plan needs exactly one join impl per join");
  }
  TableSet seen;
  for (catalog::TableId t : order) {
    if (t < 0 || t >= TableSet::kMaxTables) {
      return Status::OutOfRange("table id out of supported range");
    }
    if (seen.Contains(t)) {
      return Status::InvalidArgument("duplicate table in join order");
    }
    seen.Add(t);
  }
  std::unique_ptr<PlanNode> plan = PlanNode::MakeScan(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    plan = PlanNode::MakeJoin(impls[i - 1], std::move(plan),
                              PlanNode::MakeScan(order[i]));
  }
  return plan;
}

Result<std::unique_ptr<PlanNode>> BuildLeftDeep(
    const std::vector<catalog::TableId>& order, JoinImpl impl) {
  if (order.size() < 2) {
    return Status::InvalidArgument("left-deep plan needs at least 2 tables");
  }
  return BuildLeftDeep(order,
                       std::vector<JoinImpl>(order.size() - 1, impl));
}

Result<std::unique_ptr<PlanNode>> BuildRandomPlan(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables, Rng& rng) {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot plan an empty table set");
  }
  std::vector<std::unique_ptr<PlanNode>> fragments;
  fragments.reserve(tables.size());
  TableSet seen;
  // fragment_of[table id] -> index into `fragments` (or -1).
  std::vector<int> fragment_of(TableSet::kMaxTables, -1);
  for (catalog::TableId t : tables) {
    if (seen.Contains(t)) {
      return Status::InvalidArgument("duplicate table in query");
    }
    seen.Add(t);
    fragment_of[static_cast<size_t>(t)] =
        static_cast<int>(fragments.size());
    fragments.push_back(PlanNode::MakeScan(t));
  }

  // Join-graph edges internal to the query; merges are driven by these so
  // random plans avoid cross products whenever the query is connected.
  std::vector<std::pair<catalog::TableId, catalog::TableId>> edges;
  for (const catalog::JoinEdge& e : catalog.join_graph().edges()) {
    if (seen.Contains(e.left) && seen.Contains(e.right)) {
      edges.emplace_back(e.left, e.right);
    }
  }

  size_t live_fragments = fragments.size();
  while (live_fragments > 1) {
    // Candidate edges: those whose endpoints sit in different fragments.
    std::vector<std::pair<int, int>> candidates;
    for (const auto& [a, b] : edges) {
      const int fa = fragment_of[static_cast<size_t>(a)];
      const int fb = fragment_of[static_cast<size_t>(b)];
      if (fa != fb) candidates.emplace_back(fa, fb);
    }
    int pick_a;
    int pick_b;
    if (!candidates.empty()) {
      const auto k = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1));
      pick_a = candidates[k].first;
      pick_b = candidates[k].second;
    } else {
      // Disconnected query: cross product between the first two live
      // fragments.
      pick_a = -1;
      pick_b = -1;
      for (size_t i = 0; i < fragments.size() && pick_b < 0; ++i) {
        if (fragments[i] == nullptr) continue;
        (pick_a < 0 ? pick_a : pick_b) = static_cast<int>(i);
      }
    }
    const JoinImpl impl = rng.Bernoulli(0.5)
                              ? JoinImpl::kSortMergeJoin
                              : JoinImpl::kBroadcastHashJoin;
    auto& left_slot = fragments[static_cast<size_t>(pick_a)];
    auto& right_slot = fragments[static_cast<size_t>(pick_b)];
    std::unique_ptr<PlanNode> merged =
        rng.Bernoulli(0.5)
            ? PlanNode::MakeJoin(impl, std::move(left_slot),
                                 std::move(right_slot))
            : PlanNode::MakeJoin(impl, std::move(right_slot),
                                 std::move(left_slot));
    // The merged fragment takes slot pick_a; retag its members.
    for (catalog::TableId t : merged->tables().ToVector()) {
      fragment_of[static_cast<size_t>(t)] = pick_a;
    }
    fragments[static_cast<size_t>(pick_a)] = std::move(merged);
    fragments[static_cast<size_t>(pick_b)] = nullptr;
    --live_fragments;
  }
  for (auto& fragment : fragments) {
    if (fragment != nullptr) return std::move(fragment);
  }
  return Status::Internal("random plan construction lost every fragment");
}

Status ValidatePlan(const catalog::Catalog& catalog, const PlanNode& plan,
                    const std::vector<catalog::TableId>& tables,
                    bool require_connected_joins) {
  const TableSet expected = TableSet::FromVector(tables);
  if (plan.tables() != expected) {
    return Status::InvalidArgument("plan covers " + plan.tables().ToString() +
                                   " but query is " + expected.ToString());
  }
  // Leaf count equal to table count implies no duplicates.
  if (plan.LeafOrder().size() != tables.size()) {
    return Status::InvalidArgument("plan leaf count mismatch");
  }
  if (require_connected_joins) {
    Status status = Status::OK();
    plan.VisitJoins([&](const PlanNode& join) {
      if (!status.ok()) return;
      bool found = false;
      for (catalog::TableId a : join.left()->tables().ToVector()) {
        for (catalog::TableId b : join.right()->tables().ToVector()) {
          if (catalog.join_graph().HasEdge(a, b)) {
            found = true;
            return;
          }
        }
      }
      if (!found) {
        status = Status::InvalidArgument(
            "plan contains a cross product at " + join.ToString(&catalog));
      }
    });
    return status;
  }
  return Status::OK();
}

}  // namespace raqo::plan
