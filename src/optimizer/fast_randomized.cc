#include "optimizer/fast_randomized.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_cost.h"
#include "plan/cardinality.h"
#include "plan/plan_builder.h"

namespace raqo::optimizer {

namespace {

/// Collects mutable pointers to every join node of the tree.
std::vector<plan::PlanNode*> CollectJoins(plan::PlanNode& root) {
  std::vector<plan::PlanNode*> joins;
  root.VisitJoins([&](plan::PlanNode& j) { joins.push_back(&j); });
  return joins;
}

/// Applies one random mutation in place. Returns false when the chosen
/// mutation is not applicable to the picked node (caller just retries).
bool MutateOnce(plan::PlanNode& root, Rng& rng) {
  std::vector<plan::PlanNode*> joins = CollectJoins(root);
  if (joins.empty()) return false;
  plan::PlanNode* node = joins[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(joins.size()) - 1))];

  switch (rng.UniformInt(0, 3)) {
    case 0: {  // exchange (commutativity): swap the two children
      auto l = node->TakeLeft();
      auto r = node->TakeRight();
      node->ReplaceLeft(std::move(r));
      node->ReplaceRight(std::move(l));
      return true;
    }
    case 1: {  // left associativity: (A JOIN B) JOIN C -> A JOIN (B JOIN C)
      if (!node->mutable_left()->is_join()) return false;
      auto lower = node->TakeLeft();   // A JOIN B
      auto c = node->TakeRight();      // C
      auto a = lower->TakeLeft();      // A
      auto b = lower->TakeRight();     // B
      lower->ReplaceLeft(std::move(b));
      lower->ReplaceRight(std::move(c));  // lower becomes B JOIN C
      node->ReplaceLeft(std::move(a));
      node->ReplaceRight(std::move(lower));
      return true;
    }
    case 2: {  // right associativity: A JOIN (B JOIN C) -> (A JOIN B) JOIN C
      if (!node->mutable_right()->is_join()) return false;
      auto a = node->TakeLeft();       // A
      auto lower = node->TakeRight();  // B JOIN C
      auto b = lower->TakeLeft();      // B
      auto c = lower->TakeRight();     // C
      lower->ReplaceLeft(std::move(a));
      lower->ReplaceRight(std::move(b));  // lower becomes A JOIN B
      node->ReplaceLeft(std::move(lower));
      node->ReplaceRight(std::move(c));
      return true;
    }
    default: {  // operator implementation flip
      node->set_impl(node->impl() == plan::JoinImpl::kSortMergeJoin
                         ? plan::JoinImpl::kBroadcastHashJoin
                         : plan::JoinImpl::kSortMergeJoin);
      return true;
    }
  }
}

/// Epsilon-approximate Pareto archive insertion. Returns true when the
/// candidate was admitted.
bool ArchiveInsert(std::vector<ParetoEntry>& archive,
                   std::unique_ptr<plan::PlanNode> plan,
                   const cost::CostVector& cost, double eps) {
  for (const ParetoEntry& e : archive) {
    if (e.cost.ApproxDominates(cost, eps)) return false;
  }
  archive.erase(std::remove_if(archive.begin(), archive.end(),
                               [&](const ParetoEntry& e) {
                                 return cost.Dominates(e.cost);
                               }),
                archive.end());
  ParetoEntry entry;
  entry.plan = std::move(plan);
  entry.cost = cost;
  archive.push_back(std::move(entry));
  return true;
}

}  // namespace

Result<MultiObjectiveResult> FastRandomizedPlanner::Plan(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables,
    PlanCostEvaluator& evaluator) const {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot plan an empty table set");
  }
  if (options_.iterations < 1 || options_.moves_per_iteration < 1 ||
      options_.seed_plans < 1) {
    return Status::InvalidArgument("randomized planner options invalid");
  }

  Stopwatch watch;
  evaluator.ResetCounters();
  PlanningStats stats;
  Rng rng(options_.seed);
  plan::CardinalityEstimator estimator(&catalog);

  MultiObjectiveResult result;

  if (tables.size() == 1) {
    ParetoEntry entry;
    entry.plan = plan::PlanNode::MakeScan(tables[0]);
    result.frontier.push_back(std::move(entry));
    result.stats.wall_ms = watch.ElapsedMillis();
    return result;
  }

  obs::Span span;
  if (obs::TracingOn()) {
    span = obs::DefaultTracer().StartSpan("planner.randomized");
    span.SetAttr("num_tables", static_cast<int64_t>(tables.size()));
    span.SetAttr("iterations", static_cast<int64_t>(options_.iterations));
  }
  // Search counters, kept in locals on the hot path and flushed to the
  // metrics registry once per planning run.
  int64_t moves = 0;
  int64_t admitted = 0;
  int64_t infeasible = 0;

  // Seed the archive with random plans. Random seeding can produce
  // infeasible plans (e.g. all-BHJ over huge inputs); keep drawing a
  // bounded number of times.
  int seeded = 0;
  for (int attempt = 0; attempt < options_.seed_plans * 20 &&
                        seeded < options_.seed_plans;
       ++attempt) {
    RAQO_ASSIGN_OR_RETURN(std::unique_ptr<plan::PlanNode> candidate,
                          plan::BuildRandomPlan(catalog, tables, rng));
    ++stats.plans_considered;
    Result<cost::CostVector> cost =
        EvaluatePlanCost(*candidate, estimator, evaluator);
    if (!cost.ok()) {
      ++infeasible;
      continue;
    }
    admitted += ArchiveInsert(result.frontier, std::move(candidate), *cost,
                              options_.approx_eps)
                    ? 1
                    : 0;
    ++seeded;
  }
  if (result.frontier.empty()) {
    // Deterministic fallback: all-SMJ left-deep plan (SMJ is always
    // feasible in the execution model).
    RAQO_ASSIGN_OR_RETURN(
        std::unique_ptr<plan::PlanNode> fallback,
        plan::BuildLeftDeep(tables, plan::JoinImpl::kSortMergeJoin));
    ++stats.plans_considered;
    RAQO_ASSIGN_OR_RETURN(cost::CostVector cost,
                          EvaluatePlanCost(*fallback, estimator, evaluator));
    ArchiveInsert(result.frontier, std::move(fallback), cost,
                  options_.approx_eps);
  }

  // Improvement phases: mutate random archive members.
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (int move = 0; move < options_.moves_per_iteration; ++move) {
      ++moves;
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(result.frontier.size()) - 1));
      std::unique_ptr<plan::PlanNode> candidate =
          result.frontier[pick].plan->Clone();
      // One to three chained mutations per move.
      const int64_t k = rng.UniformInt(1, 3);
      bool mutated = false;
      for (int64_t m = 0; m < k; ++m) mutated |= MutateOnce(*candidate, rng);
      if (!mutated) continue;
      ++stats.plans_considered;
      Result<cost::CostVector> cost =
          EvaluatePlanCost(*candidate, estimator, evaluator);
      if (!cost.ok()) {
        ++infeasible;  // infeasible mutation
        continue;
      }
      admitted += ArchiveInsert(result.frontier, std::move(candidate), *cost,
                                options_.approx_eps)
                      ? 1
                      : 0;
    }
  }

  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const ParetoEntry& a, const ParetoEntry& b) {
              return a.cost.seconds < b.cost.seconds;
            });

  if (span.recording()) {
    span.SetAttr("moves", moves);
    span.SetAttr("admitted", admitted);
    span.SetAttr("infeasible", infeasible);
    span.SetAttr("frontier_size",
                 static_cast<int64_t>(result.frontier.size()));
    span.SetAttr("plans_considered", stats.plans_considered);
  }
  if (obs::MetricsOn()) {
    static obs::Counter* runs =
        obs::DefaultMetrics().GetCounter("planner.randomized.runs");
    static obs::Counter* moves_total =
        obs::DefaultMetrics().GetCounter("planner.randomized.moves");
    static obs::Counter* admitted_total =
        obs::DefaultMetrics().GetCounter("planner.randomized.admitted");
    static obs::Counter* infeasible_total =
        obs::DefaultMetrics().GetCounter("planner.randomized.infeasible");
    static obs::Counter* plans_total = obs::DefaultMetrics().GetCounter(
        "planner.randomized.plans_considered");
    runs->Add(1);
    moves_total->Add(moves);
    admitted_total->Add(admitted);
    infeasible_total->Add(infeasible);
    plans_total->Add(stats.plans_considered);
  }

  stats.operator_cost_calls = evaluator.operator_cost_calls();
  stats.resource_configs_explored = evaluator.resource_configs_explored();
  stats.wall_ms = watch.ElapsedMillis();
  result.stats = stats;
  return result;
}

Result<PlannedQuery> FastRandomizedPlanner::PlanBest(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables,
    PlanCostEvaluator& evaluator) const {
  RAQO_ASSIGN_OR_RETURN(MultiObjectiveResult multi,
                        Plan(catalog, tables, evaluator));
  if (multi.frontier.empty()) {
    return Status::Internal("randomized planner produced no feasible plan");
  }
  size_t best = 0;
  for (size_t i = 1; i < multi.frontier.size(); ++i) {
    if (multi.frontier[i].cost.Weighted(options_.time_weight) <
        multi.frontier[best].cost.Weighted(options_.time_weight)) {
      best = i;
    }
  }
  PlannedQuery out;
  out.plan = std::move(multi.frontier[best].plan);
  out.cost = multi.frontier[best].cost;
  out.stats = multi.stats;
  return out;
}

}  // namespace raqo::optimizer
