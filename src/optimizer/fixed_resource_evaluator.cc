#include "optimizer/fixed_resource_evaluator.h"

#include "common/strings.h"
#include "cost/features.h"

namespace raqo::optimizer {

FixedResourceEvaluator::FixedResourceEvaluator(
    cost::JoinCostModels models, resource::ResourceConfig config,
    resource::PricingModel pricing, double bhj_capacity_factor)
    : models_(std::move(models)),
      config_(config),
      pricing_(pricing),
      bhj_capacity_factor_(bhj_capacity_factor) {}

Result<OperatorCost> FixedResourceEvaluator::CostJoinImpl(
    const JoinContext& context) {
  const double ss_gb = context.smaller_gb();
  if (context.impl == plan::JoinImpl::kBroadcastHashJoin &&
      ss_gb > config_.container_size_gb() * bhj_capacity_factor_) {
    return Status::ResourceExhausted(StrPrintf(
        "BHJ build side %.2f GB does not fit %.2f GB containers", ss_gb,
        config_.container_size_gb()));
  }
  cost::JoinFeatures features;
  features.smaller_gb = ss_gb;
  features.larger_gb = context.larger_gb();
  features.container_size_gb = config_.container_size_gb();
  features.num_containers = config_.num_containers();

  const double seconds =
      models_.ForImpl(context.impl).PredictSeconds(features);
  OperatorCost out;
  out.cost.seconds = seconds;
  out.cost.dollars = pricing_.Cost(config_, seconds);
  out.resources = config_;
  AddResourceConfigsExplored(1);
  return out;
}

}  // namespace raqo::optimizer
