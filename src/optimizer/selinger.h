#ifndef RAQO_OPTIMIZER_SELINGER_H_
#define RAQO_OPTIMIZER_SELINGER_H_

#include <limits>
#include <vector>

#include "catalog/catalog.h"
#include "common/arena.h"
#include "common/result.h"
#include "optimizer/cost_evaluator.h"
#include "optimizer/planner_result.h"

namespace raqo::optimizer {

/// Options of the System R-style planner.
struct SelingerOptions {
  /// Scalarization weight: 1.0 optimizes pure execution time, 0.0 pure
  /// monetary cost.
  double time_weight = 1.0;
  /// Joins are only placed along join-graph edges; when a query subset is
  /// unreachable without a cross product, a cross-product fallback pass
  /// runs for that subset.
  bool avoid_cross_products = true;
  /// Dynamic programming over subsets is exponential; refuse beyond this.
  int max_tables = 20;
  /// Scratch arena for the 2^n DP memo, the adjacency table and the
  /// back-pointer chain (borrowed, must outlive the call; nullptr uses a
  /// run-local arena). The returned plan is never arena-allocated, so
  /// the owner may Reset() the arena between queries (docs/PERF.md).
  Arena* arena = nullptr;
  /// Known upper bound on the optimal plan's scalarized cost — an
  /// incumbent, e.g. the cost of a previously planned join order for the
  /// same query. Extensions from DP prefixes costing strictly more are
  /// deferred and only evaluated if the subset would otherwise stay
  /// unreachable, so subset reachability — and with it the cross-product
  /// fallback — fires exactly as in the unbounded run. Prefix costs
  /// never exceed plan totals (operator costs are non-negative), hence
  /// any bound >= the true optimum leaves the returned plan bit-identical
  /// while skipping the evaluator calls that dominate planning time.
  /// +infinity disables the pruning.
  double cost_upper_bound = std::numeric_limits<double>::infinity();
};

/// The traditional Selinger (System R) bottom-up dynamic-programming
/// optimizer for left-deep join trees [13], one of the two query planners
/// the paper integrates cost-based RAQO with (Section VII-A). Operator
/// implementations (SMJ/BHJ) are chosen per join through the pluggable
/// cost evaluator, which may or may not perform resource planning.
class SelingerPlanner {
 public:
  explicit SelingerPlanner(SelingerOptions options = SelingerOptions())
      : options_(options) {}

  /// Plans the join of `tables` over `catalog`. The returned plan is
  /// left-deep and covers exactly `tables`. The evaluator's counters are
  /// reset at the start of the run and folded into the returned stats.
  Result<PlannedQuery> Plan(const catalog::Catalog& catalog,
                            const std::vector<catalog::TableId>& tables,
                            PlanCostEvaluator& evaluator) const;

 private:
  SelingerOptions options_;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_SELINGER_H_
