#ifndef RAQO_OPTIMIZER_PLAN_COST_H_
#define RAQO_OPTIMIZER_PLAN_COST_H_

#include "common/result.h"
#include "cost/cost_vector.h"
#include "optimizer/cost_evaluator.h"
#include "plan/cardinality.h"
#include "plan/plan_node.h"

namespace raqo::optimizer {

/// Costs a whole plan tree as the sum of its join operators' costs
/// (Section VI-A: joins sit at shuffle boundaries; other operators are
/// pipelined and not charged separately). When `attach_resources` is set,
/// the resource configuration the evaluator chose for each join is
/// recorded on the plan node, turning the tree into a joint
/// query/resource plan. Fails when any operator is infeasible.
Result<cost::CostVector> EvaluatePlanCost(
    plan::PlanNode& plan, plan::CardinalityEstimator& estimator,
    PlanCostEvaluator& evaluator, bool attach_resources = true);

/// Read-only variant: costs the plan without mutating it.
Result<cost::CostVector> EvaluatePlanCostConst(
    const plan::PlanNode& plan, plan::CardinalityEstimator& estimator,
    PlanCostEvaluator& evaluator);

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_PLAN_COST_H_
