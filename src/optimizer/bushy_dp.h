#ifndef RAQO_OPTIMIZER_BUSHY_DP_H_
#define RAQO_OPTIMIZER_BUSHY_DP_H_

#include <limits>
#include <vector>

#include "catalog/catalog.h"
#include "common/arena.h"
#include "common/result.h"
#include "optimizer/cost_evaluator.h"
#include "optimizer/planner_result.h"

namespace raqo::optimizer {

/// Options of the bushy dynamic-programming planner.
struct BushyDpOptions {
  /// Scalarization weight: 1.0 optimizes execution time, 0.0 money.
  double time_weight = 1.0;
  /// Only join subsets connected through the join graph; a cross-product
  /// fallback pass handles disconnected queries.
  bool avoid_cross_products = true;
  /// Subset-pair enumeration is O(3^n); refuse beyond this.
  int max_tables = 14;
  /// Scratch arena for the DP memo and connectivity tables (borrowed,
  /// must outlive the call; nullptr uses a run-local arena). The
  /// returned plan is never arena-allocated, so the owner may Reset()
  /// the arena between queries (docs/PERF.md).
  Arena* arena = nullptr;
  /// Known upper bound on the optimal plan's scalarized cost. Splits
  /// whose parts already cost strictly more are deferred and only
  /// evaluated if the subset would otherwise stay unreachable — same
  /// bit-identity contract as SelingerOptions::cost_upper_bound.
  /// +infinity disables the pruning.
  double cost_upper_bound = std::numeric_limits<double>::infinity();
};

/// An exhaustive bottom-up optimizer over *bushy* join trees (DPsub-style
/// enumeration of subset splits). The paper's Selinger baseline covers
/// left-deep trees only, while its randomized planner roams the bushy
/// space; this planner closes the gap by finding the exact bushy optimum
/// for moderate query sizes, so the randomized planner's plan quality can
/// be measured against ground truth. Costing goes through the same
/// pluggable evaluator, so it too runs as plain QO or as RAQO.
class BushyDpPlanner {
 public:
  explicit BushyDpPlanner(BushyDpOptions options = BushyDpOptions())
      : options_(options) {}

  /// Plans the join of `tables`; the result may be any binary tree shape.
  Result<PlannedQuery> Plan(const catalog::Catalog& catalog,
                            const std::vector<catalog::TableId>& tables,
                            PlanCostEvaluator& evaluator) const;

 private:
  BushyDpOptions options_;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_BUSHY_DP_H_
