#include "optimizer/bushy_dp.h"

#include <functional>
#include <limits>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/cardinality.h"
#include "plan/table_set.h"

namespace raqo::optimizer {

namespace {

struct DpEntry {
  bool valid = false;
  double scalar = std::numeric_limits<double>::infinity();
  cost::CostVector cost;
  /// Left part of the winning split (0 for singleton subsets); the right
  /// part is mask ^ left_mask.
  uint32_t left_mask = 0;
  plan::JoinImpl impl = plan::JoinImpl::kSortMergeJoin;
  std::optional<resource::ResourceConfig> resources;
};

// The memo lives in the planner arena, which runs no destructors.
static_assert(std::is_trivially_destructible_v<DpEntry>,
              "DP entries must stay trivially destructible (arena scratch)");

}  // namespace

Result<PlannedQuery> BushyDpPlanner::Plan(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables,
    PlanCostEvaluator& evaluator) const {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot plan an empty table set");
  }
  const int n = static_cast<int>(tables.size());
  if (n > options_.max_tables) {
    return Status::Unsupported(
        "bushy DP enumeration limited to " +
        std::to_string(options_.max_tables) +
        " tables; use the randomized planner for larger queries");
  }
  {
    plan::TableSet dedup = plan::TableSet::FromVector(tables);
    if (dedup.Count() != n) {
      return Status::InvalidArgument("duplicate table in query");
    }
  }

  Stopwatch watch;
  evaluator.ResetCounters();
  PlanningStats stats;
  plan::CardinalityEstimator estimator(&catalog);

  if (n == 1) {
    PlannedQuery result;
    result.plan = plan::PlanNode::MakeScan(tables[0]);
    result.stats.wall_ms = watch.ElapsedMillis();
    return result;
  }

  obs::Span span;
  if (obs::TracingOn()) {
    span = obs::DefaultTracer().StartSpan("planner.bushy_dp");
    span.SetAttr("num_tables", static_cast<int64_t>(n));
  }
  // Enumeration counters, kept in locals on the hot path and flushed to
  // the metrics registry once per planning run.
  int64_t subproblems = 0;
  int64_t pruned = 0;
  int64_t bound_pruned = 0;

  // DP scratch (memo, adjacency, connectivity, deferral list) is arena
  // scratch: trivially destructible, dropped wholesale per query.
  Arena local_arena;
  Arena* arena =
      options_.arena != nullptr ? options_.arena : &local_arena;

  ArenaVector<uint32_t> adjacency(static_cast<size_t>(n), 0,
                                  ArenaAllocator<uint32_t>(arena));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j &&
          catalog.join_graph().HasEdge(tables[static_cast<size_t>(i)],
                                       tables[static_cast<size_t>(j)])) {
        adjacency[static_cast<size_t>(i)] |= uint32_t{1} << j;
      }
    }
  }
  auto parts_connected = [&](uint32_t a, uint32_t b) {
    uint32_t rest = a;
    while (rest != 0) {
      const int bit = __builtin_ctz(rest);
      rest &= rest - 1;
      if (adjacency[static_cast<size_t>(bit)] & b) return true;
    }
    return false;
  };
  auto set_of_mask = [&](uint32_t mask) {
    plan::TableSet set;
    for (int i = 0; i < n; ++i) {
      if (mask & (uint32_t{1} << i)) set.Add(tables[static_cast<size_t>(i)]);
    }
    return set;
  };

  const uint32_t full = (uint32_t{1} << n) - 1;
  ArenaVector<DpEntry> dp(static_cast<size_t>(full) + 1, DpEntry{},
                          ArenaAllocator<DpEntry>(arena));
  for (int i = 0; i < n; ++i) {
    DpEntry& e = dp[uint32_t{1} << i];
    e.valid = true;
    e.scalar = 0.0;
  }

  // Whether each subset is connected under the join graph: the
  // cross-product fallback may only build genuinely disconnected subsets;
  // otherwise a cross product with a *small* build side would look cheap
  // to the per-operator cost model (which does not price the exploding
  // output — the blow-up only surfaces as later operators' inputs).
  ArenaVector<bool> is_connected(static_cast<size_t>(full) + 1, false,
                                 ArenaAllocator<bool>(arena));
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const uint32_t seed = mask & (~mask + 1);
    uint32_t reached = seed;
    bool grew = true;
    while (grew) {
      grew = false;
      uint32_t rest = reached;
      while (rest != 0) {
        const int bit = __builtin_ctz(rest);
        rest &= rest - 1;
        const uint32_t next =
            (reached | (adjacency[static_cast<size_t>(bit)] & mask));
        if (next != reached) {
          reached = next;
          grew = true;
        }
      }
    }
    is_connected[mask] = (reached == mask);
  }

  // Tries to build `mask` as (left) JOIN (mask \ left).
  auto try_split = [&](uint32_t mask, uint32_t left) {
    const uint32_t right = mask ^ left;
    if (!dp[left].valid || !dp[right].valid) return;
    const double left_bytes = estimator.Estimate(set_of_mask(left)).bytes();
    const double right_bytes =
        estimator.Estimate(set_of_mask(right)).bytes();
    for (int impl_idx = 0; impl_idx < plan::kNumJoinImpls; ++impl_idx) {
      const auto impl = static_cast<plan::JoinImpl>(impl_idx);
      ++stats.plans_considered;
      JoinContext context;
      context.impl = impl;
      context.left_bytes = left_bytes;
      context.right_bytes = right_bytes;
      Result<OperatorCost> op = evaluator.CostJoin(context);
      if (!op.ok()) {
        ++pruned;  // infeasible candidate (e.g. BHJ OOM)
        continue;
      }
      const cost::CostVector total = dp[left].cost + dp[right].cost + op->cost;
      const double scalar = total.Weighted(options_.time_weight);
      DpEntry& entry = dp[mask];
      if (!entry.valid || scalar < entry.scalar) {
        entry.valid = true;
        entry.scalar = scalar;
        entry.cost = total;
        entry.left_mask = left;
        entry.impl = impl;
        entry.resources = op->resources;
      }
    }
  };

  // Incumbent-bound pruning with deferred evaluation (the same
  // bit-identity construction as the Selinger planner): splits whose
  // parts already cost more than `cost_upper_bound` cannot lie on an
  // optimal tree, so their evaluator calls are skipped unless the
  // subset would otherwise stay unreachable. Reachability depends only
  // on candidate feasibility, so evaluating the deferred splits exactly
  // when the subset is still invalid keeps reachability — and every
  // at-or-under-bound memo entry — identical to the unbounded run.
  ArenaVector<uint32_t> deferred{ArenaAllocator<uint32_t>(arena)};

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    ++subproblems;
    // Enumerate unordered splits: fix the lowest bit in the left part so
    // each {left, right} pair is visited once (operator costing is
    // symmetric in the input sizes).
    const uint32_t lowest = mask & (~mask + 1);
    const bool need_cross =
        options_.avoid_cross_products && !is_connected[mask];
    deferred.clear();
    for (uint32_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      if (!(sub & lowest)) continue;
      if (sub == mask) continue;
      if (options_.avoid_cross_products && !need_cross &&
          (!is_connected[sub] || !is_connected[mask ^ sub] ||
           !parts_connected(sub, mask ^ sub))) {
        // Connected subsets must be built from connected, adjacent parts;
        // cross products are reserved for disconnected subsets.
        ++pruned;
        continue;
      }
      if (dp[sub].valid && dp[mask ^ sub].valid &&
          (dp[sub].scalar > options_.cost_upper_bound ||
           dp[mask ^ sub].scalar > options_.cost_upper_bound)) {
        deferred.push_back(sub);
        continue;
      }
      try_split(mask, sub);
    }
    if (dp[mask].valid) {
      bound_pruned += static_cast<int64_t>(deferred.size());
    } else {
      for (uint32_t sub : deferred) try_split(mask, sub);
    }
  }

  // Flush the enumeration counters before either exit below (bulk adds,
  // not per-item hot-path increments).
  int64_t memo_entries = 0;
  for (const DpEntry& e : dp) memo_entries += e.valid ? 1 : 0;
  if (span.recording()) {
    span.SetAttr("subproblems", subproblems);
    span.SetAttr("pruned", pruned);
    span.SetAttr("bound_pruned", bound_pruned);
    span.SetAttr("memo_entries", memo_entries);
    span.SetAttr("plans_considered", stats.plans_considered);
  }
  if (obs::MetricsOn()) {
    static obs::Counter* runs =
        obs::DefaultMetrics().GetCounter("planner.bushy_dp.runs");
    static obs::Counter* subproblems_total =
        obs::DefaultMetrics().GetCounter("planner.bushy_dp.subproblems");
    static obs::Counter* pruned_total =
        obs::DefaultMetrics().GetCounter("planner.bushy_dp.pruned");
    static obs::Counter* bound_pruned_total =
        obs::DefaultMetrics().GetCounter("planner.bushy_dp.bound_pruned");
    static obs::Counter* plans_total = obs::DefaultMetrics().GetCounter(
        "planner.bushy_dp.plans_considered");
    static obs::Gauge* memo_size =
        obs::DefaultMetrics().GetGauge("planner.bushy_dp.memo_entries");
    runs->Add(1);
    subproblems_total->Add(subproblems);
    pruned_total->Add(pruned);
    bound_pruned_total->Add(bound_pruned);
    plans_total->Add(stats.plans_considered);
    memo_size->Set(static_cast<double>(memo_entries));
  }

  if (!dp[full].valid) {
    return Status::Internal("bushy DP found no feasible plan");
  }

  // Recursive reconstruction.
  std::function<std::unique_ptr<plan::PlanNode>(uint32_t)> build =
      [&](uint32_t mask) -> std::unique_ptr<plan::PlanNode> {
    if (__builtin_popcount(mask) == 1) {
      return plan::PlanNode::MakeScan(
          tables[static_cast<size_t>(__builtin_ctz(mask))]);
    }
    const DpEntry& e = dp[mask];
    auto join = plan::PlanNode::MakeJoin(e.impl, build(e.left_mask),
                                         build(mask ^ e.left_mask));
    if (e.resources.has_value()) join->set_resources(*e.resources);
    return join;
  };

  PlannedQuery result;
  result.plan = build(full);
  result.cost = dp[full].cost;
  stats.operator_cost_calls = evaluator.operator_cost_calls();
  stats.resource_configs_explored = evaluator.resource_configs_explored();
  stats.wall_ms = watch.ElapsedMillis();
  result.stats = stats;
  return result;
}

}  // namespace raqo::optimizer
