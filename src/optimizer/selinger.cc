#include "optimizer/selinger.h"

#include <limits>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_cost.h"
#include "plan/cardinality.h"
#include "plan/table_set.h"

namespace raqo::optimizer {

namespace {

/// One dynamic-programming entry: the best left-deep plan found for a
/// subset of the query tables, encoded as a back-pointer chain.
struct DpEntry {
  bool valid = false;
  double scalar = std::numeric_limits<double>::infinity();
  cost::CostVector cost;
  /// Position (within the query table vector) of the table joined last.
  int last_pos = -1;
  /// Mask of the subset joined before `last_pos` (0 for singletons).
  uint32_t prev_mask = 0;
  plan::JoinImpl impl = plan::JoinImpl::kSortMergeJoin;
  std::optional<resource::ResourceConfig> resources;
};

// The memo lives in the planner arena, which runs no destructors.
static_assert(std::is_trivially_destructible_v<DpEntry>,
              "DP entries must stay trivially destructible (arena scratch)");

}  // namespace

Result<PlannedQuery> SelingerPlanner::Plan(
    const catalog::Catalog& catalog,
    const std::vector<catalog::TableId>& tables,
    PlanCostEvaluator& evaluator) const {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot plan an empty table set");
  }
  const int n = static_cast<int>(tables.size());
  if (n > options_.max_tables) {
    return Status::Unsupported(
        "Selinger enumeration limited to " +
        std::to_string(options_.max_tables) +
        " tables; use the randomized planner for larger queries");
  }
  {
    plan::TableSet dedup = plan::TableSet::FromVector(tables);
    if (dedup.Count() != n) {
      return Status::InvalidArgument("duplicate table in query");
    }
  }

  Stopwatch watch;
  evaluator.ResetCounters();
  PlanningStats stats;

  plan::CardinalityEstimator estimator(&catalog);

  if (n == 1) {
    PlannedQuery result;
    result.plan = plan::PlanNode::MakeScan(tables[0]);
    result.stats.wall_ms = watch.ElapsedMillis();
    return result;
  }

  obs::Span span;
  if (obs::TracingOn()) {
    span = obs::DefaultTracer().StartSpan("planner.selinger");
    span.SetAttr("num_tables", static_cast<int64_t>(n));
  }
  // Enumeration counters, kept in locals on the hot path and flushed to
  // the metrics registry once per planning run.
  int64_t subproblems = 0;
  int64_t pruned = 0;
  int64_t bound_pruned = 0;

  // All DP scratch lives in the arena: one bump-pointer region filled
  // per query, dropped wholesale afterwards (the caller resets a shared
  // arena; the local fallback frees on scope exit). Every type placed
  // here is trivially destructible.
  Arena local_arena;
  Arena* arena =
      options_.arena != nullptr ? options_.arena : &local_arena;

  // Precompute: bytes of every subset are resolved lazily through the
  // estimator; adjacency between query positions comes from the join
  // graph.
  ArenaVector<uint32_t> adjacency(static_cast<size_t>(n), 0,
                                  ArenaAllocator<uint32_t>(arena));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && catalog.join_graph().HasEdge(tables[static_cast<size_t>(i)],
                                                 tables[static_cast<size_t>(j)])) {
        adjacency[static_cast<size_t>(i)] |= uint32_t{1} << j;
      }
    }
  }

  auto set_of_mask = [&](uint32_t mask) {
    plan::TableSet set;
    for (int i = 0; i < n; ++i) {
      if (mask & (uint32_t{1} << i)) set.Add(tables[static_cast<size_t>(i)]);
    }
    return set;
  };

  const uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((uint32_t{1} << n) - 1);
  ArenaVector<DpEntry> dp(static_cast<size_t>(full) + 1, DpEntry{},
                          ArenaAllocator<DpEntry>(arena));
  for (int i = 0; i < n; ++i) {
    DpEntry& e = dp[uint32_t{1} << i];
    e.valid = true;
    e.scalar = 0.0;
    e.cost = cost::CostVector{};
  }

  // Try extending dp[prev] with table position `t` (impl choice inside);
  // updates dp[mask] when cheaper.
  auto try_extend = [&](uint32_t mask, uint32_t prev, int t) {
    const DpEntry& base = dp[prev];
    const double left_bytes = estimator.Estimate(set_of_mask(prev)).bytes();
    const double right_bytes =
        estimator
            .Estimate(plan::TableSet::Of(tables[static_cast<size_t>(t)]))
            .bytes();
    for (int impl_idx = 0; impl_idx < plan::kNumJoinImpls; ++impl_idx) {
      const auto impl = static_cast<plan::JoinImpl>(impl_idx);
      ++stats.plans_considered;
      JoinContext context;
      context.impl = impl;
      context.left_bytes = left_bytes;
      context.right_bytes = right_bytes;
      Result<OperatorCost> op = evaluator.CostJoin(context);
      if (!op.ok()) {
        ++pruned;  // infeasible candidate (e.g. BHJ OOM)
        continue;
      }
      const cost::CostVector total = base.cost + op->cost;
      const double scalar = total.Weighted(options_.time_weight);
      DpEntry& entry = dp[mask];
      if (!entry.valid || scalar < entry.scalar) {
        entry.valid = true;
        entry.scalar = scalar;
        entry.cost = total;
        entry.last_pos = t;
        entry.prev_mask = prev;
        entry.impl = impl;
        entry.resources = op->resources;
      }
    }
  };

  // Incumbent-bound pruning with deferred evaluation. Extensions whose
  // prefix already costs more than `cost_upper_bound` cannot lie on an
  // optimal chain (prefix scalars never exceed totals), so their
  // evaluator calls are skipped — *unless* the subset would otherwise
  // end up unreachable. Reachability depends only on candidate
  // feasibility, never on costs, so evaluating the deferred candidates
  // exactly when the subset is still invalid reproduces the unbounded
  // run's reachability — and with it the cross-product fallback
  // triggering — bit for bit. Entries at or under the bound are built
  // from the same candidates in the same order either way; entries
  // over the bound may differ, but no optimal chain ever goes through
  // one as long as the bound really is an upper bound on the optimum.
  auto extend_with_bound = [&](uint32_t mask, bool require_edge) {
    uint32_t deferred = 0;
    for (int t = 0; t < n; ++t) {
      const uint32_t bit = uint32_t{1} << t;
      if (!(mask & bit)) continue;
      const uint32_t prev = mask ^ bit;
      if (!dp[prev].valid) continue;
      if (require_edge &&
          (adjacency[static_cast<size_t>(t)] & prev) == 0) {
        ++pruned;  // cross product skipped
        continue;
      }
      if (dp[prev].scalar > options_.cost_upper_bound) {
        deferred |= bit;
        continue;
      }
      try_extend(mask, prev, t);
    }
    if (dp[mask].valid) {
      bound_pruned += __builtin_popcount(deferred);
    } else {
      for (uint32_t rest = deferred; rest != 0; rest &= rest - 1) {
        const int t = __builtin_ctz(rest);
        try_extend(mask, mask ^ (uint32_t{1} << t), t);
      }
    }
  };

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    ++subproblems;
    // Pass 1: only joins along graph edges.
    extend_with_bound(mask, options_.avoid_cross_products);
    // Pass 2 (fallback): allow cross products when the subset is
    // otherwise unreachable.
    if (!dp[mask].valid && options_.avoid_cross_products) {
      extend_with_bound(mask, /*require_edge=*/false);
    }
  }

  // Flush the enumeration counters before either exit below. Counters
  // are added in bulk here (not per item inside the DP loop), so the
  // observability cost per run is a handful of atomic adds.
  int64_t memo_entries = 0;
  for (const DpEntry& e : dp) memo_entries += e.valid ? 1 : 0;
  if (span.recording()) {
    span.SetAttr("subproblems", subproblems);
    span.SetAttr("pruned", pruned);
    span.SetAttr("bound_pruned", bound_pruned);
    span.SetAttr("memo_entries", memo_entries);
    span.SetAttr("plans_considered", stats.plans_considered);
  }
  if (obs::MetricsOn()) {
    static obs::Counter* runs =
        obs::DefaultMetrics().GetCounter("planner.selinger.runs");
    static obs::Counter* subproblems_total =
        obs::DefaultMetrics().GetCounter("planner.selinger.subproblems");
    static obs::Counter* pruned_total =
        obs::DefaultMetrics().GetCounter("planner.selinger.pruned");
    static obs::Counter* bound_pruned_total =
        obs::DefaultMetrics().GetCounter("planner.selinger.bound_pruned");
    static obs::Counter* plans_total = obs::DefaultMetrics().GetCounter(
        "planner.selinger.plans_considered");
    static obs::Gauge* memo_size =
        obs::DefaultMetrics().GetGauge("planner.selinger.memo_entries");
    runs->Add(1);
    subproblems_total->Add(subproblems);
    pruned_total->Add(pruned);
    bound_pruned_total->Add(bound_pruned);
    plans_total->Add(stats.plans_considered);
    memo_size->Set(static_cast<double>(memo_entries));
  }

  if (!dp[full].valid) {
    return Status::Internal("Selinger DP found no feasible plan");
  }

  // Reconstruct the left-deep tree by unwinding the back pointers.
  // Back-pointer masks, full down to a singleton.
  ArenaVector<uint32_t> chain{ArenaAllocator<uint32_t>(arena)};
  chain.reserve(static_cast<size_t>(n));
  for (uint32_t mask = full; __builtin_popcount(mask) > 1;
       mask = dp[mask].prev_mask) {
    chain.push_back(mask);
  }
  // The innermost remaining mask is a singleton scan.
  uint32_t base_mask = chain.empty() ? full : dp[chain.back()].prev_mask;
  int base_pos = __builtin_ctz(base_mask);
  std::unique_ptr<plan::PlanNode> tree =
      plan::PlanNode::MakeScan(tables[static_cast<size_t>(base_pos)]);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const DpEntry& e = dp[*it];
    auto join = plan::PlanNode::MakeJoin(
        e.impl, std::move(tree),
        plan::PlanNode::MakeScan(tables[static_cast<size_t>(e.last_pos)]));
    if (e.resources.has_value()) join->set_resources(*e.resources);
    tree = std::move(join);
  }

  PlannedQuery result;
  result.plan = std::move(tree);
  result.cost = dp[full].cost;
  stats.operator_cost_calls = evaluator.operator_cost_calls();
  stats.resource_configs_explored = evaluator.resource_configs_explored();
  stats.wall_ms = watch.ElapsedMillis();
  result.stats = stats;
  return result;
}

}  // namespace raqo::optimizer
