#ifndef RAQO_OPTIMIZER_COST_EVALUATOR_H_
#define RAQO_OPTIMIZER_COST_EVALUATOR_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "common/result.h"
#include "cost/cost_vector.h"
#include "plan/plan_node.h"
#include "resource/resource_config.h"

namespace raqo::optimizer {

/// Describes one candidate join operator to be costed.
struct JoinContext {
  plan::JoinImpl impl = plan::JoinImpl::kSortMergeJoin;
  /// Estimated input sizes in bytes.
  double left_bytes = 0.0;
  double right_bytes = 0.0;

  double smaller_bytes() const {
    return left_bytes < right_bytes ? left_bytes : right_bytes;
  }
  double larger_bytes() const {
    return left_bytes < right_bytes ? right_bytes : left_bytes;
  }
  double smaller_gb() const {
    return smaller_bytes() / (1024.0 * 1024.0 * 1024.0);
  }
  double larger_gb() const {
    return larger_bytes() / (1024.0 * 1024.0 * 1024.0);
  }
};

/// Cost of one join operator plus the resource configuration chosen for
/// it (when the evaluator performs resource planning).
struct OperatorCost {
  cost::CostVector cost;
  std::optional<resource::ResourceConfig> resources;
};

/// The extension point of Section VI-C: query planners cost candidate
/// sub-plans exclusively through this interface, so swapping a
/// fixed-resource evaluator (traditional QO) for a resource-planning one
/// (RAQO) upgrades any planner without touching its enumeration logic.
///
/// Implementations may return ResourceExhausted when an operator cannot
/// run at all (e.g. a broadcast build side that fits in no allowed
/// container); planners treat such candidates as invalid and skip them.
class PlanCostEvaluator {
 public:
  virtual ~PlanCostEvaluator() = default;

  /// Costs one join operator; updates the exploration counters.
  Result<OperatorCost> CostJoin(const JoinContext& context) {
    ++operator_cost_calls_;
    return CostJoinImpl(context);
  }

  /// Number of CostJoin invocations since the last reset.
  int64_t operator_cost_calls() const { return operator_cost_calls_; }

  /// Number of resource configurations examined since the last reset
  /// (the paper's "#Resource-Iterations" metric; 0 for evaluators that do
  /// no resource planning... the fixed-resource baseline counts 1 per
  /// call since it prices exactly one configuration).
  int64_t resource_configs_explored() const {
    return resource_configs_explored_;
  }

  void ResetCounters() {
    operator_cost_calls_ = 0;
    resource_configs_explored_ = 0;
  }

 protected:
  virtual Result<OperatorCost> CostJoinImpl(const JoinContext& context) = 0;

  /// Saturating accumulation: a long-lived service evaluator summing
  /// near-saturated brute-force counts must not wrap into negatives.
  void AddResourceConfigsExplored(int64_t n) {
    if (resource_configs_explored_ >
        std::numeric_limits<int64_t>::max() - n) {
      resource_configs_explored_ = std::numeric_limits<int64_t>::max();
    } else {
      resource_configs_explored_ += n;
    }
  }

 private:
  int64_t operator_cost_calls_ = 0;
  int64_t resource_configs_explored_ = 0;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_COST_EVALUATOR_H_
