#ifndef RAQO_OPTIMIZER_FAST_RANDOMIZED_H_
#define RAQO_OPTIMIZER_FAST_RANDOMIZED_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "optimizer/cost_evaluator.h"
#include "optimizer/planner_result.h"

namespace raqo::optimizer {

/// Options of the randomized multi-objective planner.
struct FastRandomizedOptions {
  /// Improvement phases; the paper ran "all query planning for a default
  /// of 10 iterations".
  int iterations = 10;
  /// Random plan-tree mutations attempted per phase.
  int moves_per_iteration = 64;
  /// Independent random seed plans the archive starts from.
  int seed_plans = 4;
  /// Target approximation precision of the Pareto archive: a new plan is
  /// kept only if no archived plan is within (1 + eps) of it on every
  /// objective.
  double approx_eps = 0.05;
  uint64_t seed = 1;
  /// Scalarization used by PlanBest to pick a single plan off the
  /// frontier.
  double time_weight = 1.0;
};

/// Reimplementation of the fast randomized multi-objective query
/// optimizer of Trummer and Koch [14], the second query planner the paper
/// integrates RAQO with. The planner maintains an epsilon-approximate
/// Pareto archive over (execution time, monetary cost) and improves it by
/// random plan-tree mutations — the associativity and exchange moves of
/// Steinbrunn et al. [36] plus operator-implementation flips. All costing
/// goes through the pluggable evaluator, so the same enumerator runs as a
/// plain query optimizer or as RAQO.
class FastRandomizedPlanner {
 public:
  explicit FastRandomizedPlanner(
      FastRandomizedOptions options = FastRandomizedOptions())
      : options_(options) {}

  /// Full multi-objective run: returns the approximate (time, money)
  /// frontier. Plans may be bushy.
  Result<MultiObjectiveResult> Plan(
      const catalog::Catalog& catalog,
      const std::vector<catalog::TableId>& tables,
      PlanCostEvaluator& evaluator) const;

  /// Single-objective convenience: runs Plan and returns the frontier
  /// entry minimizing the scalarized cost.
  Result<PlannedQuery> PlanBest(const catalog::Catalog& catalog,
                                const std::vector<catalog::TableId>& tables,
                                PlanCostEvaluator& evaluator) const;

 private:
  FastRandomizedOptions options_;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_FAST_RANDOMIZED_H_
