#ifndef RAQO_OPTIMIZER_FIXED_RESOURCE_EVALUATOR_H_
#define RAQO_OPTIMIZER_FIXED_RESOURCE_EVALUATOR_H_

#include "cost/cost_model.h"
#include "optimizer/cost_evaluator.h"
#include "resource/pricing.h"
#include "resource/resource_config.h"

namespace raqo::optimizer {

/// The traditional query-optimizer baseline ("QO" in the paper's
/// evaluation): every operator is costed under one fixed resource
/// configuration chosen up front, with no resource planning.
class FixedResourceEvaluator : public PlanCostEvaluator {
 public:
  /// `bhj_capacity_factor` bounds the broadcast build side relative to
  /// the container size (ss <= factor * cs); beyond it the operator is
  /// reported infeasible, mirroring the OOM boundary of the execution
  /// engine.
  FixedResourceEvaluator(cost::JoinCostModels models,
                         resource::ResourceConfig config,
                         resource::PricingModel pricing =
                             resource::PricingModel(),
                         double bhj_capacity_factor = 1.14);

  const resource::ResourceConfig& config() const { return config_; }

 protected:
  Result<OperatorCost> CostJoinImpl(const JoinContext& context) override;

 private:
  cost::JoinCostModels models_;
  resource::ResourceConfig config_;
  resource::PricingModel pricing_;
  double bhj_capacity_factor_;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_FIXED_RESOURCE_EVALUATOR_H_
