#include "optimizer/plan_cost.h"

namespace raqo::optimizer {

Result<cost::CostVector> EvaluatePlanCost(
    plan::PlanNode& plan, plan::CardinalityEstimator& estimator,
    PlanCostEvaluator& evaluator, bool attach_resources) {
  cost::CostVector total;
  Status failure = Status::OK();
  plan.VisitJoins([&](plan::PlanNode& join) {
    if (!failure.ok()) return;
    JoinContext context;
    context.impl = join.impl();
    context.left_bytes = estimator.Estimate(join.left()->tables()).bytes();
    context.right_bytes = estimator.Estimate(join.right()->tables()).bytes();
    Result<OperatorCost> op = evaluator.CostJoin(context);
    if (!op.ok()) {
      failure = op.status();
      return;
    }
    total += op->cost;
    if (attach_resources && op->resources.has_value()) {
      join.set_resources(*op->resources);
    }
  });
  if (!failure.ok()) return failure;
  return total;
}

Result<cost::CostVector> EvaluatePlanCostConst(
    const plan::PlanNode& plan, plan::CardinalityEstimator& estimator,
    PlanCostEvaluator& evaluator) {
  cost::CostVector total;
  Status failure = Status::OK();
  plan.VisitJoins([&](const plan::PlanNode& join) {
    if (!failure.ok()) return;
    JoinContext context;
    context.impl = join.impl();
    context.left_bytes = estimator.Estimate(join.left()->tables()).bytes();
    context.right_bytes = estimator.Estimate(join.right()->tables()).bytes();
    Result<OperatorCost> op = evaluator.CostJoin(context);
    if (!op.ok()) {
      failure = op.status();
      return;
    }
    total += op->cost;
  });
  if (!failure.ok()) return failure;
  return total;
}

}  // namespace raqo::optimizer
