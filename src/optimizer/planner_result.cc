#include "optimizer/planner_result.h"

namespace raqo::optimizer {

const ParetoEntry* MultiObjectiveResult::FastestEntry() const {
  const ParetoEntry* best = nullptr;
  for (const ParetoEntry& e : frontier) {
    if (best == nullptr || e.cost.seconds < best->cost.seconds) best = &e;
  }
  return best;
}

const ParetoEntry* MultiObjectiveResult::CheapestEntry() const {
  const ParetoEntry* best = nullptr;
  for (const ParetoEntry& e : frontier) {
    if (best == nullptr || e.cost.dollars < best->cost.dollars) best = &e;
  }
  return best;
}

}  // namespace raqo::optimizer
