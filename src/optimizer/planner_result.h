#ifndef RAQO_OPTIMIZER_PLANNER_RESULT_H_
#define RAQO_OPTIMIZER_PLANNER_RESULT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cost/cost_vector.h"
#include "plan/plan_node.h"

namespace raqo::optimizer {

/// Metrics a planning run reports — the quantities the paper's Figures
/// 12-15 plot.
struct PlanningStats {
  /// Wall-clock planner runtime.
  double wall_ms = 0.0;
  /// Candidate (sub-)plans the enumerator considered.
  int64_t plans_considered = 0;
  /// Operator costings requested from the evaluator.
  int64_t operator_cost_calls = 0;
  /// Resource configurations examined ("#Resource-Iterations").
  int64_t resource_configs_explored = 0;
  /// Resource-plan cache hits, when a caching evaluator is in use.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// A finished single-objective planning run: the chosen joint
/// query/resource plan and its cost.
struct PlannedQuery {
  std::unique_ptr<plan::PlanNode> plan;
  cost::CostVector cost;
  PlanningStats stats;
};

/// One point of a multi-objective (time, money) frontier.
struct ParetoEntry {
  std::unique_ptr<plan::PlanNode> plan;
  cost::CostVector cost;
};

/// A finished multi-objective planning run: the approximate Pareto
/// frontier over (time, money), sorted by ascending time.
struct MultiObjectiveResult {
  std::vector<ParetoEntry> frontier;
  PlanningStats stats;

  /// Frontier entry with the lowest execution time (nullptr if empty).
  const ParetoEntry* FastestEntry() const;
  /// Frontier entry with the lowest monetary cost (nullptr if empty).
  const ParetoEntry* CheapestEntry() const;
};

}  // namespace raqo::optimizer

#endif  // RAQO_OPTIMIZER_PLANNER_RESULT_H_
