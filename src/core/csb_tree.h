#ifndef RAQO_CORE_CSB_TREE_H_
#define RAQO_CORE_CSB_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace raqo::core {

/// A Cache Sensitive B+-Tree (CSB+-Tree, Rao & Ross [35]) keyed by double
/// with int64 payload handles. The paper proposes laying the resource-plan
/// cache out as a CSB+-Tree for larger workloads; this is that index.
///
/// The defining property: all children of an internal node live in one
/// contiguous *node group*, so internal nodes store a single child
/// pointer (the group's base index) instead of one pointer per child.
/// This halves pointer overhead and keeps sibling nodes on adjacent cache
/// lines. The flip side — faithfully reproduced here — is that inserting
/// into a full node re-allocates the whole node group.
///
/// Duplicate keys are not stored: inserting an existing key overwrites
/// its value (the cache semantics the index serves).
class CsbTree {
 public:
  /// Keys per node, sized so one node (count + keys + payloads) spans a
  /// small fixed number of cache lines.
  static constexpr int kNodeKeys = 14;

  CsbTree();

  CsbTree(const CsbTree&) = delete;
  CsbTree& operator=(const CsbTree&) = delete;
  CsbTree(CsbTree&&) = default;
  CsbTree& operator=(CsbTree&&) = default;

  /// Inserts or overwrites. Returns true when a new key was inserted,
  /// false when an existing key's value was replaced.
  bool Insert(double key, int64_t value);

  /// Exact-match lookup.
  std::optional<int64_t> Find(double key) const;

  /// Visits all entries with key in [lo, hi], in ascending key order.
  void Scan(double lo, double hi,
            const std::function<void(double, int64_t)>& fn) const;

  /// Number of stored keys.
  size_t size() const { return size_; }

  /// Tree height in levels (1 = a single leaf).
  int height() const { return height_; }

  /// Verifies structural invariants (ordering, separator correctness,
  /// group contiguity); used by the test suite.
  Status CheckInvariants() const;

 private:
  struct Node {
    uint16_t count = 0;
    uint16_t is_leaf = 1;
    /// Internal nodes: pool index of the first child in this node's
    /// contiguous child group (the group has count + 1 nodes).
    /// Leaves: pool index of the next leaf (-1 at the end).
    int32_t first_child = -1;
    double keys[kNodeKeys];
    int64_t values[kNodeKeys];
  };

  /// Allocates a contiguous group of `n` nodes; returns the base index.
  int32_t AllocateGroup(int n);

  /// Finds the leaf that should hold `key`; fills `path` with
  /// (node index, child position) pairs from the root down (excluding
  /// the leaf itself).
  int32_t DescendToLeaf(double key,
                        std::vector<std::pair<int32_t, int>>* path) const;

  /// Handles a split that propagates from child level `level` upward.
  /// `path` is the descent path; `new_key` separates the old child from
  /// its new right sibling, which must be adjacent in the (re-allocated)
  /// group.
  void InsertIntoParent(std::vector<std::pair<int32_t, int>>& path,
                        size_t level, double new_key);

  Status CheckNode(int32_t index, double lo, double hi, int depth) const;

  std::vector<Node> pool_;
  int32_t root_ = -1;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_CSB_TREE_H_
