#ifndef RAQO_CORE_ADAPTIVE_H_
#define RAQO_CORE_ADAPTIVE_H_

#include <vector>

#include "core/raqo_planner.h"

namespace raqo::core {

/// Options of the adaptive re-optimization policy.
struct AdaptiveOptions {
  /// Re-optimize when keeping the current plan shape (with resources
  /// re-planned for the new conditions) is more than this factor worse
  /// than a fresh joint plan. 1.0 re-optimizes on any improvement;
  /// higher values favor plan stability.
  double reoptimize_threshold = 1.15;
};

/// Implements "Adaptive RAQO" (Section VIII): "from the moment a query
/// gets optimized until the moment its execution begins, the condition of
/// the cluster might change ... we might need to adapt/re-optimize the
/// query". The driver holds the current joint plan for a query; on every
/// cluster-condition change it re-plans the *resources* of the current
/// plan shape, compares against a full re-optimization, and switches only
/// when the gap justifies it (or the old shape became infeasible).
class AdaptiveRaqo {
 public:
  /// The planner is borrowed and must outlive the driver.
  AdaptiveRaqo(RaqoPlanner* planner,
               AdaptiveOptions options = AdaptiveOptions());

  /// Plans the query under the current conditions and installs the
  /// result as the active plan.
  Result<const JointPlan*> Submit(
      const std::vector<catalog::TableId>& tables);

  /// What happened on a cluster change.
  struct ChangeEvent {
    /// True when the active plan was replaced by a re-optimized one.
    bool reoptimized = false;
    /// True when the old shape could not run at all under the new
    /// conditions (re-optimization was forced).
    bool old_plan_infeasible = false;
    /// Cost of keeping the old shape under the new conditions (resources
    /// re-planned); meaningless when infeasible.
    double kept_cost_seconds = 0.0;
    /// Cost of the fresh joint plan under the new conditions.
    double replanned_cost_seconds = 0.0;
  };

  /// Reacts to new cluster conditions reported by the resource manager.
  /// Requires a submitted query.
  Result<ChangeEvent> OnClusterChange(
      const resource::ClusterConditions& conditions);

  /// The active joint plan (valid after a successful Submit).
  const JointPlan& current() const;

 private:
  RaqoPlanner* planner_;
  AdaptiveOptions options_;
  std::vector<catalog::TableId> tables_;
  JointPlan current_;
  bool has_plan_ = false;
};

}  // namespace raqo::core

#endif  // RAQO_CORE_ADAPTIVE_H_
