#include "core/robust.h"

#include <algorithm>
#include <limits>

#include "optimizer/plan_cost.h"
#include "plan/cardinality.h"

namespace raqo::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<RobustnessReport> EvaluatePlanRobustness(
    const catalog::Catalog& catalog, const cost::JoinCostModels& models,
    const resource::ClusterConditions& base_cluster,
    const resource::PricingModel& pricing, const plan::PlanNode& plan,
    const RobustnessOptions& options) {
  if (options.perturbations.empty()) {
    return Status::InvalidArgument("no perturbations to probe");
  }
  RobustnessReport report;
  plan::CardinalityEstimator estimator(&catalog);
  double feasible_sum = 0.0;
  int feasible_count = 0;

  for (const ClusterPerturbation& p : options.perturbations) {
    if (p.container_scale <= 0.0 || p.count_scale <= 0.0) {
      return Status::InvalidArgument("perturbation scales must be positive");
    }
    // Shrink the maxima, keeping them at or above the minima.
    resource::ResourceConfig max = base_cluster.max();
    max.set_container_size_gb(
        std::max(base_cluster.min().container_size_gb(),
                 max.container_size_gb() * p.container_scale));
    max.set_num_containers(std::max(base_cluster.min().num_containers(),
                                    max.num_containers() * p.count_scale));
    RAQO_ASSIGN_OR_RETURN(
        resource::ClusterConditions degraded,
        resource::ClusterConditions::Create(base_cluster.min(), max,
                                            base_cluster.step()));

    RaqoCostEvaluator evaluator(models, degraded, pricing,
                                options.evaluator);
    Result<cost::CostVector> cost =
        optimizer::EvaluatePlanCostConst(plan, estimator, evaluator);
    if (!cost.ok()) {
      if (cost.status().IsResourceExhausted() ||
          cost.status().IsFailedPrecondition()) {
        report.per_perturbation_cost.push_back(kInf);
        ++report.infeasible_count;
        continue;
      }
      return cost.status();
    }
    const double scalar = cost->Weighted(options.time_weight);
    report.per_perturbation_cost.push_back(scalar);
    feasible_sum += scalar;
    ++feasible_count;
  }

  report.worst_cost = *std::max_element(report.per_perturbation_cost.begin(),
                                        report.per_perturbation_cost.end());
  report.mean_feasible_cost =
      feasible_count > 0 ? feasible_sum / feasible_count : kInf;
  return report;
}

Result<size_t> PickRobustPlanIndex(
    const catalog::Catalog& catalog, const cost::JoinCostModels& models,
    const resource::ClusterConditions& base_cluster,
    const resource::PricingModel& pricing,
    const std::vector<const plan::PlanNode*>& candidates,
    const RobustnessOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate plans");
  }
  size_t best = 0;
  bool have_best = false;
  int best_infeasible = 0;
  double best_worst = kInf;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == nullptr) {
      return Status::InvalidArgument("null candidate plan");
    }
    RAQO_ASSIGN_OR_RETURN(
        RobustnessReport report,
        EvaluatePlanRobustness(catalog, models, base_cluster, pricing,
                               *candidates[i], options));
    const bool better =
        !have_best || report.infeasible_count < best_infeasible ||
        (report.infeasible_count == best_infeasible &&
         report.worst_cost < best_worst);
    if (better) {
      have_best = true;
      best = i;
      best_infeasible = report.infeasible_count;
      best_worst = report.worst_cost;
    }
  }
  return best;
}

}  // namespace raqo::core
