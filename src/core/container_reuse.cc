#include "core/container_reuse.h"

#include <vector>

namespace raqo::core {

Result<ReuseAnalysis> AnalyzeContainerReuse(
    sim::ExecutionSimulator& simulator, const plan::PlanNode& joint_plan) {
  // Collect the distinct per-operator configurations; they are the
  // harmonization candidates (some operator wanted each of them).
  std::vector<resource::ResourceConfig> candidates;
  bool missing = false;
  joint_plan.VisitJoins([&](const plan::PlanNode& join) {
    if (!join.resources().has_value()) {
      missing = true;
      return;
    }
    const resource::ResourceConfig& config = *join.resources();
    bool seen = false;
    for (const resource::ResourceConfig& c : candidates) {
      if (c == config) {
        seen = true;
        break;
      }
    }
    if (!seen) candidates.push_back(config);
  });
  if (missing) {
    return Status::FailedPrecondition(
        "plan has joins without resource requests; run resource planning "
        "first");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("plan has no join operators");
  }

  sim::RunPlanOptions reuse;
  reuse.reuse_containers = true;

  ReuseAnalysis analysis;
  RAQO_ASSIGN_OR_RETURN(
      sim::SimPlanResult per_op,
      simulator.RunPlan(joint_plan, sim::ExecParams{}, reuse));
  analysis.per_operator_seconds = per_op.seconds;

  analysis.harmonized_seconds = per_op.seconds;
  analysis.harmonized_config = candidates.front();
  for (const resource::ResourceConfig& candidate : candidates) {
    std::unique_ptr<plan::PlanNode> uniform = joint_plan.Clone();
    uniform->VisitJoins(
        [&](plan::PlanNode& join) { join.set_resources(candidate); });
    Result<sim::SimPlanResult> run =
        simulator.RunPlan(*uniform, sim::ExecParams{}, reuse);
    if (!run.ok()) {
      // A shared configuration that cannot run every operator (e.g. too
      // small for some broadcast) is simply not a viable candidate.
      if (run.status().IsResourceExhausted()) continue;
      return run.status();
    }
    if (run->seconds < analysis.harmonized_seconds) {
      analysis.harmonized_seconds = run->seconds;
      analysis.harmonized_config = candidate;
      analysis.harmonize_wins = true;
    }
  }
  return analysis;
}

Result<std::unique_ptr<plan::PlanNode>> ApplyContainerReuse(
    sim::ExecutionSimulator& simulator, const plan::PlanNode& joint_plan) {
  RAQO_ASSIGN_OR_RETURN(ReuseAnalysis analysis,
                        AnalyzeContainerReuse(simulator, joint_plan));
  std::unique_ptr<plan::PlanNode> out = joint_plan.Clone();
  if (analysis.harmonize_wins) {
    out->VisitJoins([&](plan::PlanNode& join) {
      join.set_resources(analysis.harmonized_config);
    });
  }
  return out;
}

}  // namespace raqo::core
